"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures.  The
workload scale and plan counts are deliberately small so the whole suite runs
in minutes on a laptop; the *shape* of every result (who wins, by roughly
what factor, where the outliers are) is what is being reproduced, not the
absolute numbers from the paper's 2×48-core testbed.
"""

from __future__ import annotations

import pytest

from repro.bench import WorkloadContext
from repro.engine.modes import ExecutionMode

#: Scale used by the benchmark suite (relative to the workloads' base sizes).
BENCH_SCALE = 0.08

#: Random plans per query in the robustness sweeps.
BENCH_PLANS = 8

#: Queries per benchmark used for the aggregate tables (keeps runtime bounded).
TPCH_QUERY_SAMPLE = (2, 3, 5, 8, 10, 11, 18, 21)
JOB_TEMPLATE_SAMPLE = (1, 2, 3, 6, 11, 17, 20, 32)
TPCDS_QUERY_SAMPLE = (3, 7, 13, 19, 27, 34, 48, 54, 72, 83, 91, 96)
DSB_QUERY_SAMPLE = (3, 7, 13, 27, 34, 91, 96)

MODES_ALL = (ExecutionMode.BASELINE, ExecutionMode.BLOOM_JOIN, ExecutionMode.PT, ExecutionMode.RPT)
MODES_MAIN = (ExecutionMode.BASELINE, ExecutionMode.RPT)


@pytest.fixture(scope="session")
def context() -> WorkloadContext:
    """One shared WorkloadContext so data is generated once per session."""
    return WorkloadContext(scale=BENCH_SCALE, seed=42)
