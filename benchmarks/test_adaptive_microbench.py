"""Adaptive transfer microbenchmark: yield-driven skipping + NDV sizing vs static.

The tentpole claim of adaptive transfer execution: when a workload's filters
stop pruning, the statically compiled transfer phase keeps paying for every
remaining pass, while the adaptive controller observes per-step yield and
cancels the passes (and the builds feeding them, and the backward pass
wholesale) that no longer pay for themselves — at zero result change, since
Bloom transfer is purely reductive.  NDV-based sizing additionally shrinks
every remaining filter to the build side's distinct-count, and dense key
domains downgrade to exact bitmap semi-joins.

This benchmark measures the low-yield (uncorrelated filters) and high-yield
(genuinely reducing filters) regimes on a 1M-row star query and records the
run as ``BENCH_adaptive.json`` at the repo root so the adaptive layer's
performance trajectory is tracked from session to session.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench import (
    format_adaptive_microbench,
    print_report,
    run_adaptive_microbench,
    write_bench_json,
)

#: Where the perf-trajectory record lands (repo root, next to ROADMAP.md).
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_adaptive.json"


@pytest.mark.benchmark(group="adaptive")
def test_adaptive_wins_low_yield_without_regressing_high_yield(benchmark, tmp_path):
    def run():
        return run_adaptive_microbench(fact_rows=1 << 20, repeats=3)

    measurements = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(format_adaptive_microbench(measurements))

    # Refresh the committed perf-trajectory record only when explicitly
    # recording (REPRO_BENCH_RECORD=1); a plain test run writes to tmp so
    # running the suite never dirties the working tree.
    target = (
        BENCH_JSON_PATH
        if os.environ.get("REPRO_BENCH_RECORD")
        else tmp_path / "BENCH_adaptive.json"
    )
    written = write_bench_json(
        target,
        name="adaptive_microbench",
        measurements=[m.as_dict() for m in measurements],
        metadata={"mode": "rpt", "num_dims": 3, "min_yield": 0.01},
    )
    assert written.exists()

    by_workload = {m.workload: m for m in measurements}
    low = by_workload["low_yield"]
    high = by_workload["high_yield"]

    # Structural outcomes hold everywhere: the controller skipped passes on
    # the low-yield workload, left the high-yield one alone, NDV sizing
    # measurably shrank the filters, and dense domains downgraded to exact
    # bitmaps.
    assert low.steps_skipped > 0
    assert high.steps_skipped == 0
    assert high.ndv_bytes_reduction > 0
    assert high.ndv_filter_bytes_saved > 0
    assert low.exact_downgrades > 0 and high.exact_downgrades > 0

    if os.environ.get("CI"):
        # On shared CI runners only the structural outcome is asserted;
        # wall-clock ratios are too noisy there by design.
        return

    # The acceptance points: adaptive execution speeds the low-yield
    # transfer phase by >= 1.5x and stays within noise of the static path
    # on the high-yield workload.  The committed BENCH_adaptive.json shows
    # the real margins; the thresholds here only guard flake.
    assert low.full_speedup >= 1.5, (
        f"adaptive transfer did not pay off on the low-yield workload: "
        f"{low.full_seconds:.4f}s vs {low.static_seconds:.4f}s"
    )
    assert high.full_seconds <= high.static_seconds * 1.15, (
        f"adaptive transfer regressed the high-yield workload: "
        f"{high.full_seconds:.4f}s vs {high.static_seconds:.4f}s"
    )
