"""Appendix A/B/C reproductions and ablation benchmarks for RPT's design choices.

* **Appendix A (Figures 17-20)** — per-query optimizer-plan costs for all
  four modes are exercised by ``test_table3_speedups``; here we add the
  per-query breakdown for one benchmark so the series can be inspected.
* **Appendix B/C** — robustness distributions for Bloom Join and PT (not just
  the baseline and RPT).
* **Ablations** — the design knobs DESIGN.md calls out: pruning trivial
  PK-FK semi-joins, skipping the backward pass for aligned orders, the Bloom
  filter false-positive rate, and exact (Yannakakis) vs Bloom semi-joins.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_PLANS, MODES_ALL
from repro import ExecutionOptions
from repro.bench import print_report, robustness_table, run_random_plan_experiment
from repro.engine.modes import ExecutionMode
from repro.exec.transfer import TransferOptions
from repro.plan.join_plan import JoinPlan
from repro.workloads import tpch


@pytest.mark.benchmark(group="appendix")
def test_appendix_b_all_modes_robustness(benchmark, context):
    """Appendix B: Bloom Join does not improve robustness; PT mostly does; RPT always does."""

    def run():
        db = context.database("tpch")
        experiments = [
            run_random_plan_experiment(
                db, tpch.query(n), modes=MODES_ALL, num_plans=BENCH_PLANS, seed=n
            )
            for n in (3, 10, 18)
        ]
        return robustness_table(experiments, "TPC-H", MODES_ALL), experiments

    table, _ = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Appendix B: robustness factors per mode (TPC-H sample, left-deep)"]
    for mode in MODES_ALL:
        summary = table[mode]
        lines.append(f"  {mode.label:<12} avg={summary.avg_rf:6.1f} min={summary.min_rf:5.1f} max={summary.max_rf:7.1f}")
    print_report("\n".join(lines))
    assert table[ExecutionMode.RPT].avg_rf <= table[ExecutionMode.BASELINE].avg_rf
    assert table[ExecutionMode.RPT].avg_rf <= table[ExecutionMode.BLOOM_JOIN].avg_rf
    assert table[ExecutionMode.RPT].max_rf <= table[ExecutionMode.PT].max_rf * 1.5


@pytest.mark.benchmark(group="appendix")
def test_appendix_a_per_query_mode_costs(benchmark, context):
    def run():
        db = context.database("tpch")
        rows = {}
        for number in (2, 3, 10, 11, 18, 21):
            query = tpch.query(number)
            plan = db.optimizer_plan(query)
            baseline = db.execute(query, mode=ExecutionMode.BASELINE, plan=plan).stats.cost("tuples")
            rows[query.name] = {
                mode.label: db.execute(query, mode=mode, plan=plan).stats.cost("tuples") / baseline
                for mode in MODES_ALL
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Appendix A / Figure 17: per-query cost normalized by the baseline (optimizer's plan)",
             f"{'query':<12}" + "".join(f"{m.label:>12}" for m in MODES_ALL)]
    for name, by_mode in rows.items():
        lines.append(f"{name:<12}" + "".join(f"{by_mode[m.label]:>12.2f}" for m in MODES_ALL))
    print_report("\n".join(lines))
    for by_mode in rows.values():
        assert by_mode["DuckDB"] == pytest.approx(1.0)


@pytest.mark.benchmark(group="ablation")
def test_ablation_pruning_and_backward_skip(benchmark, context):
    """§4.3 optimizations: pruning trivial semi-joins and skipping the backward pass."""

    def run():
        db = context.database("tpch")
        query = tpch.query(10)
        default = db.execute(query, mode=ExecutionMode.RPT)
        no_prune = db.execute(
            query, mode=ExecutionMode.RPT,
            options=ExecutionOptions(transfer=TransferOptions(prune_trivial_semijoins=False)),
        )
        aligned_plan = JoinPlan.from_left_deep(default.join_tree.aligned_join_order())
        skip_backward = db.execute(
            query, mode=ExecutionMode.RPT, plan=aligned_plan,
            options=ExecutionOptions(skip_backward_if_aligned=True),
        )
        full_backward = db.execute(query, mode=ExecutionMode.RPT, plan=aligned_plan)
        return default, no_prune, skip_backward, full_backward

    default, no_prune, skip_backward, full_backward = benchmark.pedantic(run, rounds=1, iterations=1)
    pruned_steps = sum(1 for s in default.stats.transfer_steps if s.skipped)
    print_report(
        "Ablation: §4.3 pruning optimizations (TPC-H Q10)\n"
        f"  trivial semi-joins pruned          : {pruned_steps}\n"
        f"  transfer steps (default)           : {len(default.stats.transfer_steps)}\n"
        f"  transfer steps (no pruning)        : {len(no_prune.stats.transfer_steps)}\n"
        f"  transfer steps (aligned, skip bwd) : {len(skip_backward.stats.transfer_steps)}\n"
        f"  transfer steps (aligned, full)     : {len(full_backward.stats.transfer_steps)}"
    )
    assert default.aggregates == no_prune.aggregates == skip_backward.aggregates
    assert len(skip_backward.stats.transfer_steps) < len(full_backward.stats.transfer_steps)


@pytest.mark.benchmark(group="ablation")
def test_ablation_bloom_fpr_and_exact_semijoin(benchmark, context):
    """FPR trade-off: tighter filters cost more memory but eliminate more tuples;
    exact semi-joins (Yannakakis) are the limit case."""

    def run():
        db = context.database("tpch")
        query = tpch.query(3)
        results = {}
        for label, fpr in (("fpr=0.001", 0.001), ("fpr=0.02", 0.02), ("fpr=0.2", 0.2)):
            options = ExecutionOptions(transfer=TransferOptions(fpr=fpr))
            results[label] = db.execute(query, mode=ExecutionMode.RPT, options=options)
        results["exact"] = db.execute(query, mode=ExecutionMode.YANNAKAKIS)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: Bloom FPR vs reduction quality (TPC-H Q3)",
             f"{'configuration':<12} {'bloom bytes':>12} {'surviving rows':>15} {'intermediates':>14}"]
    surviving = {}
    for label, result in results.items():
        total = sum(result.stats.reduced_rows.values())
        surviving[label] = total
        lines.append(
            f"{label:<12} {result.stats.bloom_bytes:>12} {total:>15} "
            f"{result.stats.total_intermediate_rows:>14}"
        )
    print_report("\n".join(lines))
    counts = {r.aggregates["count_star"] for r in results.values()}
    assert len(counts) == 1
    # Tighter filters never keep more tuples than looser ones; exact is the floor.
    assert surviving["fpr=0.001"] <= surviving["fpr=0.2"]
    assert surviving["exact"] <= surviving["fpr=0.001"]
