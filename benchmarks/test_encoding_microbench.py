"""Block-encoded scans and shared-memory footprint vs the raw paths.

The tentpole claims of block-encoded execution, measured on 1M rows:

* selective ordered string comparisons run in dictionary code space
  instead of materializing every string;
* selective ranges over clustered data skip ~99% of blocks via zone maps;
* the process backend ships bit-packed probe columns, shrinking the
  shared-memory footprint of a star-probe query.

The measurement records to ``BENCH_encoding.json`` at the repo root and
asserts >=3x on both scans plus a >=30% shm reduction.  Every compared
pair is asserted bit-identical inside the runner before timing.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench import (
    format_encoding_microbench,
    print_report,
    run_encoding_microbench,
    write_bench_json,
)

#: Where the perf-trajectory record lands (repo root, next to ROADMAP.md).
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_encoding.json"


@pytest.mark.benchmark(group="encoding")
def test_encoded_scans_and_shm_footprint(benchmark, tmp_path):
    cores = os.cpu_count() or 1

    def run():
        return run_encoding_microbench(rows=1 << 20, repeats=3)

    measurement = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(format_encoding_microbench(measurement))

    # Refresh the committed perf-trajectory record only when explicitly
    # recording (REPRO_BENCH_RECORD=1); a plain test run writes to tmp so
    # running the suite never dirties the working tree.
    target = (
        BENCH_JSON_PATH
        if os.environ.get("REPRO_BENCH_RECORD")
        else tmp_path / "BENCH_encoding.json"
    )
    written = write_bench_json(
        target,
        name="encoding_microbench",
        measurements=[measurement.as_dict()],
        metadata={"cores": cores},
    )
    assert written.exists()

    # The sorted timestamp column prunes all but the blocks overlapping the
    # 1% range; the skip count is exact, not approximate.
    assert measurement.range_blocks_total > 0
    assert measurement.range_blocks_skipped >= int(measurement.range_blocks_total * 0.9)

    # Both selective scans must beat the raw paths by >=3x: the string scan
    # by staying in code space, the range scan by skipping blocks.
    assert measurement.string_scan_speedup >= 3.0, (
        f"string scan below 3x: {measurement.string_scan_speedup:.2f}x"
    )
    assert measurement.range_scan_speedup >= 3.0, (
        f"range scan below 3x: {measurement.range_scan_speedup:.2f}x"
    )

    # Bit-packed probe columns must shrink the star probe's shared-memory
    # footprint by >=30% against the raw int64 columns.
    assert measurement.raw_shm_bytes_mapped > 0
    assert measurement.shm_reduction >= 0.30, (
        f"shm reduction below 30%: {measurement.shm_reduction:.0%} "
        f"({measurement.raw_shm_bytes_mapped}B -> {measurement.encoded_shm_bytes_mapped}B)"
    )
