"""Figures 11, 12, and 13.

* **Figure 11** — case study on JOB template 2: total intermediate-result
  sizes of the best and worst random left-deep plans, with and without RPT.
  Expected shape: a large worst/best ratio without RPT (paper: 179x), a ratio
  near 1 with RPT, and RPT's intermediates bounded by joins x output size.
* **Figure 12** — the adversarial empty-output query where every plan without
  RPT processes a quadratic intermediate.
* **Figure 13** — robustness of the transfer phase itself: 50 random
  LargestRoot join trees (largest relation kept at the root) produce nearly
  identical execution costs.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import BENCH_PLANS
from repro.bench import format_case_study, print_report
from repro.core import largest_root_random, schedule_from_tree
from repro.engine.modes import ExecutionMode
from repro.exec.relation import bind_relations
from repro.exec.statistics import ExecutionStats
from repro.exec.transfer import TransferExecutor, TransferOptions
from repro.exec.join_phase import JoinPhaseExecutor
from repro.optimizer import generate_left_deep_plans, iter_all_left_deep_orders
from repro.plan.join_plan import JoinPlan
from repro.workloads import job, synthetic, tpch


@pytest.mark.benchmark(group="figure11")
def test_fig11_case_study_job2(benchmark, context):
    def run():
        db = context.database("job")
        query = job.query(2)
        graph = db.join_graph(query)
        plans = generate_left_deep_plans(graph, max(BENCH_PLANS, 12), seed=11)
        rows = {}
        ratios = {}
        for mode in (ExecutionMode.BASELINE, ExecutionMode.RPT):
            results = [db.execute(query, mode=mode, plan=p) for p in plans]
            ordered = sorted(results, key=lambda r: r.stats.total_intermediate_rows)
            best, worst = ordered[0], ordered[-1]
            rows[f"{mode.label} best"] = {
                "sum intermediates": float(best.stats.total_intermediate_rows),
                "output rows": float(best.stats.output_rows),
            }
            rows[f"{mode.label} worst"] = {
                "sum intermediates": float(worst.stats.total_intermediate_rows),
                "output rows": float(worst.stats.output_rows),
            }
            ratios[mode] = (
                worst.stats.total_intermediate_rows / max(best.stats.total_intermediate_rows, 1)
            )
            if mode is ExecutionMode.RPT:
                bound = query.num_joins * max(worst.stats.output_rows, 1)
                rows["RPT worst"]["yannakakis bound"] = float(bound)
        return rows, ratios

    rows, ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(format_case_study("Figure 11: JOB template 2 case study", rows))
    assert ratios[ExecutionMode.RPT] <= ratios[ExecutionMode.BASELINE]
    assert ratios[ExecutionMode.RPT] < 3.0


@pytest.mark.benchmark(group="figure12")
def test_fig12_adversarial_quadratic_blowup(benchmark):
    def run():
        instance = synthetic.figure12_instance(n=600)
        db, query = instance.database, instance.query
        graph = db.join_graph(query)
        worst_baseline = 0
        worst_rpt = 0
        for order in iter_all_left_deep_orders(graph):
            plan = JoinPlan.from_left_deep(order)
            worst_baseline = max(
                worst_baseline,
                db.execute(query, mode=ExecutionMode.BASELINE, plan=plan).stats.total_intermediate_rows,
            )
            worst_rpt = max(
                worst_rpt,
                db.execute(query, mode=ExecutionMode.RPT, plan=plan).stats.total_intermediate_rows,
            )
        return worst_baseline, worst_rpt

    worst_baseline, worst_rpt = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(
        "Figure 12: adversarial empty-output query (N=600)\n"
        f"  worst plan without RPT : {worst_baseline} intermediate tuples (quadratic)\n"
        f"  worst plan with RPT    : {worst_rpt} intermediate tuples"
    )
    assert worst_baseline >= (600 // 2) ** 2 // 2
    assert worst_rpt == 0


@pytest.mark.benchmark(group="figure13")
def test_fig13_random_largest_root_trees(benchmark, context):
    """Random join trees with the largest relation at the root all perform alike."""

    def run():
        db = context.database("tpch")
        rng = random.Random(13)
        costs_by_query = {}
        for number in (3, 8, 10):
            query = tpch.query(number)
            graph = db.join_graph(query)
            plan = db.optimizer_plan(query)
            costs = []
            for _ in range(12):
                tree = largest_root_random(graph, rng)
                relations = bind_relations(query.relations, db.catalog)
                stats = ExecutionStats(query_name=query.name, mode="rpt-random-tree")
                for ref in query.relations:
                    stats.filtered_rows[ref.alias] = relations[ref.alias].num_rows
                TransferExecutor(graph, relations, TransferOptions()).run(
                    schedule_from_tree(tree), stats
                )
                executor = JoinPhaseExecutor(query, graph, relations)
                executor.run(plan, stats)
                costs.append(stats.cost("tuples"))
            costs_by_query[query.name] = costs
        return costs_by_query

    costs_by_query = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Figure 13: 50-random-LargestRoot-tree experiment (12 trees per query here)",
             f"{'query':<12} {'min':>12} {'max':>12} {'max/min':>9}"]
    for name, costs in costs_by_query.items():
        ratio = max(costs) / min(costs)
        lines.append(f"{name:<12} {min(costs):>12.0f} {max(costs):>12.0f} {ratio:>8.2f}x")
        # Transfer-phase robustness: different join trees (same root) behave nearly identically.
        assert ratio < 2.0
    print_report("\n".join(lines))
