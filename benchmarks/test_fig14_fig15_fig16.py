"""Figures 14, 15, and 16.

* **Figure 14** — robustness under (simulated) 32-thread execution: RPT keeps
  its orders-of-magnitude robustness advantage, though per-plan variance
  grows because small probe sides under-utilize the threads.
* **Figure 15** — on-disk and spilling execution: RPT keeps a speedup over
  the baseline even when base tables are read from disk and the materialized
  transfer-phase output is partially spilled (backward-pass re-reads are
  small because the forward pass is selective).
* **Figure 16** — microbenchmark: blocked Bloom-filter probes vs hash-table
  probes as the build side grows.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_PLANS, MODES_MAIN
from repro.bench import (
    format_probe_microbenchmark,
    print_report,
    run_probe_microbenchmark,
    run_random_plan_experiment,
)
from repro.core import geometric_mean, robustness_factor, speedup
from repro.engine.modes import ExecutionMode
from repro.exec.parallel import ParallelismModel, simulate_parallel_cost
from repro.exec.spill import SpillConfig, simulate_spill
from repro.optimizer import generate_left_deep_plans
from repro.workloads import tpch


@pytest.mark.benchmark(group="figure14")
def test_fig14_multithreaded_robustness(benchmark, context):
    def run():
        db = context.database("tpch")
        model = ParallelismModel(num_threads=32)
        factors = {}
        for number in (3, 10, 18):
            query = tpch.query(number)
            graph = db.join_graph(query)
            plans = generate_left_deep_plans(graph, BENCH_PLANS, seed=number)
            for mode in MODES_MAIN:
                costs = [
                    simulate_parallel_cost(db.execute(query, mode=mode, plan=p).stats, model)
                    for p in plans
                ]
                factors[(query.name, mode)] = robustness_factor(query.name, mode.value, costs).factor
        return factors

    factors = benchmark.pedantic(run, rounds=1, iterations=1)
    query_names = sorted({q for q, _ in factors})
    lines = ["Figure 14: robustness with simulated 32-thread execution",
             f"{'query':<12} {'DuckDB RF':>10} {'RPT RF':>8}"]
    for name in query_names:
        lines.append(
            f"{name:<12} {factors[(name, ExecutionMode.BASELINE)]:>10.2f} "
            f"{factors[(name, ExecutionMode.RPT)]:>8.2f}"
        )
        # RPT stays robust under parallel execution (the paper notes its variance
        # grows slightly because small probe sides under-utilize the threads).
        assert factors[(name, ExecutionMode.RPT)] < 4.0
    avg_baseline = sum(factors[(n, ExecutionMode.BASELINE)] for n in query_names) / len(query_names)
    avg_rpt = sum(factors[(n, ExecutionMode.RPT)] for n in query_names) / len(query_names)
    assert avg_rpt <= avg_baseline * 1.2
    print_report("\n".join(lines))


@pytest.mark.benchmark(group="figure15")
def test_fig15_on_disk_and_spill(benchmark, context):
    def run():
        db = context.database("tpch")
        results = {}
        for config_name, config in (
            ("on-disk", SpillConfig(memory_budget_fraction=None)),
            ("on-disk+spill", SpillConfig(memory_budget_fraction=0.5)),
        ):
            speedups = []
            for number in (3, 8, 10, 18):
                query = tpch.query(number)
                plan = db.optimizer_plan(query)
                baseline = db.execute(query, mode=ExecutionMode.BASELINE, plan=plan)
                simulate_spill(baseline.stats, baseline.relations, config)
                rpt = db.execute(query, mode=ExecutionMode.RPT, plan=plan)
                simulate_spill(rpt.stats, rpt.relations, config)
                baseline_cost = baseline.stats.cost("abstract") + baseline.stats.timings.simulated_io * 1e6
                rpt_cost = rpt.stats.cost("abstract") + rpt.stats.timings.simulated_io * 1e6
                speedups.append(speedup(baseline_cost, rpt_cost))
            results[config_name] = geometric_mean(speedups)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(
        "Figure 15: RPT speedup over baseline with data on disk (geometric mean)\n"
        + "\n".join(f"  {name:<14}: {value:.2f}x" for name, value in results.items())
    )
    # RPT should remain beneficial (paper: 1.3x on-disk, 1.5x with spilling).
    for value in results.values():
        assert value > 0.9


@pytest.mark.benchmark(group="figure16")
def test_fig16_bloom_vs_hash_probe(benchmark):
    measurements = benchmark.pedantic(
        lambda: run_probe_microbenchmark(
            build_sizes=(128, 1_024, 8_192, 65_536, 262_144), probe_rows=400_000, repeats=1
        ),
        rounds=1,
        iterations=1,
    )
    print_report(format_probe_microbenchmark(measurements))
    # Shape: Bloom probes beat hash probes, and the advantage does not shrink
    # as the build side outgrows the caches (paper: 2-7x, growing with size).
    large = [m for m in measurements if m.build_rows >= 8_192]
    assert all(m.bloom_advantage > 1.0 for m in large)
