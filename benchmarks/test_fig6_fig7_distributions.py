"""Figures 6 and 7: distributions of execution cost over random left-deep / bushy plans.

The paper's box plots show, per query, the spread of execution times across
random join orders normalized by the default optimizer plan's time.  Expected
shape: baseline distributions span orders of magnitude for many queries;
RPT distributions collapse to a narrow band around (or below) 1.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_PLANS, JOB_TEMPLATE_SAMPLE, MODES_MAIN, TPCH_QUERY_SAMPLE
from repro.bench import format_distribution_series, print_report, run_random_plan_experiment
from repro.engine.modes import ExecutionMode
from repro.workloads import job, tpch


def _distribution(context, workload, module, sample, plan_type):
    db = context.database(workload)
    per_query = {}
    spreads = {}
    for number in sample:
        query = module.query(number)
        baseline_cost = db.execute(query, mode=ExecutionMode.BASELINE).stats.cost("tuples")
        experiment = run_random_plan_experiment(
            db, query, modes=MODES_MAIN, num_plans=BENCH_PLANS, plan_type=plan_type, seed=number
        )
        per_query[query.name] = {
            mode.label: experiment.normalized_costs(mode, baseline_cost) for mode in MODES_MAIN
        }
        spreads[query.name] = {
            mode: experiment.robustness(mode).factor for mode in MODES_MAIN
        }
    return per_query, spreads


@pytest.mark.benchmark(group="figure6")
def test_fig6_left_deep_distributions_tpch_and_job(benchmark, context):
    def run():
        tpch_series = _distribution(context, "tpch", tpch, TPCH_QUERY_SAMPLE, "left_deep")
        job_series = _distribution(context, "job", job, JOB_TEMPLATE_SAMPLE, "left_deep")
        return tpch_series, job_series

    (tpch_series, tpch_spreads), (job_series, job_spreads) = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(format_distribution_series(
        "Figure 6(a): normalized cost of random left-deep plans (TPC-H)", tpch_series
    ))
    print_report(format_distribution_series(
        "Figure 6(b): normalized cost of random left-deep plans (JOB)", job_series
    ))
    # Shape: for acyclic queries RPT's spread is never (materially) wider than the baseline's.
    for spreads in (tpch_spreads, job_spreads):
        for name, by_mode in spreads.items():
            if name == "tpch_q5":  # cyclic - no guarantee
                continue
            assert by_mode[ExecutionMode.RPT] <= by_mode[ExecutionMode.BASELINE] * 1.05, name


@pytest.mark.benchmark(group="figure7")
def test_fig7_bushy_distributions_tpch_and_job(benchmark, context):
    def run():
        return (
            _distribution(context, "tpch", tpch, TPCH_QUERY_SAMPLE, "bushy"),
            _distribution(context, "job", job, JOB_TEMPLATE_SAMPLE[:5], "bushy"),
        )

    (tpch_series, tpch_spreads), (job_series, job_spreads) = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(format_distribution_series(
        "Figure 7(a): normalized cost of random bushy plans (TPC-H)", tpch_series
    ))
    print_report(format_distribution_series(
        "Figure 7(b): normalized cost of random bushy plans (JOB)", job_series
    ))
    for spreads in (tpch_spreads, job_spreads):
        for name, by_mode in spreads.items():
            if name == "tpch_q5":
                continue
            assert by_mode[ExecutionMode.RPT] <= max(by_mode[ExecutionMode.BASELINE], 10.0), name
