"""Figures 8, 9, and 10.

* **Figure 8** — PT vs RPT under random left-deep plans for queries where the
  original Small2Large transfer graph under-reduces (JOB 32-style, TPC-DS
  Q54/Q83).  Expected shape: PT's spread across plans is wider than RPT's, and
  PT leaves more tuples unreduced.
* **Figure 9** — best random left-deep vs best random bushy plan under RPT,
  plus the optimizer's plan.  Expected shape: bushy plans buy only a small
  improvement (paper: 6-11%), so left-deep exploration suffices.
* **Figure 10** — the cost of picking the wrong build side of the final hash
  join (paper: 37% slowdown on JOB 17e).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_PLANS, MODES_MAIN
from repro.bench import print_report, run_random_plan_experiment
from repro.engine.modes import ExecutionMode
from repro.plan.join_plan import JoinNode, JoinPlan
from repro.workloads import job, synthetic, tpcds, tpch


@pytest.mark.benchmark(group="figure8")
def test_fig8_pt_vs_rpt_on_underreduced_queries(benchmark, context):
    """PT's incomplete reduction shows up as both larger reduced relations and wider spread."""

    def run():
        rows = {}
        db_ds = context.database("tpcds")
        for number in tpcds.FIGURE8_QUERIES:
            query = tpcds.query(number)
            experiment = run_random_plan_experiment(
                db_ds, query, modes=(ExecutionMode.PT, ExecutionMode.RPT),
                num_plans=BENCH_PLANS, seed=number,
            )
            pt_reduced = sum(db_ds.execute(query, mode=ExecutionMode.PT).stats.reduced_rows.values())
            rpt_reduced = sum(db_ds.execute(query, mode=ExecutionMode.RPT).stats.reduced_rows.values())
            rows[query.name] = {
                "pt_rf": experiment.robustness(ExecutionMode.PT).factor,
                "rpt_rf": experiment.robustness(ExecutionMode.RPT).factor,
                "pt_surviving_rows": pt_reduced,
                "rpt_surviving_rows": rpt_reduced,
            }
        instance = synthetic.figure2_instance(base_size=150)
        pt = instance.database.execute(instance.query, mode=ExecutionMode.PT)
        rpt = instance.database.execute(instance.query, mode=ExecutionMode.RPT)
        rows["figure2_synthetic"] = {
            "pt_rf": 1.0, "rpt_rf": 1.0,
            "pt_surviving_rows": sum(pt.stats.reduced_rows.values()),
            "rpt_surviving_rows": sum(rpt.stats.reduced_rows.values()),
        }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Figure 8: PT vs RPT on queries where Small2Large under-reduces",
             f"{'query':<22} {'PT RF':>8} {'RPT RF':>8} {'PT rows':>10} {'RPT rows':>10}"]
    for name, row in rows.items():
        lines.append(f"{name:<22} {row['pt_rf']:>8.2f} {row['rpt_rf']:>8.2f} "
                     f"{row['pt_surviving_rows']:>10} {row['rpt_surviving_rows']:>10}")
    print_report("\n".join(lines))
    # RPT's reduction is never weaker than PT's, and strictly stronger somewhere.
    assert all(r["rpt_surviving_rows"] <= r["pt_surviving_rows"] for r in rows.values())
    assert any(r["rpt_surviving_rows"] < r["pt_surviving_rows"] for r in rows.values())


@pytest.mark.benchmark(group="figure9")
def test_fig9_bushy_gain_is_small_under_rpt(benchmark, context):
    def run():
        db = context.database("tpch")
        gains = {}
        for number in (3, 8, 10, 18):
            query = tpch.query(number)
            left = run_random_plan_experiment(
                db, query, modes=(ExecutionMode.RPT,), num_plans=BENCH_PLANS,
                plan_type="left_deep", seed=number,
            )
            bushy = run_random_plan_experiment(
                db, query, modes=(ExecutionMode.RPT,), num_plans=BENCH_PLANS,
                plan_type="bushy", seed=number,
            )
            optimizer_cost = db.execute(query, mode=ExecutionMode.RPT).stats.cost("tuples")
            best_left = left.robustness(ExecutionMode.RPT).min_cost
            best_bushy = bushy.robustness(ExecutionMode.RPT).min_cost
            gains[query.name] = {
                "best_left_deep": best_left,
                "best_bushy": best_bushy,
                "optimizer_plan": optimizer_cost,
                "bushy_gain": best_left / max(best_bushy, 1e-9),
            }
        return gains

    gains = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Figure 9: best random left-deep vs best random bushy vs optimizer plan (RPT, cost units)",
             f"{'query':<12} {'best left':>12} {'best bushy':>12} {'optimizer':>12} {'bushy gain':>11}"]
    for name, row in gains.items():
        lines.append(
            f"{name:<12} {row['best_left_deep']:>12.0f} {row['best_bushy']:>12.0f} "
            f"{row['optimizer_plan']:>12.0f} {row['bushy_gain']:>10.2f}x"
        )
    print_report("\n".join(lines))
    # Bushy plans should not unlock large gains once RPT has reduced the inputs.
    for row in gains.values():
        assert row["bushy_gain"] < 1.5


@pytest.mark.benchmark(group="figure10")
def test_fig10_wrong_build_side_slowdown(benchmark, context):
    """Flipping the build side of the final join makes the plan slower but not catastrophic."""

    def run():
        db = context.database("job")
        query = job.query(17)
        result = db.execute(query, mode=ExecutionMode.RPT)
        good_plan = result.plan
        assert isinstance(good_plan.root, JoinNode)
        flipped = JoinPlan(root=JoinNode(
            left=good_plan.root.left, right=good_plan.root.right, flip_build_side=True
        ))
        good = db.execute(query, mode=ExecutionMode.RPT, plan=good_plan)
        bad = db.execute(query, mode=ExecutionMode.RPT, plan=flipped)
        return good.stats.cost("abstract"), bad.stats.cost("abstract"), good.aggregates, bad.aggregates

    good_cost, bad_cost, good_agg, bad_agg = benchmark.pedantic(run, rounds=1, iterations=1)
    slowdown = bad_cost / max(good_cost, 1e-9)
    print_report(
        "Figure 10: wrong build side of the top hash join (JOB template 17)\n"
        f"  correct build side cost = {good_cost:.0f}\n"
        f"  flipped build side cost = {bad_cost:.0f}\n"
        f"  slowdown = {slowdown:.2f}x (paper reports 1.37x on JOB 17e)"
    )
    assert good_agg == bad_agg
    assert slowdown >= 0.95  # flipping should never help much and typically hurts
