"""Tracing-overhead gate: observability must cost <2% on the star probe.

The tentpole contract of the tracing subsystem is that it is pay-as-you-go:
with ``tracing=False`` the run loop never touches the tracer, and with
``tracing=True`` the per-op span bookkeeping stays under 2% of the untraced
wall time on the 1M-row star-probe query (with a small absolute slack so
timer noise on sub-second runs cannot flake the gate).  The measurement is
recorded as ``BENCH_observability.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.bench import (
    format_observability_microbench,
    print_report,
    run_observability_microbench,
    write_bench_json,
)

#: Where the perf-trajectory record lands (repo root, next to ROADMAP.md).
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_observability.json"


@pytest.mark.benchmark(group="observability")
def test_tracing_overhead_gate_on_star_probe(benchmark, tmp_path):
    """Span tracing must cost <2% (plus 10ms slack) on the 1M-row probe."""
    cores = os.cpu_count() or 1

    def run():
        return run_observability_microbench(
            fact_rows=1 << 20,
            num_dims=2,
            repeats=3,
        )

    measurement = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(format_observability_microbench(measurement))

    # Refresh the committed perf-trajectory record only when explicitly
    # recording (REPRO_BENCH_RECORD=1); a plain test run writes to tmp so
    # running the suite never dirties the working tree.
    target = (
        BENCH_JSON_PATH
        if os.environ.get("REPRO_BENCH_RECORD")
        else tmp_path / "BENCH_observability.json"
    )
    written = write_bench_json(
        target,
        name="observability_microbench",
        measurements=[measurement.as_dict()],
        metadata={"cores": cores},
    )
    recorded = json.loads(written.read_text())["measurements"]
    assert len(recorded) == 1
    entry = recorded[0]
    assert entry["kind"] == "observability_overhead"
    for field in (
        "baseline_seconds",
        "traced_seconds",
        "overhead_seconds",
        "overhead_fraction",
        "span_count",
    ):
        assert field in entry

    assert measurement.span_count > 0, "traced run must produce spans"
    allowed = max(0.02 * measurement.baseline_seconds, 0.010)
    assert measurement.overhead_seconds <= allowed, (
        f"tracing cost {measurement.overhead_seconds * 1e3:.2f}ms "
        f"({measurement.overhead_fraction * 100:.2f}%) on a "
        f"{measurement.baseline_seconds * 1e3:.0f}ms probe; allowed "
        f"{allowed * 1e3:.2f}ms"
    )
