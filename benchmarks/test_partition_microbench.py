"""Radix-partitioned vs monolithic hash join microbenchmark.

The tentpole claim of the partitioned runtime: for build sides that outgrow
the caches, radix-partitioning (an O(n) hash + radix sort of the small
partition ids) plus per-partition builds and probes beats the monolithic
O(n log n) sort with its cache-missing binary searches.  This benchmark
measures both paths on a ≥1M-row build side and records the run as
``BENCH_partition.json`` at the repo root so the performance trajectory of
the partitioned join is tracked from session to session.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench import (
    format_partition_microbench,
    print_report,
    run_partition_microbench,
    write_bench_json,
)

#: Where the perf-trajectory record lands (repo root, next to ROADMAP.md).
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_partition.json"


@pytest.mark.benchmark(group="partition")
def test_partitioned_join_beats_monolithic_at_1m_rows(benchmark, tmp_path):
    def run():
        return run_partition_microbench(
            build_sizes=(1 << 18, 1 << 20),
            probe_rows=1 << 20,
            bits=8,
            repeats=2,
        )

    measurements = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(format_partition_microbench(measurements))

    # Refresh the committed perf-trajectory record only when explicitly
    # recording (REPRO_BENCH_RECORD=1); a plain test run writes to tmp so
    # running the suite never dirties the working tree.
    target = (
        BENCH_JSON_PATH
        if os.environ.get("REPRO_BENCH_RECORD")
        else tmp_path / "BENCH_partition.json"
    )
    written = write_bench_json(
        target,
        name="partition_microbench",
        measurements=[m.as_dict() for m in measurements],
        metadata={"bits": 8, "probe_rows": 1 << 20},
    )
    assert written.exists()

    at_1m = [m for m in measurements if m.build_rows >= 1 << 20]
    assert at_1m, "sweep must include a >=1M-row build side"
    for m in at_1m:
        # The acceptance point: partitioned beats monolithic end to end on
        # the large build side (the margin is ~3x here; 1.0 guards flake).
        assert m.partitioned_seconds < m.monolithic_seconds, (
            f"partitioned join did not beat monolithic at {m.build_rows} rows: "
            f"{m.partitioned_seconds:.4f}s vs {m.monolithic_seconds:.4f}s"
        )
