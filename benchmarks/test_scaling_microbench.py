"""Thread-vs-process backend scaling on a 1M-row star-probe query.

The tentpole claim of the process backend: pure-Python probe work is
GIL-bound, so thread morsels cannot scale, while process morsels over
shared-memory columns can.  This benchmark runs the same RPT star query
under the serial, thread-parallel, and process backends across a
worker-count sweep and records the curves as ``BENCH_scaling.json`` at the
repo root.

The speedup assertion is gated on the machine: on >=8 cores the process
backend must beat the thread backend by >=4x at the best worker count, on
2-7 cores by >=2x, and on a single core the curves are recorded without a
speedup assertion (there is no parallelism to win; the backends must still
be bit-identical, which the runner asserts on every run).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.bench import (
    format_deadline_overhead_microbench,
    format_scaling_microbench,
    print_report,
    run_deadline_overhead_microbench,
    run_scaling_microbench,
    write_bench_json,
)

#: Where the perf-trajectory record lands (repo root, next to ROADMAP.md).
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_scaling.json"


def _merge_into_record(target: Path, measurement: dict, cores: int) -> Path:
    """Write ``measurement`` into the scaling record, keeping other kinds.

    ``BENCH_scaling.json`` holds both the backend-scaling curves and the
    deadline-overhead measurement (discriminated by the ``"kind"`` key);
    each test replaces only its own entry so the two can be re-recorded
    independently.
    """
    kind = measurement.get("kind")
    existing: list = []
    if target.exists():
        existing = json.loads(target.read_text()).get("measurements", [])
    kept = [m for m in existing if m.get("kind") != kind]
    return write_bench_json(
        target,
        name="scaling_microbench",
        measurements=kept + [measurement],
        metadata={"cores": cores},
    )


@pytest.mark.benchmark(group="scaling")
def test_process_backend_scaling_on_star_probe(benchmark, tmp_path):
    cores = os.cpu_count() or 1

    def run():
        return run_scaling_microbench(
            fact_rows=1 << 20,
            num_dims=2,
            repeats=2,
        )

    measurement = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(format_scaling_microbench(measurement))

    # Refresh the committed perf-trajectory record only when explicitly
    # recording (REPRO_BENCH_RECORD=1); a plain test run writes to tmp so
    # running the suite never dirties the working tree.
    target = (
        BENCH_JSON_PATH
        if os.environ.get("REPRO_BENCH_RECORD")
        else tmp_path / "BENCH_scaling.json"
    )
    written = _merge_into_record(target, measurement.as_dict(), cores)
    assert written.exists()

    assert measurement.process_seconds, "sweep must measure the process backend"
    if cores >= 8:
        assert measurement.process_over_thread_speedup >= 4.0, (
            f"process backend below 4x over threads on {cores} cores: "
            f"{measurement.process_over_thread_speedup:.2f}x"
        )
    elif cores >= 2:
        assert measurement.process_over_thread_speedup >= 2.0, (
            f"process backend below 2x over threads on {cores} cores: "
            f"{measurement.process_over_thread_speedup:.2f}x"
        )
    # Single core: no parallel win is possible; the run still proves
    # bit-identity (asserted inside the runner) and records the curves.


@pytest.mark.benchmark(group="scaling")
def test_deadline_check_overhead_gate_on_star_probe(benchmark, tmp_path):
    """Deadline/cancellation checks must cost <2% on the 1M-row star probe.

    Installing a deadline switches serial kernels to chunked execution with
    a monotonic-clock check per chunk; this gate keeps that machinery
    effectively free.  A small absolute slack (10ms) absorbs timer noise on
    sub-second runs where 2% is single-digit milliseconds.
    """
    cores = os.cpu_count() or 1

    def run():
        return run_deadline_overhead_microbench(
            fact_rows=1 << 20,
            num_dims=2,
            repeats=3,
        )

    measurement = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(format_deadline_overhead_microbench(measurement))

    target = (
        BENCH_JSON_PATH
        if os.environ.get("REPRO_BENCH_RECORD")
        else tmp_path / "BENCH_scaling.json"
    )
    written = _merge_into_record(target, measurement.as_dict(), cores)
    recorded = json.loads(written.read_text())["measurements"]
    deadline_entries = [m for m in recorded if m.get("kind") == "deadline_overhead"]
    assert len(deadline_entries) == 1
    for field in (
        "baseline_seconds",
        "deadline_seconds",
        "overhead_seconds",
        "overhead_fraction",
    ):
        assert field in deadline_entries[0]

    allowed = max(0.02 * measurement.baseline_seconds, 0.010)
    assert measurement.overhead_seconds <= allowed, (
        f"deadline checks cost {measurement.overhead_seconds * 1e3:.2f}ms "
        f"({measurement.overhead_fraction * 100:.2f}%) on a "
        f"{measurement.baseline_seconds * 1e3:.0f}ms probe; allowed "
        f"{allowed * 1e3:.2f}ms"
    )
