"""Thread-vs-process backend scaling on a 1M-row star-probe query.

The tentpole claim of the process backend: pure-Python probe work is
GIL-bound, so thread morsels cannot scale, while process morsels over
shared-memory columns can.  This benchmark runs the same RPT star query
under the serial, thread-parallel, and process backends across a
worker-count sweep and records the curves as ``BENCH_scaling.json`` at the
repo root.

The speedup assertion is gated on the machine: on >=8 cores the process
backend must beat the thread backend by >=4x at the best worker count, on
2-7 cores by >=2x, and on a single core the curves are recorded without a
speedup assertion (there is no parallelism to win; the backends must still
be bit-identical, which the runner asserts on every run).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench import (
    format_scaling_microbench,
    print_report,
    run_scaling_microbench,
    write_bench_json,
)

#: Where the perf-trajectory record lands (repo root, next to ROADMAP.md).
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_scaling.json"


@pytest.mark.benchmark(group="scaling")
def test_process_backend_scaling_on_star_probe(benchmark, tmp_path):
    cores = os.cpu_count() or 1

    def run():
        return run_scaling_microbench(
            fact_rows=1 << 20,
            num_dims=2,
            repeats=2,
        )

    measurement = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(format_scaling_microbench(measurement))

    # Refresh the committed perf-trajectory record only when explicitly
    # recording (REPRO_BENCH_RECORD=1); a plain test run writes to tmp so
    # running the suite never dirties the working tree.
    target = (
        BENCH_JSON_PATH
        if os.environ.get("REPRO_BENCH_RECORD")
        else tmp_path / "BENCH_scaling.json"
    )
    written = write_bench_json(
        target,
        name="scaling_microbench",
        measurements=[measurement.as_dict()],
        metadata={"cores": cores},
    )
    assert written.exists()

    assert measurement.process_seconds, "sweep must measure the process backend"
    if cores >= 8:
        assert measurement.process_over_thread_speedup >= 4.0, (
            f"process backend below 4x over threads on {cores} cores: "
            f"{measurement.process_over_thread_speedup:.2f}x"
        )
    elif cores >= 2:
        assert measurement.process_over_thread_speedup >= 2.0, (
            f"process backend below 2x over threads on {cores} cores: "
            f"{measurement.process_over_thread_speedup:.2f}x"
        )
    # Single core: no parallel win is possible; the run still proves
    # bit-identity (asserted inside the runner) and records the curves.
