"""Concurrent serving benchmark: closed-loop clients over the SQL workloads.

Runs the :mod:`repro.bench.serving` closed-loop driver over all checked-in
``.sql`` files in four regimes — clean serial, clean process, overload
(offered load above admission capacity), and chaos (deterministic fault
injection under concurrency) — and records p50/p95/p99 latency and QPS for
each into ``BENCH_serving.json`` at the repo root.

Beyond the numbers, every run *enforces* the serving acceptance contract:
completed queries are bit-identical to a single-threaded serial baseline,
failures are typed ``ReproError`` subclasses only, overload sheds with
typed ``AdmissionRejected`` (no hangs, no unbounded queues), and the run
ends with zero leaked shm segments and zero outstanding governor
reservations (the driver raises otherwise).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.bench import (
    build_serving_fleet,
    format_serving_report,
    print_report,
    run_serving_benchmark,
    write_bench_json,
)
from repro.engine.server import ServerConfig
from repro.workloads import sqlfiles

#: Where the perf-trajectory record lands (repo root, next to ROADMAP.md).
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

#: Workload scale for the serving sweep (full 56-file set; kept small so
#: the closed-loop run measures serving overheads, not scan time).
SERVING_SCALE = 0.05

REQUIRED_FIELDS = ("p50_ms", "p95_ms", "p99_ms", "qps", "completed", "verified")


@pytest.mark.benchmark(group="serving")
def test_closed_loop_serving_over_sql_workloads(benchmark, tmp_path):
    def run():
        fleet = build_serving_fleet(scale=SERVING_SCALE, seed=1)
        try:
            clean_serial = run_serving_benchmark(
                fleet, clients=8, rounds=2, seed=17, backend="serial",
                kind="clean_serial",
            )
            clean_process = run_serving_benchmark(
                fleet, clients=8, rounds=1, seed=18, backend="process",
                kind="clean_process",
            )
            chaos = run_serving_benchmark(
                fleet, clients=8, rounds=1, seed=19, backend="serial",
                fault_spec="seed:1234,rate:0.05", kind="chaos",
            )
        finally:
            fleet.close()

        # Overload regime: one slot, a one-deep queue, and a near-zero
        # admission wait against eight un-retrying clients — far more
        # offered load than capacity, so shedding must kick in.
        overload_fleet = build_serving_fleet(
            scale=SERVING_SCALE,
            seed=1,
            stems=sqlfiles.stems_for("tpch"),
            server_config=ServerConfig(
                max_concurrent=1, max_queue=1, admission_timeout_seconds=0.02
            ),
        )
        try:
            overload = run_serving_benchmark(
                overload_fleet, clients=8, rounds=2, seed=20, backend="serial",
                retry_rejections=False, kind="overload",
            )
        finally:
            overload_fleet.close()
        return [clean_serial, clean_process, chaos, overload]

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    for report in reports:
        print_report(format_serving_report(report))

    # Refresh the committed perf-trajectory record only when explicitly
    # recording (REPRO_BENCH_RECORD=1); a plain run writes to tmp so the
    # suite never dirties the working tree.
    target = (
        BENCH_JSON_PATH
        if os.environ.get("REPRO_BENCH_RECORD")
        else tmp_path / "BENCH_serving.json"
    )
    written = write_bench_json(
        target,
        name="serving_microbench",
        measurements=[report.as_dict() for report in reports],
        metadata={"scale": SERVING_SCALE, "statements": reports[0].statements},
    )
    recorded = json.loads(written.read_text())["measurements"]
    assert len(recorded) == 4
    for measurement in recorded:
        for fld in REQUIRED_FIELDS:
            assert fld in measurement, f"{measurement['kind']} missing {fld}"

    clean_serial, clean_process, chaos, overload = reports
    # Clean runs complete everything, bit-identically.
    assert clean_serial.completed == clean_serial.statements * 2
    assert clean_serial.verified and clean_process.verified
    assert clean_serial.shed == 0 and clean_process.shed == 0
    # Chaos: every statement either completed bit-identically or raised a
    # typed error (the driver enforces bit-identity and leak-freedom).
    assert chaos.completed + sum(chaos.typed_errors.values()) + chaos.shed == (
        chaos.statements
    )
    # Overload: offered load far above capacity must shed with typed
    # rejections rather than hang — and still complete some queries.
    assert overload.rejected > 0
    assert overload.completed > 0
    assert overload.verified
