"""Tables 1 and 2: Robustness Factors for random left-deep and bushy join orders.

The paper reports, per benchmark, the average / min / max Robustness Factor
(max execution time over min execution time across random join orders) for
vanilla DuckDB and for RPT.  Expected shape: the baseline's average RF is
large (tens to hundreds) with huge maxima, while RPT's stays close to 1
(paper: max 1.6 for left-deep, 7.7 for bushy).

Cyclic queries are excluded from the acyclic aggregates, as in the paper.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    BENCH_PLANS,
    JOB_TEMPLATE_SAMPLE,
    MODES_MAIN,
    TPCDS_QUERY_SAMPLE,
    TPCH_QUERY_SAMPLE,
)
from repro.bench import format_robustness_table, print_report, robustness_table, run_random_plan_experiment
from repro.workloads import job, tpcds, tpch

_WORKLOADS = {
    "TPC-H": ("tpch", tpch, TPCH_QUERY_SAMPLE, tpch.CYCLIC_QUERIES),
    "JOB": ("job", job, JOB_TEMPLATE_SAMPLE, ()),
    "TPC-DS": ("tpcds", tpcds, TPCDS_QUERY_SAMPLE, tpcds.CYCLIC_QUERIES),
}


def _run_table(context, plan_type: str) -> dict:
    rows = {}
    for label, (workload, module, sample, cyclic) in _WORKLOADS.items():
        db = context.database(workload)
        experiments = []
        for number in sample:
            if number in cyclic:
                continue  # Tables 1/2 cover acyclic queries.
            query = module.query(number)
            experiments.append(
                run_random_plan_experiment(
                    db, query, modes=MODES_MAIN, num_plans=BENCH_PLANS,
                    plan_type=plan_type, seed=number,
                )
            )
        rows[label] = robustness_table(experiments, label, MODES_MAIN)
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_robustness_factors_left_deep(benchmark, context):
    rows = benchmark.pedantic(lambda: _run_table(context, "left_deep"), rounds=1, iterations=1)
    print_report(format_robustness_table(
        "Table 1: Robustness Factors for left-deep joins (acyclic queries)", rows, MODES_MAIN
    ))
    for label, summaries in rows.items():
        baseline = summaries[MODES_MAIN[0]]
        rpt = summaries[MODES_MAIN[1]]
        # Shape checks from the paper: RPT is close to 1 and far more robust than the baseline.
        assert rpt.max_rf <= 3.0, f"{label}: RPT left-deep RF should stay near 1"
        assert baseline.max_rf > rpt.max_rf
        assert baseline.avg_rf > rpt.avg_rf


@pytest.mark.benchmark(group="table2")
def test_table2_robustness_factors_bushy(benchmark, context):
    rows = benchmark.pedantic(lambda: _run_table(context, "bushy"), rounds=1, iterations=1)
    print_report(format_robustness_table(
        "Table 2: Robustness Factors for bushy joins (acyclic queries)", rows, MODES_MAIN
    ))
    for label, summaries in rows.items():
        baseline = summaries[MODES_MAIN[0]]
        rpt = summaries[MODES_MAIN[1]]
        assert rpt.max_rf <= 10.0, f"{label}: RPT bushy RF should stay small (paper max 7.7)"
        assert baseline.avg_rf >= rpt.avg_rf
