"""Table 3 / Figures 17-20: average speedups over the baseline with the optimizer's plan.

The paper reports geometric-mean per-query speedups of Bloom Join, PT, and
RPT over vanilla DuckDB on TPC-H, JOB, TPC-DS, and DSB (Bloom Join ≈ 1.05-1.15x,
PT ≈ 1.2-1.5x, RPT ≈ 1.4-1.6x).  Expected shape here: Bloom Join gives a small
improvement, PT and RPT a clearly larger one, and RPT ≥ PT on the TPC-DS/DSB
style snowflake queries (thanks to LargestRoot's full reduction).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    DSB_QUERY_SAMPLE,
    JOB_TEMPLATE_SAMPLE,
    MODES_ALL,
    TPCDS_QUERY_SAMPLE,
    TPCH_QUERY_SAMPLE,
)
from repro.bench import average_speedups, format_speedup_table, print_report, run_speedup_experiment
from repro.engine.modes import ExecutionMode
from repro.workloads import dsb, job, tpcds, tpch

_WORKLOADS = {
    "TPC-H": ("tpch", tpch, TPCH_QUERY_SAMPLE),
    "JOB": ("job", job, JOB_TEMPLATE_SAMPLE),
    "TPC-DS": ("tpcds", tpcds, TPCDS_QUERY_SAMPLE),
    "DSB": ("dsb", dsb, DSB_QUERY_SAMPLE),
}


def _run(context):
    table = {}
    per_query = {}
    for label, (workload, module, sample) in _WORKLOADS.items():
        db = context.database(workload)
        queries = {f"q{n}": module.query(n) for n in sample}
        results = run_speedup_experiment(db, queries, modes=MODES_ALL)
        per_query[label] = results
        # The abstract cost model weighs Bloom probes cheaper than hash probes,
        # matching the paper's wall-clock comparison (Figure 16).
        table[label] = average_speedups(results, metric="abstract")
    return table, per_query


@pytest.mark.benchmark(group="table3")
def test_table3_average_speedups(benchmark, context):
    table, _ = benchmark.pedantic(lambda: _run(context), rounds=1, iterations=1)
    print_report(format_speedup_table(
        "Table 3: Average speedups over DuckDB (optimizer's plan, abstract cost model)",
        table, MODES_ALL,
    ))
    for label, speedups in table.items():
        # RPT and PT should beat the baseline on average; RPT should not lose to Bloom Join.
        assert speedups[ExecutionMode.RPT] >= 0.95, label
        assert speedups[ExecutionMode.RPT] >= speedups[ExecutionMode.BLOOM_JOIN] * 0.9, label
    # On the snowflake benchmarks the full reduction should not trail PT.
    assert table["TPC-DS"][ExecutionMode.RPT] >= table["TPC-DS"][ExecutionMode.PT] * 0.9
    assert table["DSB"][ExecutionMode.RPT] >= table["DSB"][ExecutionMode.PT] * 0.9
