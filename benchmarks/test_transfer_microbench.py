"""Transfer-phase caching microbenchmark: hash-once + artifact cache vs uncached.

The tentpole claim of the hash-once execution layer: the transfer phase's
redundant splitmix64 hashing and key materialization — one fresh pass per
Bloom build/probe — collapses to one hashing pass per key column per query
(hash cache + selection vectors), and repeated queries stop rebuilding
identical Bloom filters and hash passes altogether (cross-query artifact
cache).  This benchmark measures all regimes on a 1M-row star query and
records the run as ``BENCH_transfer.json`` at the repo root so the transfer
phase's performance trajectory is tracked from session to session.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench import (
    format_transfer_microbench,
    print_report,
    run_transfer_microbench,
    write_bench_json,
)

#: Where the perf-trajectory record lands (repo root, next to ROADMAP.md).
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_transfer.json"


@pytest.mark.benchmark(group="transfer")
def test_hash_once_and_warm_artifacts_beat_uncached_at_1m_rows(benchmark, tmp_path):
    def run():
        return run_transfer_microbench(fact_sizes=(1 << 18, 1 << 20), repeats=3)

    measurements = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(format_transfer_microbench(measurements))

    # Refresh the committed perf-trajectory record only when explicitly
    # recording (REPRO_BENCH_RECORD=1); a plain test run writes to tmp so
    # running the suite never dirties the working tree.
    target = (
        BENCH_JSON_PATH
        if os.environ.get("REPRO_BENCH_RECORD")
        else tmp_path / "BENCH_transfer.json"
    )
    written = write_bench_json(
        target,
        name="transfer_microbench",
        measurements=[m.as_dict() for m in measurements],
        metadata={"mode": "rpt", "num_dims": 2, "dim_selectivity": 0.5},
    )
    assert written.exists()

    at_1m = [m for m in measurements if m.fact_rows >= 1 << 20]
    assert at_1m, "sweep must include a >=1M-row fact side"
    for m in at_1m:
        assert m.warm_artifact_hits > 0
        if os.environ.get("CI"):
            # On shared CI runners only the structural outcome is asserted
            # (warm runs actually hit the cache and the JSON shape above is
            # valid); wall-clock ratios are too noisy there by design.
            continue
        # The acceptance points: hash reuse + selection vectors beat the
        # uncached transfer phase on a single query, and a warm artifact
        # cache beats it decisively on repeated queries.  The committed
        # BENCH_transfer.json shows the real margins (~1.35x and ~3x); the
        # thresholds here only guard flake.
        assert m.hash_once_speedup > 1.0, (
            f"hash-once transfer was not faster at {m.fact_rows} rows: "
            f"{m.hash_once_seconds:.4f}s vs {m.uncached_seconds:.4f}s"
        )
        assert m.warm_speedup > 1.2, (
            f"warm artifact cache did not pay off at {m.fact_rows} rows: "
            f"{m.warm_artifact_seconds:.4f}s vs {m.uncached_seconds:.4f}s"
        )
