"""Adversarial example (Figure 12): an empty-output query with quadratic blowup.

Run with::

    python examples/adversarial_blowup.py

The query ``R(A,B) ⋈ S(B,C) ⋈ T(C)`` has an empty output, but any binary
join plan that does not pre-filter must materialize the full ``R ⋈ S``
cross-group product (≈ N²/2 tuples).  Robust Predicate Transfer's transfer
phase discovers the emptiness up front and the join phase processes nothing.
"""

from __future__ import annotations

from repro import ExecutionMode
from repro.optimizer import iter_all_left_deep_orders
from repro.plan.join_plan import JoinPlan
from repro.workloads.synthetic import figure12_instance


def main() -> None:
    instance = figure12_instance(n=800)
    db, query = instance.database, instance.query
    print(instance.description)
    print()

    graph = db.join_graph(query)
    header = f"{'join order':<22} {'mode':<10} {'intermediate rows':>18} {'output':>8}"
    print(header)
    print("-" * len(header))
    for order in iter_all_left_deep_orders(graph):
        plan = JoinPlan.from_left_deep(order)
        for mode in (ExecutionMode.BASELINE, ExecutionMode.RPT):
            result = db.execute(query, mode=mode, plan=plan)
            print(
                f"{' -> '.join(order):<22} {mode.label:<10} "
                f"{result.stats.total_intermediate_rows:>18} {result.stats.output_rows:>8}"
            )
    print()
    print(
        "Every baseline order that joins R with S first pays the quadratic "
        "intermediate; RPT reduces all inputs to zero rows before joining."
    )


if __name__ == "__main__":
    main()
