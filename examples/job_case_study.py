"""Case study on a JOB query: intermediate-result sizes of best vs worst join orders.

Run with::

    python examples/job_case_study.py

This reproduces the shape of the paper's Figure 11 (JOB 2a): without RPT the
worst random join order processes orders of magnitude more intermediate
tuples than the best one (the "diamond problem"); with RPT every
intermediate result is bounded by the output size and the worst/best ratio
collapses to ~1.
"""

from __future__ import annotations

from repro import Database, ExecutionMode
from repro.bench.reporting import format_case_study
from repro.optimizer import generate_left_deep_plans
from repro.workloads import job


def main() -> None:
    db = Database()
    job.load(db, scale=0.3)
    query = job.query(2)  # JOB template 2: cn / k / mc / mk / t
    graph = db.join_graph(query)

    plans = generate_left_deep_plans(graph, 25, seed=2)

    rows = {}
    for mode in (ExecutionMode.BASELINE, ExecutionMode.RPT):
        results = [db.execute(query, mode=mode, plan=plan) for plan in plans]
        by_intermediate = sorted(results, key=lambda r: r.stats.total_intermediate_rows)
        best, worst = by_intermediate[0], by_intermediate[-1]
        for label, result in (("best", best), ("worst", worst)):
            rows[f"{mode.label} / {label} order"] = {
                "sum intermediate rows": float(result.stats.total_intermediate_rows),
                "tuples processed": float(result.stats.total_tuples_processed),
                "output rows": float(result.stats.output_rows),
            }

    print(format_case_study("Figure 11 style case study (JOB template 2)", rows))
    print()

    baseline_ratio = (
        rows["DuckDB / worst order"]["sum intermediate rows"]
        / max(rows["DuckDB / best order"]["sum intermediate rows"], 1.0)
    )
    rpt_ratio = (
        rows["RPT / worst order"]["sum intermediate rows"]
        / max(rows["RPT / best order"]["sum intermediate rows"], 1.0)
    )
    print(f"worst/best intermediate-size ratio: baseline = {baseline_ratio:.1f}x, RPT = {rpt_ratio:.2f}x")

    rpt_result = db.execute(query, mode=ExecutionMode.RPT, plan=plans[0])
    bound = rpt_result.stats.output_rows * max(query.num_joins, 1)
    print(
        f"RPT Yannakakis bound check: sum intermediates "
        f"{rpt_result.stats.total_intermediate_rows} <= n_joins * |OUT| = {bound}"
    )


if __name__ == "__main__":
    main()
