"""Quickstart: build a tiny database, run one query under every execution mode.

Run with::

    python examples/quickstart.py

The example mirrors the paper's running example (JOB 3a): a four-table join
between ``title``, ``movie_keyword``, ``keyword`` and ``movie_info``.  It
shows how to

1. register tables with primary/foreign keys,
2. describe a query as a :class:`repro.QuerySpec`,
3. execute it under the baseline, Bloom Join, original Predicate Transfer,
   Robust Predicate Transfer, and exact Yannakakis modes, and
4. inspect the execution statistics (intermediate result sizes, transfer
   step reductions) that the robustness experiments are built on.
"""

from __future__ import annotations

import numpy as np

from repro import Database, ExecutionMode, JoinCondition, QuerySpec, RelationRef
from repro.expr import eq, lt
from repro.storage.table import ForeignKey


def build_database(seed: int = 0) -> Database:
    """Create a small IMDB-like database (the paper's Figure 1 example schema)."""
    rng = np.random.default_rng(seed)
    n_keyword, n_title, n_movie_keyword, n_movie_info = 134, 2_500, 4_500, 15_000

    db = Database()
    db.register_dataframe(
        "keyword",
        {
            "id": np.arange(1, n_keyword + 1),
            "keyword": [f"keyword-{i}" for i in range(1, n_keyword + 1)],
        },
        primary_key=["id"],
    )
    db.register_dataframe(
        "title",
        {
            "id": np.arange(1, n_title + 1),
            "production_year": rng.integers(1950, 2020, n_title),
        },
        primary_key=["id"],
    )
    db.register_dataframe(
        "movie_keyword",
        {
            "movie_id": rng.integers(1, n_title + 1, n_movie_keyword),
            "keyword_id": rng.integers(1, n_keyword + 1, n_movie_keyword),
        },
        foreign_keys=[
            ForeignKey("movie_id", "title", "id"),
            ForeignKey("keyword_id", "keyword", "id"),
        ],
    )
    db.register_dataframe(
        "movie_info",
        {
            "movie_id": rng.integers(1, n_title + 1, n_movie_info),
            "info_bucket": rng.integers(0, 100, n_movie_info),
        },
        foreign_keys=[ForeignKey("movie_id", "title", "id")],
    )
    return db


def job_3a_like_query() -> QuerySpec:
    """The JOB 3a join structure used throughout the paper's figures."""
    return QuerySpec(
        name="job_3a_like",
        relations=(
            RelationRef("k", "keyword", eq("keyword", "keyword-42")),
            RelationRef("t", "title", lt("production_year", 2005)),
            RelationRef("mk", "movie_keyword"),
            RelationRef("mi", "movie_info"),
        ),
        joins=(
            JoinCondition("mk", "keyword_id", "k", "id"),
            JoinCondition("mk", "movie_id", "t", "id"),
            JoinCondition("mi", "movie_id", "t", "id"),
        ),
    )


def main() -> None:
    db = build_database()
    query = job_3a_like_query()

    print(f"query {query.name}: {len(query.relations)} relations, {query.num_joins} joins")
    print(f"  alpha-acyclic: {db.is_acyclic(query)}, gamma-acyclic: {db.is_gamma_acyclic(query)}")
    print()

    for mode in ExecutionMode:
        result = db.execute(query, mode=mode)
        reduced = ", ".join(f"{a}={n}" for a, n in sorted(result.stats.reduced_rows.items()))
        print(f"[{mode.label:<10}] count(*) = {result.aggregates['count_star']:.0f}")
        print(f"             intermediate rows = {result.stats.total_intermediate_rows}")
        if reduced:
            print(f"             reduced relations: {reduced}")
        if result.join_tree is not None:
            print(f"             LargestRoot tree root = {result.join_tree.root}")
        print()

    # The RPT guarantee in one sentence: every intermediate result of the join
    # phase is bounded by the final output size, no matter the join order.
    rpt = db.execute(query, mode=ExecutionMode.RPT)
    largest_intermediate = max((s.output_rows for s in rpt.stats.join_steps[:-1]), default=0)
    print(
        f"RPT: largest intermediate = {largest_intermediate} rows "
        f"<= output = {rpt.stats.output_rows} rows (Yannakakis bound)"
    )


if __name__ == "__main__":
    main()
