"""SafeSubjoin in action: detecting unsafe join orders of a non-γ-acyclic query.

Run with::

    python examples/safe_join_orders.py

Uses the §3.2 example ``R(A,B,C) ⋈ S(A,B) ⋈ T(B,C)``: the query is α-acyclic
(so RPT fully reduces it) but *not* γ-acyclic, and the subjoin ``S ⋈ T``
explodes quadratically even on the fully reduced instance.  SafeSubjoin
flags exactly the join orders that start with that subjoin, and executing
them confirms the blowup.
"""

from __future__ import annotations

from repro import ExecutionMode
from repro.core import is_alpha_acyclic, is_gamma_acyclic, is_safe_join_order, safe_subjoin
from repro.optimizer import iter_all_left_deep_orders
from repro.plan.join_plan import JoinPlan
from repro.workloads.synthetic import unsafe_subjoin_instance


def main() -> None:
    instance = unsafe_subjoin_instance(n=400)
    db, query = instance.database, instance.query
    graph = db.join_graph(query)

    print(instance.description)
    print(f"alpha-acyclic: {is_alpha_acyclic(graph)}, gamma-acyclic: {is_gamma_acyclic(graph)}")
    print()
    print(f"SafeSubjoin({{r, s}}) = {safe_subjoin(graph, ['r', 's'])}")
    print(f"SafeSubjoin({{r, t}}) = {safe_subjoin(graph, ['r', 't'])}")
    print(f"SafeSubjoin({{s, t}}) = {safe_subjoin(graph, ['s', 't'])}   <-- the unsafe one")
    print()

    header = f"{'join order':<18} {'safe?':<7} {'max intermediate (RPT)':>24} {'output':>8}"
    print(header)
    print("-" * len(header))
    for order in iter_all_left_deep_orders(graph):
        plan = JoinPlan.from_left_deep(order)
        safe = is_safe_join_order(graph, order)
        result = db.execute(query, mode=ExecutionMode.RPT, plan=plan)
        max_intermediate = max((s.output_rows for s in result.stats.join_steps[:-1]), default=0)
        print(
            f"{' -> '.join(order):<18} {str(safe):<7} {max_intermediate:>24} "
            f"{result.stats.output_rows:>8}"
        )
    print()
    print(
        "Orders that join s and t first are flagged unsafe by SafeSubjoin and "
        "indeed materialize a quadratic intermediate even after full reduction."
    )


if __name__ == "__main__":
    main()
