"""SQL quickstart: feed SQL text straight to the engine.

Run with::

    python examples/sql_quickstart.py

The example loads the scaled-down TPC-H database and shows the SQL front
end end to end:

1. ``Database.sql`` — execute a SQL string under any execution mode,
2. ``EXPLAIN SELECT ...`` / ``Database.explain_sql`` — inspect the compiled
   physical plan without executing,
3. the checked-in ``.sql`` workload files (``repro.workloads.sqlfiles``),
4. the ``QuerySpec → SQL`` formatter and its round-trip guarantee, and
5. the caret diagnostics every malformed input produces.
"""

from __future__ import annotations

from repro import Database, ExecutionMode, SqlError
from repro.sql import compile_statement, to_sql
from repro.workloads import sqlfiles, tpch


def main() -> None:
    db = Database()
    tpch.load(db, scale=0.1, seed=42)

    # 1. SQL text in, QueryResult out — same engine, same five modes.
    text = """
    -- name: building_revenue
    SELECT COUNT(*) AS orders_joined, SUM(l.l_extendedprice) AS revenue
    FROM customer AS c, orders AS o, lineitem AS l
    WHERE o.o_custkey = c.c_custkey
      AND l.l_orderkey = o.o_orderkey
      AND c.c_mktsegment = 'BUILDING'
      AND o.o_orderdate < 1200
    """
    for mode in (ExecutionMode.BASELINE, ExecutionMode.RPT):
        result = db.sql(text, mode=mode)
        print(f"{mode.label:<10} {result.aggregates}")

    # 2. EXPLAIN: the compiled physical plan, without executing.
    explained = db.sql("EXPLAIN " + text.lstrip())
    print("\nEXPLAIN (RPT):")
    print(explained.render())

    # 3. Checked-in workload files: every .sql file is a ready-made workload.
    q5 = sqlfiles.sql_text("tpch_q5")
    result = db.sql(q5, mode=ExecutionMode.RPT)
    print(f"\ntpch_q5.sql -> {result.query.name}: {result.aggregates}")

    # 4. QuerySpec -> SQL -> QuerySpec round trip.
    spec = tpch.query(9)
    rendered = to_sql(spec)
    assert compile_statement(rendered, db.catalog).query == spec
    print(f"\nround-trip OK for {spec.name}; formatter output starts:")
    print("\n".join(rendered.splitlines()[:4]))

    # 5. Malformed input: SqlError with a caret, never a bare exception.
    try:
        db.sql("SELECT COUNT(*) FROM orders o WHERE o.o_orderdat < 100")
    except SqlError as error:
        print("\ndiagnostics demo:")
        print(error)


if __name__ == "__main__":
    main()
