"""Join-order robustness on TPC-H: the Figure 6a / Table 1 experiment in miniature.

Run with::

    python examples/tpch_robustness.py

For a handful of TPC-H queries this script executes many random left-deep
join orders under the baseline engine and under Robust Predicate Transfer,
and reports the Robustness Factor (max/min cost over the random orders) for
each.  The expected outcome — the paper's headline result — is a baseline RF
that varies wildly across queries (often 10x-1000x) while the RPT RF stays
close to 1.
"""

from __future__ import annotations

from repro import Database, ExecutionMode
from repro.bench import (
    format_robustness_factors,
    robustness_table,
    run_random_plan_experiment,
)
from repro.bench.reporting import format_robustness_table
from repro.workloads import tpch

QUERIES = (3, 5, 10, 11, 18, 21)
MODES = (ExecutionMode.BASELINE, ExecutionMode.RPT)


def main() -> None:
    db = Database()
    counts = tpch.load(db, scale=0.2)
    print("TPC-H loaded:", ", ".join(f"{t}={n}" for t, n in counts.items()))
    print()

    experiments = []
    factors = []
    for number in QUERIES:
        query = tpch.query(number)
        experiment = run_random_plan_experiment(
            db, query, modes=MODES, plan_type="left_deep", seed=number, max_plans=15
        )
        experiments.append(experiment)
        for mode in MODES:
            factors.append(experiment.robustness(mode))

    print(format_robustness_factors("Per-query robustness factors (cost = tuples processed)", factors))
    print()

    table = robustness_table(experiments, benchmark="TPC-H", modes=MODES)
    print(format_robustness_table("Table 1 style summary (left-deep)", {"TPC-H": table}, MODES))
    print()

    baseline_rf = table[ExecutionMode.BASELINE]
    rpt_rf = table[ExecutionMode.RPT]
    print(
        f"Baseline worst-case RF = {baseline_rf.max_rf:.1f}x, "
        f"RPT worst-case RF = {rpt_rf.max_rf:.1f}x  "
        f"(improvement: {baseline_rf.max_rf / rpt_rf.max_rf:.1f}x)"
    )


if __name__ == "__main__":
    main()
