"""repro — reproduction of "Debunking the Myth of Join Ordering: Toward Robust SQL Analytics".

The package implements Robust Predicate Transfer (RPT) and every substrate
it needs — a vectorized columnar engine, Bloom filters, a cost-based
optimizer, benchmark workload generators, and a benchmark harness — in pure
Python/NumPy.

Quickstart::

    from repro import Database, ExecutionMode
    from repro.workloads import tpch

    db = Database()
    tpch.load(db, scale=0.01, seed=42)
    query = tpch.query(5)
    result = db.execute(query, mode=ExecutionMode.RPT)
    print(result.aggregates, result.stats.summary())
"""

from repro.engine.database import (
    Database,
    ExecutionOptions,
    ExplainAnalyzeResult,
    ExplainResult,
    QueryResult,
)
from repro.engine.modes import ExecutionConfig, ExecutionMode
from repro.engine.server import Server, ServerConfig, ServerStats
from repro.engine.session import Session
from repro.errors import AdmissionRejected, SqlError
from repro.plan.physical import PhysicalPlan
from repro.query import (
    AggregateSpec,
    JoinCondition,
    PostJoinPredicate,
    QualifiedComparison,
    QuerySpec,
    RelationRef,
    count_star,
)

__version__ = "1.0.0"

__all__ = [
    "AdmissionRejected",
    "AggregateSpec",
    "Database",
    "ExecutionConfig",
    "ExecutionMode",
    "ExecutionOptions",
    "ExplainAnalyzeResult",
    "ExplainResult",
    "JoinCondition",
    "PhysicalPlan",
    "PostJoinPredicate",
    "QualifiedComparison",
    "QueryResult",
    "QuerySpec",
    "RelationRef",
    "Server",
    "ServerConfig",
    "ServerStats",
    "Session",
    "SqlError",
    "count_star",
    "__version__",
]
