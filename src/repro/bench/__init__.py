"""Benchmark harness: experiment runners, microbenchmarks, and report printers."""

from repro.bench.harness import (
    DEFAULT_METRIC,
    DEFAULT_SCALE,
    PlanCost,
    RandomPlanExperiment,
    WorkloadContext,
    average_speedups,
    robustness_table,
    run_random_plan_experiment,
    run_speedup_experiment,
)
from repro.bench.microbench import (
    DEFAULT_BUILD_SIZES,
    ProbeMeasurement,
    format_probe_microbenchmark,
    run_probe_microbenchmark,
)
from repro.bench.reporting import (
    format_case_study,
    format_distribution_series,
    format_robustness_factors,
    format_robustness_table,
    format_speedup_table,
    print_report,
)

__all__ = [
    "DEFAULT_BUILD_SIZES",
    "DEFAULT_METRIC",
    "DEFAULT_SCALE",
    "PlanCost",
    "ProbeMeasurement",
    "RandomPlanExperiment",
    "WorkloadContext",
    "average_speedups",
    "format_case_study",
    "format_distribution_series",
    "format_probe_microbenchmark",
    "format_robustness_factors",
    "format_robustness_table",
    "format_speedup_table",
    "print_report",
    "robustness_table",
    "run_probe_microbenchmark",
    "run_random_plan_experiment",
    "run_speedup_experiment",
]
