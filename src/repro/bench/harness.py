"""Benchmark harness: shared machinery for regenerating the paper's tables and figures.

The harness keeps the experiment logic out of the pytest-benchmark files so
that the same code paths can be exercised by unit tests, the example
scripts, and the benchmark suite.  Its central pieces are:

* :class:`WorkloadContext` — loads and caches one database per workload at a
  chosen scale so repeated experiments do not regenerate data;
* :func:`run_random_plan_experiment` — the Figure 6/7 style sweep: execute a
  query under many random join orders for several execution modes and
  collect per-plan costs;
* :func:`run_speedup_experiment` — the Table 3 / Figures 17-20 style
  comparison using the optimizer's plan for every mode;
* :func:`robustness_table` — aggregates per-query robustness factors into
  the Table 1 / Table 2 rows.
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.core.robustness import (
    BenchmarkRobustnessSummary,
    RobustnessFactor,
    geometric_mean,
    robustness_factor,
    speedup,
    summarize_robustness,
)
from repro.engine.database import Database, ExecutionOptions, QueryResult
from repro.engine.modes import ExecutionMode
from repro.errors import BenchmarkError
from repro.optimizer.random_plans import (
    generate_bushy_plans,
    generate_left_deep_plans,
    paper_sample_size,
)
from repro.plan.join_plan import JoinPlan
from repro.query import QuerySpec
from repro.workloads import dsb, job, tpcds, tpch

#: Default cost metric for robustness experiments (deterministic at small scale).
DEFAULT_METRIC = "tuples"

#: Default workload scale for CI-sized experiment runs.
DEFAULT_SCALE = 0.15


@dataclass
class WorkloadContext:
    """Caches loaded benchmark databases so experiments can share them."""

    scale: float = DEFAULT_SCALE
    seed: int = 42
    _databases: Dict[str, Database] = field(default_factory=dict)

    _LOADERS: Dict[str, Callable] = field(
        default_factory=lambda: {
            "tpch": tpch.load,
            "job": job.load,
            "tpcds": tpcds.load,
            "dsb": dsb.load,
        }
    )

    def database(self, workload: str) -> Database:
        """Return (and lazily load) the database for ``workload``."""
        if workload not in self._LOADERS:
            raise BenchmarkError(f"unknown workload {workload!r}; expected one of {sorted(self._LOADERS)}")
        if workload not in self._databases:
            db = Database()
            self._LOADERS[workload](db, scale=self.scale, seed=self.seed)
            self._databases[workload] = db
        return self._databases[workload]

    def queries(self, workload: str) -> Dict[str, QuerySpec]:
        """All queries of a workload, keyed by short name."""
        module = {"tpch": tpch, "job": job, "tpcds": tpcds, "dsb": dsb}[workload]
        return module.all_queries()


@dataclass(frozen=True)
class PlanCost:
    """Cost of executing one plan of one query under one mode."""

    query_name: str
    mode: ExecutionMode
    plan: JoinPlan
    cost: float
    elapsed_seconds: float
    intermediate_rows: int
    output_rows: int
    abstract_cost: float = 0.0
    #: Wall seconds per physical-op kind — the uniform per-op breakdown every
    #: mode reports now that all modes execute through the PhysicalPlan path.
    op_seconds: Mapping[str, float] = field(default_factory=dict)


@dataclass
class RandomPlanExperiment:
    """Results of a random-join-order sweep for one query."""

    query_name: str
    plan_type: str
    costs: Dict[ExecutionMode, List[PlanCost]] = field(default_factory=dict)

    def robustness(self, mode: ExecutionMode, metric: str = DEFAULT_METRIC) -> RobustnessFactor:
        """Robustness factor for one mode (over the chosen metric)."""
        entries = self.costs.get(mode, [])
        if not entries:
            raise BenchmarkError(f"no plans were executed for mode {mode}")
        values = [_metric_value(entry, metric) for entry in entries]
        return robustness_factor(self.query_name, mode.value, values)

    def normalized_costs(self, mode: ExecutionMode, baseline_cost: float, metric: str = DEFAULT_METRIC) -> List[float]:
        """Per-plan costs normalized by a baseline value (Figure 6/7 y-axis)."""
        if baseline_cost <= 0:
            raise BenchmarkError("baseline cost must be positive for normalization")
        return [_metric_value(e, metric) / baseline_cost for e in self.costs.get(mode, [])]


def _metric_value(entry: PlanCost, metric: str) -> float:
    if metric == "time":
        return entry.elapsed_seconds
    if metric == "intermediate":
        return float(entry.intermediate_rows)
    if metric == "tuples":
        return entry.cost
    if metric == "abstract":
        return entry.abstract_cost
    raise BenchmarkError(f"unknown metric {metric!r}")


def run_random_plan_experiment(
    db: Database,
    query: QuerySpec,
    modes: Sequence[ExecutionMode] = (ExecutionMode.BASELINE, ExecutionMode.RPT),
    num_plans: Optional[int] = None,
    plan_type: str = "left_deep",
    seed: int = 0,
    options: Optional[ExecutionOptions] = None,
    max_plans: int = 40,
) -> RandomPlanExperiment:
    """Execute ``query`` under random join orders for each mode.

    ``num_plans`` defaults to the paper's ``70·m − 190`` rule capped at
    ``max_plans`` (the paper uses up to 1000 plans per query on a 2×48-core
    server; the cap keeps the pure-Python sweep tractable while still
    sampling the plan space broadly).
    """
    graph = db.join_graph(query)
    if num_plans is None:
        num_plans = min(paper_sample_size(query.num_joins), max_plans)
    if plan_type == "left_deep":
        plans = generate_left_deep_plans(graph, num_plans, seed=seed)
    elif plan_type == "bushy":
        plans = generate_bushy_plans(graph, num_plans, seed=seed)
    else:
        raise BenchmarkError(f"unknown plan type {plan_type!r}")

    experiment = RandomPlanExperiment(query_name=query.name, plan_type=plan_type)
    for mode in modes:
        entries: List[PlanCost] = []
        for plan in plans:
            result = db.execute(query, mode=mode, plan=plan, options=options)
            entries.append(_plan_cost(query, mode, plan, result))
        experiment.costs[mode] = entries
    return experiment


def run_speedup_experiment(
    db: Database,
    queries: Mapping[str, QuerySpec],
    modes: Sequence[ExecutionMode] = (
        ExecutionMode.BASELINE,
        ExecutionMode.BLOOM_JOIN,
        ExecutionMode.PT,
        ExecutionMode.RPT,
    ),
    metric: str = DEFAULT_METRIC,
    options: Optional[ExecutionOptions] = None,
) -> Dict[str, Dict[ExecutionMode, PlanCost]]:
    """Execute every query with the optimizer's plan under every mode.

    Returns per-query, per-mode costs; aggregate with :func:`average_speedups`.
    """
    results: Dict[str, Dict[ExecutionMode, PlanCost]] = {}
    for name, query in queries.items():
        plan = db.optimizer_plan(query, options)
        per_mode: Dict[ExecutionMode, PlanCost] = {}
        for mode in modes:
            result = db.execute(query, mode=mode, plan=plan, options=options)
            per_mode[mode] = _plan_cost(query, mode, plan, result)
        results[name] = per_mode
    return results


def average_speedups(
    results: Mapping[str, Mapping[ExecutionMode, PlanCost]],
    baseline: ExecutionMode = ExecutionMode.BASELINE,
    metric: str = DEFAULT_METRIC,
) -> Dict[ExecutionMode, float]:
    """Geometric-mean speedup of every mode over ``baseline`` (Table 3 rows)."""
    modes = {mode for per_mode in results.values() for mode in per_mode}
    speedups: Dict[ExecutionMode, List[float]] = {mode: [] for mode in modes}
    for per_mode in results.values():
        base = _metric_value(per_mode[baseline], metric)
        for mode, entry in per_mode.items():
            speedups[mode].append(speedup(base, _metric_value(entry, metric)))
    return {mode: geometric_mean(values) for mode, values in speedups.items() if values}


def robustness_table(
    experiments: Iterable[RandomPlanExperiment],
    benchmark: str,
    modes: Sequence[ExecutionMode],
    metric: str = DEFAULT_METRIC,
    exclude_queries: Sequence[str] = (),
) -> Dict[ExecutionMode, BenchmarkRobustnessSummary]:
    """Aggregate per-query robustness factors into Table 1 / Table 2 rows."""
    experiments = [e for e in experiments if e.query_name not in set(exclude_queries)]
    if not experiments:
        raise BenchmarkError("no experiments supplied to robustness_table")
    table: Dict[ExecutionMode, BenchmarkRobustnessSummary] = {}
    for mode in modes:
        factors = [e.robustness(mode, metric) for e in experiments]
        table[mode] = summarize_robustness(benchmark, mode.value, factors)
    return table


def run_uniform_trace(
    db: Database,
    query: QuerySpec,
    modes: Sequence[ExecutionMode] = tuple(ExecutionMode),
    plan: Optional[JoinPlan] = None,
    options: Optional[ExecutionOptions] = None,
) -> Dict[ExecutionMode, QueryResult]:
    """Execute one query under every mode and return the per-mode results.

    Because every mode compiles to the same PhysicalPlan op vocabulary, the
    returned results carry directly comparable per-op traces
    (``result.stats.op_trace()`` / ``result.stats.op_seconds_by_kind()``).
    Render them with :func:`repro.bench.reporting.format_op_traces`.
    """
    if plan is None:
        plan = db.optimizer_plan(query, options)
    return {mode: db.execute(query, mode=mode, plan=plan, options=options) for mode in modes}


def run_sql_trace(
    db: Database,
    text: str,
    modes: Sequence[ExecutionMode] = tuple(ExecutionMode),
    plan: Optional[JoinPlan] = None,
    options: Optional[ExecutionOptions] = None,
    name: Optional[str] = None,
) -> Dict[ExecutionMode, QueryResult]:
    """SQL-text twin of :func:`run_uniform_trace`.

    Compiles ``text`` once through the SQL front end (so every mode runs the
    same lowered :class:`~repro.query.QuerySpec` and, by default, the same
    optimizer plan) and executes it under every mode.
    """
    from repro.sql import compile_statement

    compiled = compile_statement(text, db.catalog, name=name)
    if compiled.explain:
        raise BenchmarkError(
            "run_sql_trace executes its statement under every mode; strip the "
            "EXPLAIN prefix, or use Database.explain_sql for planning only"
        )
    return run_uniform_trace(db, compiled.query, modes=modes, plan=plan, options=options)


def write_bench_json(
    path: Union[str, Path],
    name: str,
    measurements: Sequence[Mapping[str, Any]],
    metadata: Optional[Mapping[str, Any]] = None,
) -> Path:
    """Persist one benchmark run as a ``BENCH_*.json`` record.

    The record is the unit of the repo's performance trajectory: each run
    writes ``{name, environment, metadata, measurements}`` so successive
    sessions (and CI) can diff the same benchmark over time.  Returns the
    written path.
    """
    path = Path(path)
    payload = {
        "name": name,
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "metadata": dict(metadata or {}),
        "measurements": [dict(m) for m in measurements],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def _plan_cost(query: QuerySpec, mode: ExecutionMode, plan: JoinPlan, result: QueryResult) -> PlanCost:
    return PlanCost(
        query_name=query.name,
        mode=mode,
        plan=plan,
        cost=result.stats.cost(DEFAULT_METRIC),
        elapsed_seconds=result.stats.elapsed_seconds,
        intermediate_rows=result.stats.total_intermediate_rows,
        output_rows=result.stats.output_rows,
        abstract_cost=result.stats.cost("abstract"),
        op_seconds=result.stats.op_seconds_by_kind(),
    )
