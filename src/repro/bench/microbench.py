"""Microbenchmarks: Bloom probe vs hash probe (Figure 16) and kernel sweeps.

The paper's Figure 16 fixes the probe side at 10⁹ rows and varies the build
side from 128 to 10⁹ rows, comparing DuckDB's vectorized hash probe against
Arrow's (SIMD) blocked Bloom filter probe.  The reproduction runs the same
sweep (with smaller sizes appropriate for pure Python) over this engine's
actual probe paths:

* hash probe  — :func:`repro.exec.kernels.match_keys` (sort + binary search,
  the engine's hash-join matching kernel);
* Bloom probe — :meth:`repro.bloom.BloomFilter.probe`.

The reported quantity is seconds per probe for each build-side size, from
which the Bloom:hash advantage factor can be computed.

A third sweep (:func:`run_partition_microbench`) compares the monolithic
hash join against the radix-partitioned one
(:class:`~repro.exec.kernels.PartitionedHashIndex`) as the build side grows,
with the partition tasks additionally dispatched through the parallel
(thread) backend's pool and the monolithic probe fanned out through the
process backend; its results feed the repo's ``BENCH_partition.json``
perf-trajectory record.

A fourth sweep (:func:`run_scaling_microbench`) runs one RPT star-probe
query end to end under the serial, thread-parallel, and process-parallel
backends across a worker-count sweep — the thread-vs-process scaling
curves recorded as ``BENCH_scaling.json``.

A second sweep (:func:`run_semijoin_kernel_microbench`) compares the exact
semi-join membership kernel strategies on large inputs: ``np.isin`` (the
engine's historical implementation) against the adaptive
:class:`~repro.exec.kernels.HashIndex` kernel
:func:`~repro.exec.kernels.semi_join_mask` now uses (bitmap lookup for
bounded key domains, sort + ``searchsorted`` once amortized), plus the
cost when the index is reused across probes (the transfer phase probing
the same source in the forward and backward pass).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.bloom.bloom_filter import BloomFilter
from repro.exec.kernels import (
    HashIndex,
    PartitionedHashIndex,
    match_keys,
    semi_join_mask,
)
from repro.exec.pipeline import ParallelBackend

#: Build-side sizes swept by default (the paper goes from 128 to 1G).
DEFAULT_BUILD_SIZES = (128, 512, 2_048, 8_192, 32_768, 131_072, 524_288)

#: Default probe-side size (the paper uses 1 billion; scaled down here).
DEFAULT_PROBE_ROWS = 1_000_000


@dataclass(frozen=True)
class ProbeMeasurement:
    """Timing of one probe strategy at one build-side size."""

    build_rows: int
    probe_rows: int
    hash_probe_seconds: float
    bloom_probe_seconds: float
    exact_semijoin_seconds: float
    bloom_filter_bytes: int

    @property
    def bloom_advantage(self) -> float:
        """How many times faster the Bloom probe is than the hash probe."""
        if self.bloom_probe_seconds <= 0:
            return float("inf")
        return self.hash_probe_seconds / self.bloom_probe_seconds


def run_probe_microbenchmark(
    build_sizes: Sequence[int] = DEFAULT_BUILD_SIZES,
    probe_rows: int = DEFAULT_PROBE_ROWS,
    key_domain: int = 2**30,
    seed: int = 5,
    repeats: int = 1,
) -> List[ProbeMeasurement]:
    """Run the Figure 16 sweep and return one measurement per build size."""
    rng = np.random.default_rng(seed)
    probe_keys = rng.integers(0, key_domain, size=probe_rows, dtype=np.int64)
    measurements: List[ProbeMeasurement] = []
    for build_rows in build_sizes:
        build_keys = rng.integers(0, key_domain, size=build_rows, dtype=np.int64)

        hash_seconds = _best_time(lambda: match_keys(probe_keys, build_keys), repeats)

        bloom = BloomFilter(expected_keys=build_rows)
        bloom.insert(build_keys)
        bloom_seconds = _best_time(lambda: bloom.probe(probe_keys), repeats)

        exact_seconds = _best_time(lambda: semi_join_mask(probe_keys, build_keys), repeats)

        measurements.append(
            ProbeMeasurement(
                build_rows=build_rows,
                probe_rows=probe_rows,
                hash_probe_seconds=hash_seconds,
                bloom_probe_seconds=bloom_seconds,
                exact_semijoin_seconds=exact_seconds,
                bloom_filter_bytes=bloom.size_bytes,
            )
        )
    return measurements


def format_probe_microbenchmark(measurements: Sequence[ProbeMeasurement]) -> str:
    """Render the Figure 16 series as a table."""
    lines = [
        "Figure 16: Bloom probe vs hash probe (probe side fixed, build side varies)",
        f"{'build rows':>12} {'hash (s)':>12} {'bloom (s)':>12} {'exact SJ (s)':>14} {'bloom speedup':>14}",
    ]
    for m in measurements:
        lines.append(
            f"{m.build_rows:>12} {m.hash_probe_seconds:>12.4f} {m.bloom_probe_seconds:>12.4f} "
            f"{m.exact_semijoin_seconds:>14.4f} {m.bloom_advantage:>13.1f}x"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class SemiJoinKernelMeasurement:
    """Timing of the semi-join membership strategies at one filter-side size."""

    probe_rows: int
    filter_rows: int
    isin_seconds: float
    oneshot_seconds: float
    indexed_probe_seconds: float

    @property
    def oneshot_speedup(self) -> float:
        """Speedup of a one-shot :func:`semi_join_mask` call over ``np.isin``.

        The adaptive kernel picks a bitmap lookup for bounded key domains
        and delegates to ``np.isin`` otherwise, so this is >= ~1x by
        construction in both regimes.
        """
        if self.oneshot_seconds <= 0:
            return float("inf")
        return self.isin_seconds / self.oneshot_seconds

    @property
    def indexed_speedup(self) -> float:
        """Speedup over ``np.isin`` when the built index is reused across probes."""
        if self.indexed_probe_seconds <= 0:
            return float("inf")
        return self.isin_seconds / self.indexed_probe_seconds


#: Filter-side sizes swept by the semi-join kernel microbenchmark.
DEFAULT_FILTER_SIZES = (1_000, 10_000, 100_000, 1_000_000)


def run_semijoin_kernel_microbench(
    probe_rows: int = 1_000_000,
    filter_sizes: Sequence[int] = DEFAULT_FILTER_SIZES,
    key_domain: int = 2**22,
    seed: int = 11,
    repeats: int = 3,
) -> List[SemiJoinKernelMeasurement]:
    """Compare semi-join membership kernels on ``probe_rows``-sized inputs.

    Three strategies per filter size: ``np.isin`` (the historical kernel),
    a one-shot :func:`~repro.exec.kernels.semi_join_mask` call (fresh
    :class:`~repro.exec.kernels.HashIndex`: bitmap lookup for bounded
    domains, ``np.isin`` fallback otherwise), and a repeat probe against an
    already-used index (the amortized regime the executor's index cache
    hits — bitmap or cached sort + ``searchsorted``).  The default key
    domain models realistic id/dictionary-code columns, where the bitmap
    fast path applies; pass a huge ``key_domain`` (e.g. ``2**60``) to
    measure the unbounded regime, where ``np.isin`` is already optimal for
    whole-column probes (the kernel delegates to it, ~1x) and the cached
    sort pays off only for repeated sub-column (chunked) probes.
    """
    rng = np.random.default_rng(seed)
    probe_keys = rng.integers(0, key_domain, size=probe_rows, dtype=np.int64)
    measurements: List[SemiJoinKernelMeasurement] = []
    for filter_rows in filter_sizes:
        filter_keys = rng.integers(0, key_domain, size=filter_rows, dtype=np.int64)
        isin_seconds = _best_time(lambda: np.isin(probe_keys, filter_keys), repeats)
        oneshot_seconds = _best_time(lambda: semi_join_mask(probe_keys, filter_keys), repeats)
        index = HashIndex(filter_keys)
        index.contains(probe_keys)  # warm: reuse regime measures repeat probes
        indexed_seconds = _best_time(lambda: index.contains(probe_keys), repeats)
        measurements.append(
            SemiJoinKernelMeasurement(
                probe_rows=probe_rows,
                filter_rows=filter_rows,
                isin_seconds=isin_seconds,
                oneshot_seconds=oneshot_seconds,
                indexed_probe_seconds=indexed_seconds,
            )
        )
    return measurements


def format_semijoin_kernel_microbench(
    measurements: Sequence[SemiJoinKernelMeasurement],
) -> str:
    """Render the semi-join kernel sweep as a table."""
    lines = [
        "Semi-join membership kernels (probe side fixed, filter side varies)",
        f"{'filter rows':>12} {'np.isin (s)':>12} {'one-shot (s)':>12} {'reused (s)':>12} "
        f"{'1shot spdup':>13} {'reused spdup':>14}",
    ]
    for m in measurements:
        lines.append(
            f"{m.filter_rows:>12} {m.isin_seconds:>12.4f} {m.oneshot_seconds:>12.4f} "
            f"{m.indexed_probe_seconds:>12.4f} {m.oneshot_speedup:>12.1f}x {m.indexed_speedup:>13.1f}x"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class PartitionJoinMeasurement:
    """Monolithic vs radix-partitioned hash join timings at one build size."""

    build_rows: int
    probe_rows: int
    bits: int
    monolithic_build_seconds: float
    monolithic_probe_seconds: float
    partitioned_build_seconds: float
    partitioned_probe_seconds: float
    parallel_build_seconds: Optional[float] = None
    parallel_probe_seconds: Optional[float] = None
    process_probe_seconds: Optional[float] = None

    @property
    def monolithic_seconds(self) -> float:
        """Total monolithic join time (build + probe)."""
        return self.monolithic_build_seconds + self.monolithic_probe_seconds

    @property
    def partitioned_seconds(self) -> float:
        """Total partitioned join time (build + probe)."""
        return self.partitioned_build_seconds + self.partitioned_probe_seconds

    @property
    def speedup(self) -> float:
        """How many times faster the partitioned join is end to end."""
        if self.partitioned_seconds <= 0:
            return float("inf")
        return self.monolithic_seconds / self.partitioned_seconds

    def as_dict(self) -> dict:
        """JSON-ready representation (used for the ``BENCH_partition.json`` record)."""
        return {
            "build_rows": self.build_rows,
            "probe_rows": self.probe_rows,
            "bits": self.bits,
            "monolithic_build_seconds": self.monolithic_build_seconds,
            "monolithic_probe_seconds": self.monolithic_probe_seconds,
            "partitioned_build_seconds": self.partitioned_build_seconds,
            "partitioned_probe_seconds": self.partitioned_probe_seconds,
            "parallel_build_seconds": self.parallel_build_seconds,
            "parallel_probe_seconds": self.parallel_probe_seconds,
            "process_probe_seconds": self.process_probe_seconds,
            "speedup": self.speedup,
        }


#: Build-side sizes swept by the partition microbenchmark (the acceptance
#: point is the ≥1M-row build side).
DEFAULT_PARTITION_BUILD_SIZES = (1 << 18, 1 << 20)


def run_partition_microbench(
    build_sizes: Sequence[int] = DEFAULT_PARTITION_BUILD_SIZES,
    probe_rows: int = 1_000_000,
    bits: int = 8,
    key_domain: int = 2**62,
    seed: int = 13,
    repeats: int = 3,
    num_threads: Optional[int] = None,
    num_workers: Optional[int] = None,
) -> List[PartitionJoinMeasurement]:
    """Compare monolithic vs radix-partitioned hash joins across build sizes.

    For each build size four variants run over the same data: the
    monolithic :class:`~repro.exec.kernels.HashIndex` (one O(n log n) stable
    sort, probes binary-searching the full build array), the serial
    :class:`~repro.exec.kernels.PartitionedHashIndex` (O(n) radix
    partitioning, per-partition sorts, probes searching one cache-resident
    partition), the partitioned join with its partition tasks dispatched
    through a :class:`~repro.exec.pipeline.ParallelBackend` pool, and the
    monolithic probe fanned out through the
    :class:`~repro.exec.process.ProcessBackend` (morsels over shared-memory
    columns; partitioned builds/probes take closures and cannot cross the
    process boundary, so only the monolithic match has a process variant).
    ``num_threads`` / ``num_workers`` default to the machine's core count
    (capped at 4); pass ``0`` to skip the corresponding variant.  Build
    (index construction) and probe (matching) are timed separately; the huge
    ``key_domain`` keeps the bitmap fast path out of the way so the sweep
    measures the sort/search paths the partitioning targets.
    """
    import os as _os

    default_pool = min(4, _os.cpu_count() or 1)
    if num_threads is None:
        num_threads = default_pool
    if num_workers is None:
        num_workers = default_pool
    rng = np.random.default_rng(seed)
    probe_keys = rng.integers(0, key_domain, size=probe_rows, dtype=np.int64)
    measurements: List[PartitionJoinMeasurement] = []
    for build_rows in build_sizes:
        build_keys = rng.integers(0, key_domain, size=build_rows, dtype=np.int64)

        def mono_build():
            index = HashIndex(build_keys)
            index.prepare_match()
            return index

        mono_build_s = _best_time(mono_build, repeats)
        mono_index = mono_build()
        mono_probe_s = _best_time(lambda: mono_index.match(probe_keys), repeats)

        def part_build():
            index = PartitionedHashIndex(build_keys, bits=bits)
            index.build()
            return index

        part_build_s = _best_time(part_build, repeats)
        part_index = part_build()
        part_probe_s = _best_time(lambda: part_index.match(probe_keys), repeats)

        parallel_build_s = parallel_probe_s = None
        if num_threads:
            backend = ParallelBackend(num_threads=num_threads)
            try:
                def par_build():
                    index = PartitionedHashIndex(build_keys, bits=bits)
                    index.build(run_tasks=backend.map_tasks)
                    return index

                parallel_build_s = _best_time(par_build, repeats)
                par_index = par_build()
                parallel_probe_s = _best_time(
                    lambda: par_index.match(probe_keys, run_tasks=backend.map_tasks), repeats
                )
            finally:
                backend.close()

        process_probe_s = None
        if num_workers:
            from repro.exec.process import ProcessBackend

            proc_backend = ProcessBackend(num_workers=num_workers)
            mono_index.prepare_match()  # freeze before shipping so only probes are timed
            process_probe_s = _best_time(
                lambda: proc_backend.match(probe_keys, mono_index), repeats
            )

        measurements.append(
            PartitionJoinMeasurement(
                build_rows=build_rows,
                probe_rows=probe_rows,
                bits=bits,
                monolithic_build_seconds=mono_build_s,
                monolithic_probe_seconds=mono_probe_s,
                partitioned_build_seconds=part_build_s,
                partitioned_probe_seconds=part_probe_s,
                parallel_build_seconds=parallel_build_s,
                parallel_probe_seconds=parallel_probe_s,
                process_probe_seconds=process_probe_s,
            )
        )
    return measurements


def format_partition_microbench(measurements: Sequence[PartitionJoinMeasurement]) -> str:
    """Render the partition sweep as a table."""
    lines = [
        "Radix-partitioned vs monolithic hash join (probe side fixed, build side varies)",
        f"{'build rows':>12} {'bits':>5} {'mono bld (s)':>13} {'mono prb (s)':>13} "
        f"{'part bld (s)':>13} {'part prb (s)':>13} {'par prb (s)':>12} "
        f"{'proc prb (s)':>13} {'speedup':>9}",
    ]

    def _opt(seconds: Optional[float], width: int) -> str:
        return f"{seconds:>{width}.4f}" if seconds is not None else f"{'-':>{width}}"

    for m in measurements:
        lines.append(
            f"{m.build_rows:>12} {m.bits:>5} {m.monolithic_build_seconds:>13.4f} "
            f"{m.monolithic_probe_seconds:>13.4f} {m.partitioned_build_seconds:>13.4f} "
            f"{m.partitioned_probe_seconds:>13.4f} {_opt(m.parallel_probe_seconds, 12)} "
            f"{_opt(m.process_probe_seconds, 13)} {m.speedup:>8.2f}x"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class TransferMicrobenchMeasurement:
    """Transfer-phase timings of one star query under the caching configs.

    Four configurations run the *same* query over the same data and plan:

    * ``uncached`` — hash cache, selection vectors, and artifact cache off
      (the historical per-pass hash + materialize behavior);
    * ``hash_once`` — query-lifetime hash cache + selection vectors on,
      artifact cache off (the cold single-query regime);
    * ``cold_artifact`` — all three on, first execution (pays the artifact
      builds and freezes);
    * ``warm_artifact`` — all three on, repeated execution against the now
      warm artifact cache (the repeated-traffic regime).

    All four produce identical aggregates (asserted by the runner); only the
    transfer-phase seconds differ.
    """

    fact_rows: int
    dim_rows: int
    num_dims: int
    uncached_seconds: float
    hash_once_seconds: float
    cold_artifact_seconds: float
    warm_artifact_seconds: float
    warm_artifact_hits: int
    hash_reuse_hits: int
    selection_vector_rows: int

    @property
    def hash_once_speedup(self) -> float:
        """Single-query transfer speedup from hash reuse + selection vectors."""
        if self.hash_once_seconds <= 0:
            return float("inf")
        return self.uncached_seconds / self.hash_once_seconds

    @property
    def warm_speedup(self) -> float:
        """Repeated-query transfer speedup with a warm artifact cache."""
        if self.warm_artifact_seconds <= 0:
            return float("inf")
        return self.uncached_seconds / self.warm_artifact_seconds

    def as_dict(self) -> dict:
        """JSON-ready representation (the ``BENCH_transfer.json`` record)."""
        return {
            "fact_rows": self.fact_rows,
            "dim_rows": self.dim_rows,
            "num_dims": self.num_dims,
            "uncached_seconds": self.uncached_seconds,
            "hash_once_seconds": self.hash_once_seconds,
            "cold_artifact_seconds": self.cold_artifact_seconds,
            "warm_artifact_seconds": self.warm_artifact_seconds,
            "warm_artifact_hits": self.warm_artifact_hits,
            "hash_reuse_hits": self.hash_reuse_hits,
            "selection_vector_rows": self.selection_vector_rows,
            "hash_once_speedup": self.hash_once_speedup,
            "warm_speedup": self.warm_speedup,
        }


#: Fact-side sizes swept by the transfer microbenchmark (the acceptance
#: point is the 1M-row fact side).
DEFAULT_TRANSFER_FACT_SIZES = (1 << 18, 1 << 20)


def _transfer_database(fact_rows: int, dim_rows: int, num_dims: int, seed: int):
    """A star-schema database + query exercising a full RPT transfer phase.

    Dimension filters keep roughly half of each dimension, so every forward
    step genuinely reduces the fact side and the backward pass has work to
    do — the shape where per-pass hashing dominates the transfer phase.
    """
    from repro.engine.database import Database
    from repro.expr import lt
    from repro.query import JoinCondition, QuerySpec, RelationRef

    rng = np.random.default_rng(seed)
    db = Database()
    fact: dict = {"v": np.arange(fact_rows, dtype=np.int64)}
    relations = []
    joins = []
    for d in range(num_dims):
        name = f"dim{d}"
        db.register_dataframe(
            name,
            {
                "id": np.arange(dim_rows, dtype=np.int64),
                "attr": rng.integers(0, 100, size=dim_rows, dtype=np.int64),
            },
            primary_key=["id"],
        )
        fact[f"d{d}_id"] = rng.integers(0, dim_rows, size=fact_rows, dtype=np.int64)
        relations.append(RelationRef(f"d{d}", name, lt("attr", 50)))
        joins.append(JoinCondition("f", f"d{d}_id", f"d{d}", "id"))
    db.register_dataframe("fact", fact)
    query = QuerySpec(
        name="transfer_microbench",
        relations=tuple([RelationRef("f", "fact")] + relations),
        joins=tuple(joins),
    )
    return db, query


def run_transfer_microbench(
    fact_sizes: Sequence[int] = DEFAULT_TRANSFER_FACT_SIZES,
    dim_rows: Optional[int] = None,
    num_dims: int = 2,
    seed: int = 23,
    repeats: int = 3,
) -> List[TransferMicrobenchMeasurement]:
    """Measure the transfer phase under the hash/selection/artifact configs.

    For each fact size an RPT star query executes under the four caching
    configurations of :class:`TransferMicrobenchMeasurement` (same data,
    same plan; aggregates are asserted identical).  ``dim_rows`` defaults to
    ``fact_rows // 2`` so the dimension-side Bloom builds the artifact cache
    elides are a substantial share of the transfer work.  The reported
    seconds are the best transfer-phase wall time over ``repeats`` runs
    (warm-artifact runs all execute against the warmed cache).
    """
    from repro.engine.database import ExecutionOptions
    from repro.engine.modes import ExecutionConfig, ExecutionMode
    from repro.errors import BenchmarkError

    def options(hash_cache: bool, selection_vectors: bool, artifact_cache: bool):
        # Adaptive transfer is pinned off: this sweep isolates the caching
        # layers, and skipped or bitmap-downgraded passes would remove the
        # hashing work being measured (the adaptive microbenchmark measures
        # those features against their own static baseline).
        return ExecutionOptions(
            execution=ExecutionConfig(
                backend="serial",
                hash_cache=hash_cache,
                selection_vectors=selection_vectors,
                artifact_cache=artifact_cache,
                adaptive_transfer=False,
            )
        )

    measurements: List[TransferMicrobenchMeasurement] = []
    for fact_rows in fact_sizes:
        dims = dim_rows if dim_rows is not None else fact_rows // 2
        db, query = _transfer_database(fact_rows, dims, num_dims, seed)
        plan = db.optimizer_plan(query)

        def run(opts):
            return db.execute(query, mode=ExecutionMode.RPT, plan=plan, options=opts)

        def best_transfer(opts, runs):
            best = None
            seconds = float("inf")
            for _ in range(max(runs, 1)):
                result = run(opts)
                if result.stats.timings.transfer < seconds:
                    seconds = result.stats.timings.transfer
                    best = result
            return best, seconds

        uncached, uncached_s = best_transfer(options(False, False, False), repeats)
        hash_once, hash_once_s = best_transfer(options(True, True, False), repeats)
        # First artifact run builds + freezes the artifacts (cold)...
        cold = run(options(True, True, True))
        cold_s = cold.stats.timings.transfer
        # ...every later one replays them (warm).
        warm, warm_s = best_transfer(options(True, True, True), repeats)

        for result in (hash_once, cold, warm):
            if result.aggregates != uncached.aggregates:
                raise BenchmarkError(
                    "cached transfer run diverged from the uncached baseline: "
                    f"{result.aggregates} != {uncached.aggregates}"
                )

        measurements.append(
            TransferMicrobenchMeasurement(
                fact_rows=fact_rows,
                dim_rows=dims,
                num_dims=num_dims,
                uncached_seconds=uncached_s,
                hash_once_seconds=hash_once_s,
                cold_artifact_seconds=cold_s,
                warm_artifact_seconds=warm_s,
                warm_artifact_hits=warm.stats.artifact_cache_hits,
                hash_reuse_hits=warm.stats.hash_reuse_hits,
                selection_vector_rows=warm.stats.selection_vector_rows,
            )
        )
    return measurements


@dataclass(frozen=True)
class AdaptiveMicrobenchMeasurement:
    """Transfer-phase timings of one star query with adaptive execution on/off.

    Four configurations run the *same* query over the same data and plan:

    * ``static`` — adaptive transfer off (every compiled pass runs);
    * ``skip`` — yield-driven pass skipping only (``adaptive_transfer``,
      NDV sizing and the bitmap downgrade forced off);
    * ``ndv`` — NDV-right-sized Bloom filters only (skipping and the
      bitmap downgrade off), so the filter-byte comparison against
      ``static`` isolates what NDV sizing alone removed — every pass
      still runs and builds its filter;
    * ``full`` — all three adaptive features (skipping + NDV sizing +
      exact-bitmap downgrade), i.e. ``adaptive_transfer=True`` defaults.

    All four produce identical aggregates (asserted by the runner); only
    transfer-phase seconds, filter bytes, and the decision counters differ.
    The interesting contrast is per workload: on the ``low_yield`` workload
    (uncorrelated dimension filters that prune almost nothing) the
    controller cancels nearly the whole transfer phase, while on the
    ``high_yield`` workload (filters that genuinely reduce) it must stay
    out of the way.
    """

    workload: str
    fact_rows: int
    dim_rows: int
    num_dims: int
    keep_fraction: float
    static_seconds: float
    skip_seconds: float
    ndv_seconds: float
    full_seconds: float
    static_bloom_bytes: int
    ndv_bloom_bytes: int
    ndv_filter_bytes_saved: int
    steps_skipped: int
    exact_downgrades: int

    @property
    def skip_speedup(self) -> float:
        """Transfer speedup from yield-driven skipping alone."""
        if self.skip_seconds <= 0:
            return float("inf")
        return self.static_seconds / self.skip_seconds

    @property
    def full_speedup(self) -> float:
        """Transfer speedup with every adaptive feature on."""
        if self.full_seconds <= 0:
            return float("inf")
        return self.static_seconds / self.full_seconds

    @property
    def ndv_bytes_reduction(self) -> int:
        """Bloom filter bytes NDV sizing alone removed from the transfer phase.

        The ``ndv`` configuration runs every pass (no skipping, no
        downgrades), so this difference is attributable purely to sizing.
        """
        return max(self.static_bloom_bytes - self.ndv_bloom_bytes, 0)

    def as_dict(self) -> dict:
        """JSON-ready representation (the ``BENCH_adaptive.json`` record)."""
        return {
            "workload": self.workload,
            "fact_rows": self.fact_rows,
            "dim_rows": self.dim_rows,
            "num_dims": self.num_dims,
            "keep_fraction": self.keep_fraction,
            "static_seconds": self.static_seconds,
            "skip_seconds": self.skip_seconds,
            "ndv_seconds": self.ndv_seconds,
            "full_seconds": self.full_seconds,
            "static_bloom_bytes": self.static_bloom_bytes,
            "ndv_bloom_bytes": self.ndv_bloom_bytes,
            "ndv_filter_bytes_saved": self.ndv_filter_bytes_saved,
            "ndv_bytes_reduction": self.ndv_bytes_reduction,
            "steps_skipped": self.steps_skipped,
            "exact_downgrades": self.exact_downgrades,
            "skip_speedup": self.skip_speedup,
            "full_speedup": self.full_speedup,
        }


#: (workload label, fraction of each dimension its filter keeps).  Keeping
#: ~99.9% of a dimension leaves its transfer passes pruning ~0.1% of the
#: fact side — below the adaptive controller's default 1% yield floor — so
#: the low-yield workload is where skipping must pay off; the high-yield
#: workload (50% filters) is where adaptive execution must not regress.
DEFAULT_ADAPTIVE_WORKLOADS = (("low_yield", 0.999), ("high_yield", 0.5))


def _adaptive_database(
    fact_rows: int, dim_rows: int, num_dims: int, keep_fraction: float, seed: int
):
    """A star-schema database whose dimension filters keep ``keep_fraction``.

    Dimension attributes are uniform over [0, 1000) and *uncorrelated* with
    the join keys, so a filter keeping fraction ``f`` of a dimension leaves
    each forward transfer pass eliminating only ``1 - f`` of the fact side —
    the knob that moves a workload between the high- and low-yield regimes.
    """
    from repro.engine.database import Database
    from repro.expr import lt
    from repro.query import JoinCondition, QuerySpec, RelationRef

    rng = np.random.default_rng(seed)
    db = Database()
    fact: dict = {"v": np.arange(fact_rows, dtype=np.int64)}
    relations = []
    joins = []
    bound = max(int(round(1000 * keep_fraction)), 1)
    for d in range(num_dims):
        name = f"dim{d}"
        db.register_dataframe(
            name,
            {
                "id": np.arange(dim_rows, dtype=np.int64),
                "attr": rng.integers(0, 1000, size=dim_rows, dtype=np.int64),
            },
            primary_key=["id"],
        )
        fact[f"d{d}_id"] = rng.integers(0, dim_rows, size=fact_rows, dtype=np.int64)
        relations.append(RelationRef(f"d{d}", name, lt("attr", bound)))
        joins.append(JoinCondition("f", f"d{d}_id", f"d{d}", "id"))
    db.register_dataframe("fact", fact)
    query = QuerySpec(
        name=f"adaptive_microbench_{keep_fraction}",
        relations=tuple([RelationRef("f", "fact")] + relations),
        joins=tuple(joins),
    )
    return db, query


def run_adaptive_microbench(
    fact_rows: int = 1 << 20,
    dim_rows: Optional[int] = None,
    num_dims: int = 3,
    workloads: Sequence[Tuple[str, float]] = DEFAULT_ADAPTIVE_WORKLOADS,
    seed: int = 29,
    repeats: int = 3,
) -> List["AdaptiveMicrobenchMeasurement"]:
    """Measure the transfer phase with adaptive execution on vs off.

    For each ``(workload, keep_fraction)`` an RPT star query executes under
    the four configurations of :class:`AdaptiveMicrobenchMeasurement` (same
    data, same plan; aggregates asserted identical).  ``dim_rows`` defaults
    to ``fact_rows // 16`` — dimensions large enough that their passes cost
    real time, small enough that the (reduced) fact side still carries many
    duplicate keys per dimension id, which is exactly where NDV sizing
    shrinks the backward-pass filters.  Reported seconds are the best
    transfer-phase wall time over ``repeats`` runs.
    """
    from repro.engine.database import ExecutionOptions
    from repro.engine.modes import ExecutionConfig, ExecutionMode
    from repro.errors import BenchmarkError

    def options(adaptive: bool, ndv: bool, bitmap: bool):
        return ExecutionOptions(
            execution=ExecutionConfig(
                backend="serial",
                adaptive_transfer=adaptive,
                ndv_sizing=ndv,
                bitmap_downgrade=bitmap,
            )
        )

    measurements: List[AdaptiveMicrobenchMeasurement] = []
    dims = dim_rows if dim_rows is not None else fact_rows // 16
    for workload, keep_fraction in workloads:
        db, query = _adaptive_database(fact_rows, dims, num_dims, keep_fraction, seed)
        plan = db.optimizer_plan(query)

        def best_transfer(opts):
            best = None
            seconds = float("inf")
            for _ in range(max(repeats, 1)):
                result = db.execute(query, mode=ExecutionMode.RPT, plan=plan, options=opts)
                if result.stats.timings.transfer < seconds:
                    seconds = result.stats.timings.transfer
                    best = result
            return best, seconds

        static, static_s = best_transfer(options(False, False, False))
        skip, skip_s = best_transfer(options(True, False, False))
        ndv, ndv_s = best_transfer(options(False, True, False))
        full, full_s = best_transfer(options(True, True, True))

        for result in (skip, ndv, full):
            if result.aggregates != static.aggregates:
                raise BenchmarkError(
                    "adaptive transfer run diverged from the static baseline: "
                    f"{result.aggregates} != {static.aggregates}"
                )

        measurements.append(
            AdaptiveMicrobenchMeasurement(
                workload=workload,
                fact_rows=fact_rows,
                dim_rows=dims,
                num_dims=num_dims,
                keep_fraction=keep_fraction,
                static_seconds=static_s,
                skip_seconds=skip_s,
                ndv_seconds=ndv_s,
                full_seconds=full_s,
                static_bloom_bytes=static.stats.bloom_bytes,
                ndv_bloom_bytes=ndv.stats.bloom_bytes,
                ndv_filter_bytes_saved=ndv.stats.adaptive_filter_bytes_saved,
                steps_skipped=full.stats.adaptive_steps_skipped,
                exact_downgrades=full.stats.adaptive_exact_downgrades,
            )
        )
    return measurements


def format_adaptive_microbench(
    measurements: Sequence["AdaptiveMicrobenchMeasurement"],
) -> str:
    """Render the adaptive-transfer sweep as a table."""
    lines = [
        "Adaptive transfer: yield-driven skipping + NDV sizing + bitmap downgrade vs static",
        f"{'workload':<12} {'fact rows':>10} {'static (s)':>11} {'skip (s)':>9} "
        f"{'ndv (s)':>9} {'full (s)':>9} {'full spdup':>11} {'skipped':>8} {'ndv -B':>10}",
    ]
    for m in measurements:
        lines.append(
            f"{m.workload:<12} {m.fact_rows:>10} {m.static_seconds:>11.4f} "
            f"{m.skip_seconds:>9.4f} {m.ndv_seconds:>9.4f} {m.full_seconds:>9.4f} "
            f"{m.full_speedup:>10.2f}x {m.steps_skipped:>8} {m.ndv_bytes_reduction:>10}"
        )
    return "\n".join(lines)


def format_transfer_microbench(
    measurements: Sequence[TransferMicrobenchMeasurement],
) -> str:
    """Render the transfer-phase caching sweep as a table."""
    lines = [
        "Transfer phase: hash-once + selection vectors + artifact cache vs uncached",
        f"{'fact rows':>12} {'dim rows':>10} {'uncached (s)':>13} {'hash-once (s)':>14} "
        f"{'warm art. (s)':>14} {'1q spdup':>9} {'warm spdup':>11}",
    ]
    for m in measurements:
        lines.append(
            f"{m.fact_rows:>12} {m.dim_rows:>10} {m.uncached_seconds:>13.4f} "
            f"{m.hash_once_seconds:>14.4f} {m.warm_artifact_seconds:>14.4f} "
            f"{m.hash_once_speedup:>8.2f}x {m.warm_speedup:>10.2f}x"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class ScalingMeasurement:
    """Thread-vs-process scaling curves of one star-probe query.

    The same RPT star query runs end to end under the serial backend, the
    thread-parallel backend, and the process backend at each worker count in
    the sweep; ``thread_seconds`` / ``process_seconds`` are
    ``(workers, best wall seconds)`` curves over the same data and plan.
    All runs are asserted bit-identical to the serial baseline.
    """

    fact_rows: int
    dim_rows: int
    num_dims: int
    serial_seconds: float
    thread_seconds: Tuple[Tuple[int, float], ...]
    process_seconds: Tuple[Tuple[int, float], ...]
    shm_bytes_mapped: int

    @property
    def best_thread_seconds(self) -> float:
        """Fastest thread-backend run across the worker sweep."""
        return min(seconds for _, seconds in self.thread_seconds)

    @property
    def best_process_seconds(self) -> float:
        """Fastest process-backend run across the worker sweep."""
        return min(seconds for _, seconds in self.process_seconds)

    @property
    def process_over_thread_speedup(self) -> float:
        """Best process time vs best thread time (the GIL-escape factor)."""
        if self.best_process_seconds <= 0:
            return float("inf")
        return self.best_thread_seconds / self.best_process_seconds

    @property
    def process_over_serial_speedup(self) -> float:
        """Best process time vs the serial baseline."""
        if self.best_process_seconds <= 0:
            return float("inf")
        return self.serial_seconds / self.best_process_seconds

    def as_dict(self) -> dict:
        """JSON-ready representation (the ``BENCH_scaling.json`` record)."""
        return {
            "fact_rows": self.fact_rows,
            "dim_rows": self.dim_rows,
            "num_dims": self.num_dims,
            "serial_seconds": self.serial_seconds,
            "thread_seconds": [list(point) for point in self.thread_seconds],
            "process_seconds": [list(point) for point in self.process_seconds],
            "shm_bytes_mapped": self.shm_bytes_mapped,
            "best_thread_seconds": self.best_thread_seconds,
            "best_process_seconds": self.best_process_seconds,
            "process_over_thread_speedup": self.process_over_thread_speedup,
            "process_over_serial_speedup": self.process_over_serial_speedup,
        }


def _default_worker_counts() -> Tuple[int, ...]:
    """Powers of two up to the machine's core count (always includes 1)."""
    import os as _os

    cores = _os.cpu_count() or 1
    counts = [1]
    while counts[-1] * 2 <= cores:
        counts.append(counts[-1] * 2)
    return tuple(counts)


def run_scaling_microbench(
    fact_rows: int = 1 << 20,
    dim_rows: Optional[int] = None,
    num_dims: int = 2,
    worker_counts: Optional[Sequence[int]] = None,
    seed: int = 31,
    repeats: int = 2,
) -> ScalingMeasurement:
    """Measure thread-vs-process scaling on a 1M-row star-probe query.

    Reuses the transfer microbenchmark's star generator (half-selective
    dimension filters, so the probe passes do real pruning work) and runs
    the same query + plan under ``serial``, ``parallel`` (threads), and
    ``process`` at each worker count.  The hash cache is pinned off so the
    process backend's shared-memory gather path carries the probe columns
    (the regime the backend is built for) and threads/processes hash the
    same per-pass work.  Reported seconds are the best end-to-end wall time
    over ``repeats`` runs; aggregates are asserted identical to serial.
    """
    from repro.engine.database import ExecutionOptions
    from repro.engine.modes import ExecutionConfig, ExecutionMode
    from repro.errors import BenchmarkError
    from repro.exec.process import shutdown_workers

    counts = tuple(worker_counts) if worker_counts is not None else _default_worker_counts()
    dims = dim_rows if dim_rows is not None else fact_rows // 2
    db, query = _transfer_database(fact_rows, dims, num_dims, seed)
    plan = db.optimizer_plan(query)

    def options(backend: str, workers: int) -> ExecutionOptions:
        return ExecutionOptions(
            execution=ExecutionConfig(
                backend=backend,
                num_threads=workers,
                num_workers=workers,
                hash_cache=False,
                artifact_cache=False,
            )
        )

    def best_run(backend: str, workers: int):
        best = None
        seconds = float("inf")
        for _ in range(max(repeats, 1)):
            start = time.perf_counter()
            result = db.execute(query, mode=ExecutionMode.RPT, plan=plan, options=options(backend, workers))
            elapsed = time.perf_counter() - start
            if elapsed < seconds:
                seconds = elapsed
                best = result
        return best, seconds

    serial, serial_s = best_run("serial", 1)
    thread_curve = []
    process_curve = []
    shm_bytes = 0
    try:
        for workers in counts:
            thread_result, thread_s = best_run("parallel", workers)
            process_result, process_s = best_run("process", workers)
            for result in (thread_result, process_result):
                if result.aggregates != serial.aggregates:
                    raise BenchmarkError(
                        "parallel run diverged from the serial baseline: "
                        f"{result.aggregates} != {serial.aggregates}"
                    )
            thread_curve.append((workers, thread_s))
            process_curve.append((workers, process_s))
            shm_bytes = max(shm_bytes, process_result.stats.shm_bytes_mapped)
    finally:
        db.close()
        shutdown_workers()

    return ScalingMeasurement(
        fact_rows=fact_rows,
        dim_rows=dims,
        num_dims=num_dims,
        serial_seconds=serial_s,
        thread_seconds=tuple(thread_curve),
        process_seconds=tuple(process_curve),
        shm_bytes_mapped=shm_bytes,
    )


def format_scaling_microbench(measurement: ScalingMeasurement) -> str:
    """Render the thread-vs-process scaling curves as a table."""
    lines = [
        "Backend scaling on a star-probe query (serial vs threads vs processes)",
        f"fact rows {measurement.fact_rows}, dims {measurement.num_dims} x "
        f"{measurement.dim_rows}, serial {measurement.serial_seconds:.4f}s, "
        f"shm mapped {measurement.shm_bytes_mapped}B",
        f"{'workers':>8} {'threads (s)':>12} {'process (s)':>12} {'proc vs thread':>15}",
    ]
    process_by_workers = dict(measurement.process_seconds)
    for workers, thread_s in measurement.thread_seconds:
        process_s = process_by_workers.get(workers)
        ratio = f"{thread_s / process_s:>14.2f}x" if process_s else f"{'-':>15}"
        process_text = f"{process_s:>12.4f}" if process_s is not None else f"{'-':>12}"
        lines.append(f"{workers:>8} {thread_s:>12.4f} {process_text} {ratio}")
    return "\n".join(lines)


@dataclass(frozen=True)
class DeadlineOverheadMeasurement:
    """Cost of deadline/cancellation checks on the 1M-row star probe.

    The same RPT star query runs on the serial backend twice: once with no
    deadline (kernels run whole-column, the zero-overhead configuration)
    and once with a :class:`~repro.exec.faults.CancelToken` installed via a
    generous ``timeout_seconds`` — which switches every long kernel to
    chunked execution with a cancellation check per chunk.  The gap between
    the two best-of-``repeats`` times is the full price of cancellability;
    the CI gate asserts it stays under 2% (with a small absolute slack so
    timer noise on sub-second runs cannot flake the gate).
    """

    fact_rows: int
    dim_rows: int
    num_dims: int
    baseline_seconds: float
    deadline_seconds: float

    @property
    def overhead_seconds(self) -> float:
        """Absolute extra wall time with the cancel token installed."""
        return self.deadline_seconds - self.baseline_seconds

    @property
    def overhead_fraction(self) -> float:
        """Relative overhead of deadline checks (negative means in-noise)."""
        if self.baseline_seconds <= 0:
            return 0.0
        return self.overhead_seconds / self.baseline_seconds

    def as_dict(self) -> dict:
        """JSON-ready representation (merged into ``BENCH_scaling.json``)."""
        return {
            "kind": "deadline_overhead",
            "fact_rows": self.fact_rows,
            "dim_rows": self.dim_rows,
            "num_dims": self.num_dims,
            "baseline_seconds": self.baseline_seconds,
            "deadline_seconds": self.deadline_seconds,
            "overhead_seconds": self.overhead_seconds,
            "overhead_fraction": self.overhead_fraction,
        }


def run_deadline_overhead_microbench(
    fact_rows: int = 1 << 20,
    dim_rows: Optional[int] = None,
    num_dims: int = 2,
    seed: int = 31,
    repeats: int = 3,
    timeout_seconds: float = 3600.0,
) -> DeadlineOverheadMeasurement:
    """Measure what deadline/cancellation checks cost on the star probe.

    Reuses the scaling microbenchmark's 1M-row star query on the serial
    backend.  The deadline run sets ``timeout_seconds`` far in the future,
    so the query never times out but pays the full cancellable-execution
    machinery: chunked kernels plus a monotonic-clock check per chunk and
    per morsel barrier.  Both configurations are asserted bit-identical.
    """
    from repro.engine.database import ExecutionOptions
    from repro.engine.modes import ExecutionConfig, ExecutionMode
    from repro.errors import BenchmarkError

    dims = dim_rows if dim_rows is not None else fact_rows // 2
    db, query = _transfer_database(fact_rows, dims, num_dims, seed)
    plan = db.optimizer_plan(query)

    def options(timeout: Optional[float]) -> ExecutionOptions:
        return ExecutionOptions(
            execution=ExecutionConfig(
                backend="serial",
                timeout_seconds=timeout,
                hash_cache=False,
                artifact_cache=False,
            )
        )

    def best_run(timeout: Optional[float]):
        best = None
        seconds = float("inf")
        for _ in range(max(repeats, 1)):
            start = time.perf_counter()
            result = db.execute(
                query, mode=ExecutionMode.RPT, plan=plan, options=options(timeout)
            )
            elapsed = time.perf_counter() - start
            if elapsed < seconds:
                seconds = elapsed
                best = result
        return best, seconds

    try:
        baseline, baseline_s = best_run(None)
        deadline, deadline_s = best_run(timeout_seconds)
        if deadline.aggregates != baseline.aggregates:
            raise BenchmarkError(
                "deadline run diverged from the no-deadline baseline: "
                f"{deadline.aggregates} != {baseline.aggregates}"
            )
    finally:
        db.close()

    return DeadlineOverheadMeasurement(
        fact_rows=fact_rows,
        dim_rows=dims,
        num_dims=num_dims,
        baseline_seconds=baseline_s,
        deadline_seconds=deadline_s,
    )


def format_deadline_overhead_microbench(measurement: DeadlineOverheadMeasurement) -> str:
    """Render the deadline-check overhead measurement."""
    return "\n".join(
        [
            "Deadline/cancellation check overhead on the star-probe query (serial)",
            f"fact rows {measurement.fact_rows}, dims {measurement.num_dims} x "
            f"{measurement.dim_rows}",
            f"{'no deadline':>16} {measurement.baseline_seconds:.4f}s",
            f"{'with deadline':>16} {measurement.deadline_seconds:.4f}s",
            f"{'overhead':>16} {measurement.overhead_seconds * 1e3:+.2f}ms "
            f"({measurement.overhead_fraction * 100:+.2f}%)",
        ]
    )


@dataclass(frozen=True)
class ObservabilityMeasurement:
    """Cost of span tracing on the 1M-row star probe.

    The same RPT star query runs on the serial backend twice: untraced
    (``tracing=False``, the zero-overhead configuration — the run loop
    never touches the tracer) and traced (``tracing=True``: one ``op``
    span per dispatched op under ``phase`` spans, plus decision events).
    The gap between the two best-of-``repeats`` times is the full price of
    observability; the CI gate asserts it stays under 2% (with a small
    absolute slack so timer noise on sub-second runs cannot flake the
    gate).  Aggregates are asserted bit-identical, and the traced run must
    actually produce a span tree.
    """

    fact_rows: int
    dim_rows: int
    num_dims: int
    baseline_seconds: float
    traced_seconds: float
    span_count: int

    @property
    def overhead_seconds(self) -> float:
        """Absolute extra wall time with tracing enabled."""
        return self.traced_seconds - self.baseline_seconds

    @property
    def overhead_fraction(self) -> float:
        """Relative overhead of tracing (negative means in-noise)."""
        if self.baseline_seconds <= 0:
            return 0.0
        return self.overhead_seconds / self.baseline_seconds

    def as_dict(self) -> dict:
        """JSON-ready representation (written to ``BENCH_observability.json``)."""
        return {
            "kind": "observability_overhead",
            "fact_rows": self.fact_rows,
            "dim_rows": self.dim_rows,
            "num_dims": self.num_dims,
            "baseline_seconds": self.baseline_seconds,
            "traced_seconds": self.traced_seconds,
            "overhead_seconds": self.overhead_seconds,
            "overhead_fraction": self.overhead_fraction,
            "span_count": self.span_count,
        }


def run_observability_microbench(
    fact_rows: int = 1 << 20,
    dim_rows: Optional[int] = None,
    num_dims: int = 2,
    seed: int = 31,
    repeats: int = 3,
) -> ObservabilityMeasurement:
    """Measure what span tracing costs on the star probe.

    Reuses the scaling microbenchmark's 1M-row star query on the serial
    backend with caches pinned off, untraced vs traced.  Both
    configurations are asserted bit-identical, and the traced best run
    must carry a non-trivial span tree (query -> phase -> op).
    """
    from repro.engine.database import ExecutionOptions
    from repro.engine.modes import ExecutionConfig, ExecutionMode
    from repro.errors import BenchmarkError

    dims = dim_rows if dim_rows is not None else fact_rows // 2
    db, query = _transfer_database(fact_rows, dims, num_dims, seed)
    plan = db.optimizer_plan(query)

    def options(tracing: bool) -> ExecutionOptions:
        return ExecutionOptions(
            execution=ExecutionConfig(
                backend="serial",
                tracing=tracing,
                hash_cache=False,
                artifact_cache=False,
            )
        )

    def best_run(tracing: bool):
        best = None
        seconds = float("inf")
        for _ in range(max(repeats, 1)):
            start = time.perf_counter()
            result = db.execute(
                query, mode=ExecutionMode.RPT, plan=plan, options=options(tracing)
            )
            elapsed = time.perf_counter() - start
            if elapsed < seconds:
                seconds = elapsed
                best = result
        return best, seconds

    try:
        baseline, baseline_s = best_run(False)
        traced, traced_s = best_run(True)
        if traced.aggregates != baseline.aggregates:
            raise BenchmarkError(
                "traced run diverged from the untraced baseline: "
                f"{traced.aggregates} != {baseline.aggregates}"
            )
        if baseline.trace is not None:
            raise BenchmarkError("untraced run unexpectedly produced a span tree")
        if traced.trace is None:
            raise BenchmarkError("traced run produced no span tree")
        span_count = sum(1 for _ in traced.trace.walk())
        if not traced.trace.find("op"):
            raise BenchmarkError("traced run recorded no op spans")
    finally:
        db.close()

    return ObservabilityMeasurement(
        fact_rows=fact_rows,
        dim_rows=dims,
        num_dims=num_dims,
        baseline_seconds=baseline_s,
        traced_seconds=traced_s,
        span_count=span_count,
    )


def format_observability_microbench(measurement: ObservabilityMeasurement) -> str:
    """Render the tracing-overhead measurement."""
    return "\n".join(
        [
            "Span-tracing overhead on the star-probe query (serial)",
            f"fact rows {measurement.fact_rows}, dims {measurement.num_dims} x "
            f"{measurement.dim_rows}",
            f"{'untraced':>16} {measurement.baseline_seconds:.4f}s",
            f"{'traced':>16} {measurement.traced_seconds:.4f}s "
            f"({measurement.span_count} spans)",
            f"{'overhead':>16} {measurement.overhead_seconds * 1e3:+.2f}ms "
            f"({measurement.overhead_fraction * 100:+.2f}%)",
        ]
    )


def _best_time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@dataclass(frozen=True)
class EncodingMeasurement:
    """Raw-vs-encoded scan times and shared-memory footprint of one sweep.

    The scan half measures the same selective filter twice over identical
    data: once through ``Expression.evaluate`` (the raw path — ordered
    string comparisons materialize every string) and once through the
    code-space kernel with zone-map block skipping
    (:func:`repro.expr.codespace.evaluate`).  Masks are asserted
    bit-identical before timing.  The shm half runs the scaling
    benchmark's star-probe query on the process backend with the hash
    cache pinned off (the shared-memory gather regime) with encodings off
    and on, and records both mapped footprints; aggregates are asserted
    identical.
    """

    rows: int
    string_raw_seconds: float
    string_encoded_seconds: float
    range_raw_seconds: float
    range_encoded_seconds: float
    range_blocks_skipped: int
    range_blocks_total: int
    filter_raw_bytes: int
    filter_encoded_bytes: int
    raw_shm_bytes_mapped: int
    encoded_shm_bytes_mapped: int

    @property
    def string_scan_speedup(self) -> float:
        """Raw over encoded wall time of the selective string scan."""
        if self.string_encoded_seconds <= 0:
            return float("inf")
        return self.string_raw_seconds / self.string_encoded_seconds

    @property
    def range_scan_speedup(self) -> float:
        """Raw over encoded wall time of the selective range scan."""
        if self.range_encoded_seconds <= 0:
            return float("inf")
        return self.range_raw_seconds / self.range_encoded_seconds

    @property
    def filter_compression_ratio(self) -> float:
        """Raw over encoded bytes of the two filtered columns."""
        if self.filter_encoded_bytes <= 0:
            return float("inf")
        return self.filter_raw_bytes / self.filter_encoded_bytes

    @property
    def shm_reduction(self) -> float:
        """Fractional drop in mapped shared-memory bytes (0.5 = halved)."""
        if self.raw_shm_bytes_mapped <= 0:
            return 0.0
        return 1.0 - self.encoded_shm_bytes_mapped / self.raw_shm_bytes_mapped

    def as_dict(self) -> dict:
        """JSON-ready representation (the ``BENCH_encoding.json`` record)."""
        return {
            "rows": self.rows,
            "string_raw_seconds": self.string_raw_seconds,
            "string_encoded_seconds": self.string_encoded_seconds,
            "range_raw_seconds": self.range_raw_seconds,
            "range_encoded_seconds": self.range_encoded_seconds,
            "range_blocks_skipped": self.range_blocks_skipped,
            "range_blocks_total": self.range_blocks_total,
            "filter_raw_bytes": self.filter_raw_bytes,
            "filter_encoded_bytes": self.filter_encoded_bytes,
            "raw_shm_bytes_mapped": self.raw_shm_bytes_mapped,
            "encoded_shm_bytes_mapped": self.encoded_shm_bytes_mapped,
            "string_scan_speedup": self.string_scan_speedup,
            "range_scan_speedup": self.range_scan_speedup,
            "filter_compression_ratio": self.filter_compression_ratio,
            "shm_reduction": self.shm_reduction,
        }


#: Distinct status strings in the encoding microbenchmark's scan table
#: (64 values keep dictionary codes one byte wide).
_ENCODING_BENCH_NDV = 64


def run_encoding_microbench(
    rows: int = 1 << 20,
    dim_rows: Optional[int] = None,
    num_dims: int = 2,
    num_workers: int = 2,
    seed: int = 37,
    repeats: int = 3,
) -> EncodingMeasurement:
    """Measure block-encoded execution against the raw paths it replaces.

    Scan half: a ``rows``-row table with a low-NDV string column (random,
    so no block skips — the win is staying in dictionary code space) and a
    sorted ``int64`` timestamp column (the win is zone maps skipping ~99%
    of blocks for a 1% range).  Both filters run raw and encoded; masks
    are asserted bit-identical and the best of ``repeats`` wall times is
    kept per path.

    Shm half: the transfer star-probe query (1M-row fact side by default)
    on the process backend with ``hash_cache=False`` — the configuration
    under which probe columns travel through the shared-memory arena —
    once with encodings off and once on.  Join-key columns bit-pack to
    32-bit codes, so the encoded run maps about half the bytes; aggregates
    are asserted identical to the raw run.
    """
    from repro.engine.database import Database, ExecutionOptions
    from repro.engine.modes import ExecutionConfig, ExecutionMode
    from repro.errors import BenchmarkError
    from repro.exec.process import shutdown_workers
    from repro.expr import between, codespace, lt

    rng = np.random.default_rng(seed)
    statuses = [f"status_{i:03d}" for i in range(_ENCODING_BENCH_NDV)]
    codes = rng.integers(0, _ENCODING_BENCH_NDV, size=rows)
    db = Database()
    db.register_dataframe(
        "events",
        {
            "ts": np.arange(rows, dtype=np.int64),
            "status": [statuses[i] for i in codes],
        },
    )
    table = db.catalog.table("events")
    store = db.catalog.encodings

    # ~6% selective ordered string comparison; raw evaluation decodes all
    # `rows` strings, the code-space kernel is one integer threshold test.
    string_expr = lt("status", statuses[4])
    # ~1% selective range over the sorted timestamps; zone maps skip every
    # block outside the range.
    lo = rows // 2
    range_expr = between("ts", lo, lo + rows // 100 - 1)

    range_result = None
    try:
        for expr in (string_expr, range_expr):
            raw_mask = np.asarray(expr.evaluate(table), dtype=bool)
            encoded = codespace.evaluate(expr, table, store)
            if encoded is None or not np.array_equal(raw_mask, encoded.mask):
                raise BenchmarkError(f"encoded scan diverged from raw evaluation for {expr!r}")
            if expr is range_expr:
                range_result = encoded
        string_raw_s = _best_time(lambda: string_expr.evaluate(table), repeats)
        string_encoded_s = _best_time(lambda: codespace.evaluate(string_expr, table, store), repeats)
        range_raw_s = _best_time(lambda: range_expr.evaluate(table), repeats)
        range_encoded_s = _best_time(lambda: codespace.evaluate(range_expr, table, store), repeats)
        filter_raw_bytes = sum(int(table.column(c).data.nbytes) for c in ("ts", "status"))
        filter_encoded_bytes = sum(store.encoded_bytes(table, c) for c in ("ts", "status"))
    finally:
        db.close()

    dims = dim_rows if dim_rows is not None else rows // 2
    star_db, star_query = _transfer_database(rows, dims, num_dims, seed)
    plan = star_db.optimizer_plan(star_query)

    def star_options(encodings: bool) -> ExecutionOptions:
        # hash_cache off puts the probe passes on the shared-memory gather
        # path (with it on, hash passes are served from the parent's cache
        # and no columns are shipped), matching run_scaling_microbench.
        return ExecutionOptions(
            execution=ExecutionConfig(
                backend="process",
                num_workers=num_workers,
                hash_cache=False,
                artifact_cache=False,
                encodings=encodings,
            )
        )

    try:
        raw_star = star_db.execute(
            star_query, mode=ExecutionMode.RPT, plan=plan, options=star_options(False)
        )
        encoded_star = star_db.execute(
            star_query, mode=ExecutionMode.RPT, plan=plan, options=star_options(True)
        )
        if encoded_star.aggregates != raw_star.aggregates:
            raise BenchmarkError(
                "encoded star probe diverged from the raw baseline: "
                f"{encoded_star.aggregates} != {raw_star.aggregates}"
            )
    finally:
        star_db.close()
        shutdown_workers()

    return EncodingMeasurement(
        rows=rows,
        string_raw_seconds=string_raw_s,
        string_encoded_seconds=string_encoded_s,
        range_raw_seconds=range_raw_s,
        range_encoded_seconds=range_encoded_s,
        range_blocks_skipped=int(range_result.blocks_skipped),
        range_blocks_total=int(range_result.blocks_total),
        filter_raw_bytes=filter_raw_bytes,
        filter_encoded_bytes=filter_encoded_bytes,
        raw_shm_bytes_mapped=int(raw_star.stats.shm_bytes_mapped),
        encoded_shm_bytes_mapped=int(encoded_star.stats.shm_bytes_mapped),
    )


def format_encoding_microbench(measurement: EncodingMeasurement) -> str:
    """Render the raw-vs-encoded scan and shm comparison as a table."""
    m = measurement
    return "\n".join(
        [
            "Block-encoded scans vs raw evaluation (selective filters, sorted + random data)",
            f"rows {m.rows}, filter columns {m.filter_raw_bytes}B raw -> "
            f"{m.filter_encoded_bytes}B encoded ({m.filter_compression_ratio:.1f}x)",
            f"{'scan':>8} {'raw (s)':>10} {'encoded (s)':>12} {'speedup':>8} {'blocks skipped':>15}",
            f"{'string':>8} {m.string_raw_seconds:>10.4f} {m.string_encoded_seconds:>12.4f} "
            f"{m.string_scan_speedup:>7.1f}x {'-':>15}",
            f"{'range':>8} {m.range_raw_seconds:>10.4f} {m.range_encoded_seconds:>12.4f} "
            f"{m.range_scan_speedup:>7.1f}x "
            f"{f'{m.range_blocks_skipped}/{m.range_blocks_total}':>15}",
            f"process-backend star probe: shm mapped {m.raw_shm_bytes_mapped}B raw -> "
            f"{m.encoded_shm_bytes_mapped}B encoded ({m.shm_reduction:.0%} reduction)",
        ]
    )
