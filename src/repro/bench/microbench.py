"""Microbenchmarks: Bloom probe vs hash probe (Figure 16).

The paper's Figure 16 fixes the probe side at 10⁹ rows and varies the build
side from 128 to 10⁹ rows, comparing DuckDB's vectorized hash probe against
Arrow's (SIMD) blocked Bloom filter probe.  The reproduction runs the same
sweep (with smaller sizes appropriate for pure Python) over this engine's
actual probe paths:

* hash probe  — :func:`repro.exec.kernels.match_keys` (sort + binary search,
  the engine's hash-join matching kernel);
* Bloom probe — :meth:`repro.bloom.BloomFilter.probe`.

The reported quantity is seconds per probe for each build-side size, from
which the Bloom:hash advantage factor can be computed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.bloom.bloom_filter import BloomFilter
from repro.exec.kernels import match_keys, semi_join_mask

#: Build-side sizes swept by default (the paper goes from 128 to 1G).
DEFAULT_BUILD_SIZES = (128, 512, 2_048, 8_192, 32_768, 131_072, 524_288)

#: Default probe-side size (the paper uses 1 billion; scaled down here).
DEFAULT_PROBE_ROWS = 1_000_000


@dataclass(frozen=True)
class ProbeMeasurement:
    """Timing of one probe strategy at one build-side size."""

    build_rows: int
    probe_rows: int
    hash_probe_seconds: float
    bloom_probe_seconds: float
    exact_semijoin_seconds: float
    bloom_filter_bytes: int

    @property
    def bloom_advantage(self) -> float:
        """How many times faster the Bloom probe is than the hash probe."""
        if self.bloom_probe_seconds <= 0:
            return float("inf")
        return self.hash_probe_seconds / self.bloom_probe_seconds


def run_probe_microbenchmark(
    build_sizes: Sequence[int] = DEFAULT_BUILD_SIZES,
    probe_rows: int = DEFAULT_PROBE_ROWS,
    key_domain: int = 2**30,
    seed: int = 5,
    repeats: int = 1,
) -> List[ProbeMeasurement]:
    """Run the Figure 16 sweep and return one measurement per build size."""
    rng = np.random.default_rng(seed)
    probe_keys = rng.integers(0, key_domain, size=probe_rows, dtype=np.int64)
    measurements: List[ProbeMeasurement] = []
    for build_rows in build_sizes:
        build_keys = rng.integers(0, key_domain, size=build_rows, dtype=np.int64)

        hash_seconds = _best_time(lambda: match_keys(probe_keys, build_keys), repeats)

        bloom = BloomFilter(expected_keys=build_rows)
        bloom.insert(build_keys)
        bloom_seconds = _best_time(lambda: bloom.probe(probe_keys), repeats)

        exact_seconds = _best_time(lambda: semi_join_mask(probe_keys, build_keys), repeats)

        measurements.append(
            ProbeMeasurement(
                build_rows=build_rows,
                probe_rows=probe_rows,
                hash_probe_seconds=hash_seconds,
                bloom_probe_seconds=bloom_seconds,
                exact_semijoin_seconds=exact_seconds,
                bloom_filter_bytes=bloom.size_bytes,
            )
        )
    return measurements


def format_probe_microbenchmark(measurements: Sequence[ProbeMeasurement]) -> str:
    """Render the Figure 16 series as a table."""
    lines = [
        "Figure 16: Bloom probe vs hash probe (probe side fixed, build side varies)",
        f"{'build rows':>12} {'hash (s)':>12} {'bloom (s)':>12} {'exact SJ (s)':>14} {'bloom speedup':>14}",
    ]
    for m in measurements:
        lines.append(
            f"{m.build_rows:>12} {m.hash_probe_seconds:>12.4f} {m.bloom_probe_seconds:>12.4f} "
            f"{m.exact_semijoin_seconds:>14.4f} {m.bloom_advantage:>13.1f}x"
        )
    return "\n".join(lines)


def _best_time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best
