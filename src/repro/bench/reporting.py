"""Report printers: render experiment results in the shape of the paper's tables.

Every printer returns a plain string (and optionally prints it), so the
benchmark files can ``print`` the same rows the paper reports and the tests
can assert on their structure.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence

from repro.core.robustness import BenchmarkRobustnessSummary, RobustnessFactor
from repro.engine.modes import ExecutionMode


def format_robustness_table(
    title: str,
    rows: Mapping[str, Mapping[ExecutionMode, BenchmarkRobustnessSummary]],
    modes: Sequence[ExecutionMode],
) -> str:
    """Render a Table 1 / Table 2 style robustness-factor table.

    ``rows`` maps benchmark name -> (mode -> summary).
    """
    header_cells = ["RF".ljust(12)]
    for benchmark in rows:
        header_cells.append(f"{benchmark:^24}")
    sub_cells = ["".ljust(12)]
    for _ in rows:
        sub_cells.append(f"{'Avg':>7} {'Min':>7} {'Max':>8}")
    lines = [title, " ".join(header_cells), " ".join(sub_cells)]
    for mode in modes:
        cells = [mode.label.ljust(12)]
        for benchmark, summaries in rows.items():
            summary = summaries[mode]
            cells.append(f"{summary.avg_rf:>7.1f} {summary.min_rf:>7.1f} {summary.max_rf:>8.1f}")
        lines.append(" ".join(cells))
    return "\n".join(lines)


def format_speedup_table(
    title: str,
    rows: Mapping[str, Mapping[ExecutionMode, float]],
    modes: Sequence[ExecutionMode],
    baseline: ExecutionMode = ExecutionMode.BASELINE,
) -> str:
    """Render a Table 3 style speedup table (benchmark columns, mode rows)."""
    benchmarks = list(rows)
    lines = [title, "Speedup".ljust(12) + " ".join(f"{b:>10}" for b in benchmarks)]
    for mode in modes:
        if mode is baseline:
            continue
        cells = [mode.label.ljust(12)]
        for benchmark in benchmarks:
            cells.append(f"{rows[benchmark].get(mode, float('nan')):>9.2f}x")
        lines.append(" ".join(cells))
    return "\n".join(lines)


def format_distribution_series(
    title: str,
    per_query: Mapping[str, Mapping[str, Sequence[float]]],
) -> str:
    """Render Figure 6/7 style per-query distributions of normalized costs.

    ``per_query`` maps query name -> (mode label -> normalized costs).  For
    each series the min / median / max are printed, which is the information
    the paper's box plots convey.
    """
    lines = [title, f"{'query':<14} {'mode':<12} {'min':>9} {'median':>9} {'max':>9} {'n':>5}"]
    for query_name, series in per_query.items():
        for mode_label, values in series.items():
            ordered = sorted(values)
            if not ordered:
                continue
            n = len(ordered)
            median = ordered[n // 2] if n % 2 == 1 else 0.5 * (ordered[n // 2 - 1] + ordered[n // 2])
            lines.append(
                f"{query_name:<14} {mode_label:<12} {ordered[0]:>9.3f} {median:>9.3f} {ordered[-1]:>9.3f} {n:>5}"
            )
    return "\n".join(lines)


def format_robustness_factors(title: str, factors: Iterable[RobustnessFactor]) -> str:
    """Render a list of per-query robustness factors."""
    lines = [title, f"{'query':<18} {'mode':<12} {'RF':>8} {'min':>12} {'max':>12}"]
    for factor in factors:
        lines.append(
            f"{factor.query_name:<18} {factor.mode:<12} {factor.factor:>8.2f} "
            f"{factor.min_cost:>12.3g} {factor.max_cost:>12.3g}"
        )
    return "\n".join(lines)


def format_case_study(
    title: str,
    rows: Mapping[str, Mapping[str, float]],
) -> str:
    """Render the Figure 11 case-study table (plan -> {metric -> value})."""
    metrics: list[str] = []
    for values in rows.values():
        for metric in values:
            if metric not in metrics:
                metrics.append(metric)
    lines = [title, f"{'plan':<28} " + " ".join(f"{m:>20}" for m in metrics)]
    for plan_name, values in rows.items():
        lines.append(
            f"{plan_name:<28} " + " ".join(f"{values.get(m, float('nan')):>20.1f}" for m in metrics)
        )
    return "\n".join(lines)


def format_op_traces(results: Mapping[ExecutionMode, "object"]) -> str:
    """Render the uniform per-op traces of one query executed under many modes.

    ``results`` maps each mode to its :class:`~repro.engine.database.QueryResult`
    (as produced by :func:`repro.bench.harness.run_uniform_trace`).  All
    modes share the same op vocabulary, so the traces line up row for row.
    """
    lines = []
    for mode, result in results.items():
        lines.append(f"== {mode.label} ==")
        lines.append(result.stats.op_trace())
        summary_line = result.stats.execution_summary()
        if summary_line:
            lines.append(summary_line)
        lines.append("")
    return "\n".join(lines).rstrip()


def print_report(report: str) -> str:
    """Print a report and return it (convenience for benchmark files)."""
    print()
    print(report)
    return report
