"""Closed-loop concurrent serving benchmark over the checked-in SQL files.

The driver stands up one :class:`~repro.engine.server.Server` per workload
database (the three synthetic instances, TPC-H, and JOB — the same
databases :func:`repro.workloads.sqlfiles.run_all` binds against), routes
each of the 56 checked-in ``.sql`` files to its server, and runs ``N``
closed-loop client threads: every client holds one session per server,
pulls the next statement from a shared work queue, and issues the next
query only after the previous one finishes — the classic closed-loop
offered-load model (mirroring the multi-replica runner shape this repo's
references use).

Three things are measured and enforced:

* **latency/throughput** — per-query wall latencies aggregated to
  p50/p95/p99 plus overall QPS, recorded into ``BENCH_serving.json`` by
  the microbench suite;
* **bit-identity under concurrency** — every completed query's aggregates
  must equal a single-threaded serial baseline computed before serving
  started (any divergence raises :class:`~repro.errors.WorkloadError`);
* **typed overload/chaos behaviour** — with a fault plan configured
  (chaos mode) or with admission capacity below the offered load
  (overload mode), every query must either complete bit-identically or
  raise a typed :class:`~repro.errors.ReproError`
  (:class:`~repro.errors.AdmissionRejected` rejections are counted and,
  optionally, retried after their hint), and the run must end with zero
  leaked shared-memory segments and zero outstanding governor
  reservations.
"""

from __future__ import annotations

import gc
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.engine.database import Database, ExecutionOptions
from repro.engine.modes import ExecutionConfig, ExecutionMode
from repro.engine.server import Server, ServerConfig
from repro.errors import AdmissionRejected, ReproError, WorkloadError
from repro.workloads import sqlfiles


@dataclass
class ServingFleet:
    """The serving side of one benchmark run: databases, servers, routing."""

    servers: Dict[str, Server]
    databases: Dict[str, Database]
    #: SQL file stem -> the ``servers``/``databases`` key that owns it.
    routes: Dict[str, str]
    texts: Dict[str, str]
    #: Stem -> fault-free single-threaded serial aggregates (the
    #: bit-identity reference every concurrent completion is checked against).
    baselines: Dict[str, Dict[str, float]]
    mode: ExecutionMode
    scale: float = 0.0

    def server_for(self, stem: str) -> Server:
        return self.servers[self.routes[stem]]

    def close(self) -> None:
        """Close every server, then every database; idempotent."""
        for server in self.servers.values():
            server.close()
        for database in self.databases.values():
            database.close()


def build_serving_fleet(
    scale: float = 0.05,
    seed: int = 1,
    stems: Optional[List[str]] = None,
    server_config: Optional[ServerConfig] = None,
    mode: ExecutionMode = ExecutionMode.RPT,
    options: Optional[ExecutionOptions] = None,
    compute_baselines: bool = True,
) -> ServingFleet:
    """Build the workload databases, a server per database, and baselines.

    Baselines are computed *before* any concurrency, single-threaded on
    the serial backend with fault injection cleared — the reference the
    acceptance contract compares every concurrent completion against.
    ``stems`` restricts the fleet to a subset of the checked-in files.
    """
    from repro.exec import faults

    selected = {
        stem: path
        for stem, path in sqlfiles.available().items()
        if stems is None or stem in stems
    }
    if not selected:
        raise WorkloadError("no SQL files selected for the serving fleet")

    databases: Dict[str, Database] = {}
    routes: Dict[str, str] = {}
    texts: Dict[str, str] = {}
    for stem, path in selected.items():
        workload = sqlfiles.workload_of(stem)
        if workload == "synthetic":
            key = f"synthetic:{stem[len('synthetic_'):]}"
            if key not in databases:
                databases[key] = sqlfiles.database_for(
                    "synthetic", synthetic_query=key.split(":", 1)[1]
                )
        else:
            key = workload
            if key not in databases:
                databases[key] = sqlfiles.database_for(key, scale=scale, seed=seed)
        routes[stem] = key
        texts[stem] = path.read_text()

    baselines: Dict[str, Dict[str, float]] = {}
    if compute_baselines:
        faults.clear()
        serial = ExecutionOptions(execution=ExecutionConfig(backend="serial"))
        for stem in selected:
            db = databases[routes[stem]]
            baselines[stem] = dict(
                db.sql(texts[stem], mode=mode, options=serial).aggregates
            )

    config = server_config or ServerConfig()
    servers = {
        key: Server(database, config, mode=mode, options=options)
        for key, database in databases.items()
    }
    return ServingFleet(
        servers=servers,
        databases=databases,
        routes=routes,
        texts=texts,
        baselines=baselines,
        mode=mode,
        scale=scale,
    )


@dataclass
class ServingReport:
    """The outcome of one closed-loop run (one ``BENCH_serving`` measurement)."""

    kind: str
    clients: int
    backend: str
    mode: str
    scale: float
    statements: int
    attempted: int
    completed: int
    #: AdmissionRejected occurrences (each retry attempt counts once).
    rejected: int
    #: Statements dropped after exhausting their rejection retries (always
    #: 0 when ``retry_rejections`` and capacity admit everything eventually).
    shed: int
    typed_errors: Dict[str, int]
    queued: int
    plan_cache_hits: int
    plan_cache_misses: int
    wall_seconds: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    qps: float
    verified: bool
    degradations: Dict[str, int] = field(default_factory=dict)
    #: Fleet-wide change in every metrics series over the run (summed across
    #: servers, zero-delta series dropped) — what this regime *did* to the
    #: counters, independent of whatever ran before it.
    metrics_delta: Dict[str, float] = field(default_factory=dict)
    #: Top-3 slowest query-log records across the fleet, summarized
    #: (name, session, outcome, duration, admission wait, top op timings).
    slowest_queries: List[Dict[str, object]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "clients": self.clients,
            "backend": self.backend,
            "mode": self.mode,
            "scale": self.scale,
            "statements": self.statements,
            "attempted": self.attempted,
            "completed": self.completed,
            "rejected": self.rejected,
            "shed": self.shed,
            "typed_errors": dict(self.typed_errors),
            "queued": self.queued,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "wall_seconds": self.wall_seconds,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "qps": self.qps,
            "verified": self.verified,
            "degradations": dict(self.degradations),
            "metrics_delta": dict(self.metrics_delta),
            "slowest_queries": list(self.slowest_queries),
        }


def run_serving_benchmark(
    fleet: ServingFleet,
    clients: int = 8,
    rounds: int = 1,
    seed: int = 17,
    backend: str = "serial",
    options: Optional[ExecutionOptions] = None,
    fault_spec: Optional[str] = None,
    retry_rejections: bool = True,
    max_retries: int = 16,
    kind: Optional[str] = None,
    verify: bool = True,
    check_leaks: bool = True,
) -> ServingReport:
    """Run ``clients`` closed-loop threads over the fleet's statements.

    The work queue holds ``rounds`` deterministic shuffles of every routed
    statement; each client claims the next statement only after finishing
    (or exhausting retries for) its previous one.  With ``fault_spec`` the
    process-global injector is configured for the whole run (per-query
    fault scoping is not concurrency-safe) and cleared afterwards.

    Every completion is verified bit-identical against the fleet's serial
    baseline; every failure must be a typed :class:`ReproError` (anything
    else propagates).  With ``check_leaks`` the run asserts zero leaked
    transient shm segments and zero outstanding governor reservations at
    the end.
    """
    from repro.exec import faults
    from repro.storage import buffer, shm

    if clients <= 0:
        raise WorkloadError("serving benchmark needs at least one client")
    if options is None:
        options = ExecutionOptions(execution=ExecutionConfig(backend=backend))
    if verify and not fleet.baselines:
        raise WorkloadError(
            "fleet was built without baselines; pass compute_baselines=True "
            "or verify=False"
        )

    rng = np.random.default_rng(seed)
    stems = sorted(fleet.routes)
    work: List[str] = []
    for _ in range(max(rounds, 1)):
        order = list(stems)
        rng.shuffle(order)
        work.extend(order)

    queue_lock = threading.Lock()
    queue_index = [0]

    def next_stem() -> Optional[str]:
        with queue_lock:
            if queue_index[0] >= len(work):
                return None
            stem = work[queue_index[0]]
            queue_index[0] += 1
            return stem

    latencies: List[float] = []
    typed_errors: Dict[str, int] = {}
    degradations: Dict[str, int] = {}
    counters = {"attempted": 0, "completed": 0, "rejected": 0, "shed": 0}
    mismatches: List[str] = []
    hard_failures: List[BaseException] = []
    record_lock = threading.Lock()

    def client_loop(client_id: int) -> None:
        sessions = {
            key: server.session(f"bench-c{client_id}-{key}")
            for key, server in fleet.servers.items()
        }
        try:
            while True:
                stem = next_stem()
                if stem is None:
                    return
                session = sessions[fleet.routes[stem]]
                text = fleet.texts[stem]
                attempts = 0
                while True:
                    with record_lock:
                        counters["attempted"] += 1
                    started = time.monotonic()
                    try:
                        result = session.sql(text, options=options)
                    except AdmissionRejected as rejection:
                        with record_lock:
                            counters["rejected"] += 1
                        if not retry_rejections or attempts >= max_retries:
                            with record_lock:
                                counters["shed"] += 1
                            break
                        attempts += 1
                        time.sleep(min(max(rejection.retry_after_seconds, 0.0), 0.25))
                        continue
                    except ReproError as error:
                        # Typed chaos outcome (fault, timeout, cancel, ...):
                        # acceptable; anything untyped propagates below.
                        with record_lock:
                            name = type(error).__name__
                            typed_errors[name] = typed_errors.get(name, 0) + 1
                        break
                    elapsed = time.monotonic() - started
                    with record_lock:
                        counters["completed"] += 1
                        latencies.append(elapsed)
                        for note in result.stats.degradations:
                            tag = ":".join(note.split(":")[:2])
                            degradations[tag] = degradations.get(tag, 0) + 1
                        if verify and dict(result.aggregates) != fleet.baselines[stem]:
                            mismatches.append(
                                f"{stem}: {dict(result.aggregates)} != "
                                f"{fleet.baselines[stem]}"
                            )
                    break
        except BaseException as error:  # noqa: BLE001 - reported by the main thread
            with record_lock:
                hard_failures.append(error)
        finally:
            for session in sessions.values():
                session.close()

    # Metrics baseline: servers may be reused across regimes, so the report
    # carries this run's *delta*, not the servers' lifetime totals.
    metrics_before: Dict[str, float] = {}
    for server in fleet.servers.values():
        for series, value in server.metrics_snapshot().items():
            metrics_before[series] = metrics_before.get(series, 0.0) + value

    if fault_spec is not None:
        faults.configure(fault_spec)
    try:
        wall_started = time.monotonic()
        threads = [
            threading.Thread(target=client_loop, args=(i,), name=f"serving-client-{i}")
            for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_seconds = time.monotonic() - wall_started
    finally:
        if fault_spec is not None:
            faults.clear()

    if hard_failures:
        raise hard_failures[0]
    if mismatches:
        raise WorkloadError(
            "concurrent serving diverged from the single-threaded serial "
            f"baseline: {mismatches[:5]}"
        )

    if check_leaks:
        try:
            shm.assert_no_transient_leaks()
        except ReproError as error:
            raise WorkloadError(f"serving run leaked shm segments: {error}") from error
        gc.collect()
        outstanding = buffer.outstanding_reservations()
        if outstanding:
            raise WorkloadError(
                f"serving run leaked governor reservations: {outstanding}"
            )

    queued = 0
    plan_hits = 0
    plan_misses = 0
    metrics_after: Dict[str, float] = {}
    log_records = []
    for server in fleet.servers.values():
        stats = server.stats()
        queued += stats.queued
        plan_hits += stats.plan_cache_hits
        plan_misses += stats.plan_cache_misses
        for series, value in stats.metrics.items():
            metrics_after[series] = metrics_after.get(series, 0.0) + value
        if server.query_log is not None:
            log_records.extend(server.query_log.slowest(3))
    metrics_delta = {
        series: round(value - metrics_before.get(series, 0.0), 9)
        for series, value in sorted(metrics_after.items())
        if value != metrics_before.get(series, 0.0)
    }
    slowest_queries: List[Dict[str, object]] = [
        {
            "query_name": record.query_name,
            "session": record.session,
            "outcome": record.outcome,
            "backend": record.backend,
            "duration_ms": round(record.duration_seconds * 1e3, 3),
            "admission_wait_ms": round(record.admission_wait_seconds * 1e3, 3),
            "op_seconds": {
                op: round(seconds, 6)
                for op, seconds in sorted(
                    record.op_seconds.items(), key=lambda kv: kv[1], reverse=True
                )[:3]
            },
            "degradations": dict(record.degradations),
        }
        for record in sorted(
            log_records, key=lambda r: r.duration_seconds, reverse=True
        )[:3]
    ]

    ordered = sorted(seconds * 1e3 for seconds in latencies)

    def percentile(q: float) -> float:
        if not ordered:
            return 0.0
        return float(np.percentile(ordered, q))

    return ServingReport(
        kind=kind or ("chaos" if fault_spec else "clean"),
        clients=clients,
        backend=backend,
        mode=fleet.mode.value,
        scale=fleet.scale,
        statements=len(stems),
        attempted=counters["attempted"],
        completed=counters["completed"],
        rejected=counters["rejected"],
        shed=counters["shed"],
        typed_errors=typed_errors,
        queued=queued,
        plan_cache_hits=plan_hits,
        plan_cache_misses=plan_misses,
        wall_seconds=wall_seconds,
        p50_ms=percentile(50),
        p95_ms=percentile(95),
        p99_ms=percentile(99),
        qps=(counters["completed"] / wall_seconds) if wall_seconds > 0 else 0.0,
        verified=verify and not mismatches,
        degradations=degradations,
        metrics_delta=metrics_delta,
        slowest_queries=slowest_queries,
    )


def format_serving_report(report: ServingReport) -> str:
    """Human-readable one-measurement summary (for ``print_report``)."""
    lines = [
        f"serving[{report.kind}] {report.clients} clients x "
        f"{report.statements} statements on {report.backend}/{report.mode}",
        f"  completed {report.completed}/{report.attempted} attempts, "
        f"rejected {report.rejected}, shed {report.shed}, queued {report.queued}",
        f"  latency p50 {report.p50_ms:.1f}ms  p95 {report.p95_ms:.1f}ms  "
        f"p99 {report.p99_ms:.1f}ms  qps {report.qps:.1f} "
        f"(wall {report.wall_seconds:.2f}s)",
        f"  plan cache {report.plan_cache_hits} hits / "
        f"{report.plan_cache_misses} misses; verified={report.verified}",
    ]
    if report.typed_errors:
        lines.append(f"  typed errors: {dict(sorted(report.typed_errors.items()))}")
    if report.degradations:
        lines.append(f"  degradations: {dict(sorted(report.degradations.items()))}")
    for entry in report.slowest_queries:
        lines.append(
            f"  slowest: {entry['query_name']} ({entry['session']}) "
            f"{entry['duration_ms']:.1f}ms waited {entry['admission_wait_ms']:.1f}ms "
            f"outcome={entry['outcome']}"
        )
    return "\n".join(lines)
