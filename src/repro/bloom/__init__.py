"""Blocked Bloom filters and the registry used to pass them between operators."""

from repro.bloom.bloom_filter import (
    BITS_PER_KEY,
    DEFAULT_FPR,
    BloomFilter,
    BloomFilterStatistics,
    hash_keys,
    key_patterns,
    optimal_num_blocks,
)
from repro.bloom.registry import BloomFilterRegistry, FilterKey

__all__ = [
    "BITS_PER_KEY",
    "DEFAULT_FPR",
    "BloomFilter",
    "BloomFilterRegistry",
    "BloomFilterStatistics",
    "FilterKey",
    "hash_keys",
    "key_patterns",
    "optimal_num_blocks",
]
