"""Blocked Bloom filter with fully vectorized NumPy insert and probe paths.

The paper uses Apache Arrow's blocked Bloom filter (a "split block" design
accelerated with AVX2) to implement the approximate semi-joins of Predicate
Transfer.  This module provides the same structure in NumPy:

* the filter is an array of 64-bit *blocks*;
* each key hashes (splitmix64) to one block plus a small number of bit
  positions inside that block;
* insert sets those bits, probe tests them — both as single vectorized
  passes over the whole key array, which is the NumPy analogue of the SIMD
  batch probe in Arrow.

Because every block is a single machine word, a probe touches exactly one
cache line, which is what makes Bloom probes several times cheaper than hash
table probes (reproduced in the Figure 16 microbenchmark).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ExecutionError

#: Default false-positive rate, matching Arrow's default used in the paper.
DEFAULT_FPR = 0.02

#: Number of bits set per key inside its block.
BITS_PER_KEY = 4

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def _splitmix64(keys: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer: a cheap, well-mixing 64-bit hash."""
    z = keys.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        z = (z + np.uint64(0x9E3779B97F4A7C15)) & _MASK64
        z = ((z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & _MASK64
        z = ((z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & _MASK64
        z = z ^ (z >> np.uint64(31))
    return z


def hash_keys(keys: np.ndarray) -> np.ndarray:
    """Splitmix64 hashes of a vector of integer keys.

    This is the (only) hashing pass every Bloom insert and probe performs;
    exposing it lets callers hash a key column once and replay the result
    across many filters (:class:`~repro.exec.hashcache.HashCache`).  The
    hashes depend solely on the key values, never on a filter's geometry.
    """
    return _splitmix64(np.asarray(keys, dtype=np.int64).view(np.uint64))


def key_patterns(hashes: np.ndarray) -> np.ndarray:
    """Per-key 64-bit block bit-patterns derived from splitmix64 hashes.

    Like the hashes themselves, the :data:`BITS_PER_KEY` bit positions a key
    sets within its block depend only on the key's hash — not on the filter —
    so they too can be computed once per column and replayed across every
    insert and probe (this derivation is the bulk of the per-pass hash work).
    """
    pattern = np.zeros(hashes.shape, dtype=np.uint64)
    rotated = hashes
    for i in range(BITS_PER_KEY):
        rotated = rotated >> np.uint64(6)
        bit_pos = (rotated ^ (hashes >> np.uint64(32 + 3 * i))) & np.uint64(63)
        pattern |= np.uint64(1) << bit_pos
    return pattern


def optimal_num_blocks(num_keys: int, fpr: float) -> int:
    """Number of 64-bit blocks needed for ``num_keys`` at false-positive rate ``fpr``.

    Uses the standard Bloom sizing formula ``m = -n ln p / (ln 2)^2`` bits and
    rounds up to a power-of-two block count so the block index can be taken
    with a mask.  Blocked filters have a slightly worse FPR than classic
    Bloom filters at equal size, so a 1.25x safety factor is applied.
    """
    if num_keys <= 0:
        return 1
    if not 0.0 < fpr < 1.0:
        raise ExecutionError(f"false-positive rate must be in (0, 1), got {fpr}")
    bits = -num_keys * math.log(fpr) / (math.log(2.0) ** 2)
    bits *= 1.25
    blocks = max(1, int(math.ceil(bits / 64.0)))
    return 1 << max(0, (blocks - 1).bit_length())


def filter_bytes_for(num_keys: int, fpr: float = DEFAULT_FPR) -> int:
    """Bytes a filter sized for ``num_keys`` at ``fpr`` would occupy.

    Pure sizing arithmetic (no filter is built).  The adaptive transfer
    layer uses it to report how many filter bytes NDV-based sizing saved
    against the row-count sizing a static build would have used.
    """
    return optimal_num_blocks(num_keys, fpr) * 8


@dataclass
class BloomFilterStatistics:
    """Counters recorded by a Bloom filter over its lifetime."""

    keys_inserted: int = 0
    keys_probed: int = 0
    probes_passed: int = 0

    @property
    def observed_pass_rate(self) -> float:
        """Fraction of probed keys that passed (matches + false positives)."""
        if self.keys_probed == 0:
            return 0.0
        return self.probes_passed / self.keys_probed


class BloomFilter:
    """A blocked Bloom filter over 64-bit integer keys.

    Parameters
    ----------
    expected_keys:
        Number of distinct keys expected to be inserted; used for sizing.
    fpr:
        Target false-positive rate (default 2%, the paper/Arrow default).
    num_blocks:
        Explicit block count; overrides sizing from ``expected_keys``.
    """

    def __init__(
        self,
        expected_keys: int,
        fpr: float = DEFAULT_FPR,
        num_blocks: Optional[int] = None,
    ) -> None:
        self.fpr = fpr
        self.expected_keys = max(int(expected_keys), 0)
        self.num_blocks = num_blocks if num_blocks is not None else optimal_num_blocks(self.expected_keys, fpr)
        if self.num_blocks <= 0:
            raise ExecutionError("Bloom filter must have at least one block")
        self._blocks = np.zeros(self.num_blocks, dtype=np.uint64)
        self._block_mask = np.uint64(self.num_blocks - 1)
        self._is_power_of_two = (self.num_blocks & (self.num_blocks - 1)) == 0
        self.statistics = BloomFilterStatistics()
        # Probes run concurrently under the morsel-parallel backend; the
        # counter updates are read-modify-write and need the lock (the block
        # array itself is only read during probes).
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        # The process backend ships filters to workers; locks do not pickle.
        state = self.__dict__.copy()
        del state["_stats_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Hashing helpers
    # ------------------------------------------------------------------
    def _block_and_bits(
        self,
        keys: Optional[np.ndarray],
        hashes: Optional[np.ndarray] = None,
        patterns: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Map keys to (block index, 64-bit bit-pattern within the block).

        ``hashes`` / ``patterns`` are optional precomputed splitmix64 hashes
        and block bit-patterns (see :func:`hash_keys` / :func:`key_patterns`):
        supplying them replays a cached hashing pass instead of re-hashing,
        and is bit-identical to hashing ``keys`` directly.
        """
        if hashes is None:
            assert keys is not None, "either keys or hashes must be supplied"
            hashes = hash_keys(keys)
        if self._is_power_of_two:
            block_idx = (hashes & self._block_mask).astype(np.int64)
        else:
            block_idx = (hashes % np.uint64(self.num_blocks)).astype(np.int64)
        if patterns is None:
            patterns = key_patterns(hashes)
        return block_idx, patterns

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def insert(
        self,
        keys: Optional[np.ndarray] = None,
        hashes: Optional[np.ndarray] = None,
        patterns: Optional[np.ndarray] = None,
    ) -> None:
        """Insert a vector of integer keys (or their precomputed hashes)."""
        if keys is not None:
            keys = np.asarray(keys)
            count = int(keys.size)
        elif hashes is not None:
            count = int(np.asarray(hashes).size)
        else:
            raise ExecutionError("Bloom insert requires keys or precomputed hashes")
        if count == 0:
            return
        block_idx, pattern = self._block_and_bits(keys, hashes, patterns)
        np.bitwise_or.at(self._blocks, block_idx, pattern)
        with self._stats_lock:
            self.statistics.keys_inserted += count

    def probe(
        self,
        keys: Optional[np.ndarray] = None,
        hashes: Optional[np.ndarray] = None,
        patterns: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Return a boolean array: True where the key *may* be present.

        Accepts either raw ``keys`` or a precomputed hashing pass
        (``hashes`` and optionally ``patterns``); the results are
        bit-identical.  Probes may run concurrently from morsel worker
        threads — the block array is only read, and the statistics update
        is serialized under the filter's lock.
        """
        if keys is not None:
            keys = np.asarray(keys)
            count = int(keys.size)
        elif hashes is not None:
            count = int(np.asarray(hashes).size)
        else:
            raise ExecutionError("Bloom probe requires keys or precomputed hashes")
        if count == 0:
            return np.zeros(0, dtype=bool)
        block_idx, pattern = self._block_and_bits(keys, hashes, patterns)
        hits = (self._blocks[block_idx] & pattern) == pattern
        passed = int(hits.sum())
        with self._stats_lock:
            self.statistics.keys_probed += count
            self.statistics.probes_passed += passed
        return hits

    def contains(self, key: int) -> bool:
        """Scalar membership check (mostly useful in tests and examples)."""
        return bool(self.probe(np.asarray([key], dtype=np.int64))[0])

    @property
    def size_bytes(self) -> int:
        """Size of the filter's bit array in bytes."""
        return int(self._blocks.nbytes)

    @property
    def fill_ratio(self) -> float:
        """Fraction of bits set, an indicator of saturation."""
        set_bits = int(np.unpackbits(self._blocks.view(np.uint8)).sum())
        return set_bits / (self.num_blocks * 64)

    def union_inplace(self, other: "BloomFilter") -> None:
        """Bitwise-OR another filter of identical geometry into this one.

        Used to combine per-thread partial filters in the simulated parallel
        build, mirroring the Combine step of the paper's CreateBF operator.
        """
        if other.num_blocks != self.num_blocks:
            raise ExecutionError("cannot union Bloom filters of different sizes")
        self._blocks |= other._blocks
        with self._stats_lock:
            self.statistics.keys_inserted += other.statistics.keys_inserted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BloomFilter(blocks={self.num_blocks}, bytes={self.size_bytes}, "
            f"inserted={self.statistics.keys_inserted})"
        )
