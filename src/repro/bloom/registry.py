"""Bloom filter registry: the shared-memory channel between transfer operators.

In the paper's DuckDB integration, a ``CreateBF`` operator publishes its
Bloom filter via shared memory and the matching ``ProbeBF`` operator of
another pipeline picks it up.  The registry plays that role here: filters are
published under a :class:`FilterKey` identifying *which relation's which join
attribute* they summarize, and consumers look them up by the same key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.bloom.bloom_filter import BloomFilter
from repro.errors import ExecutionError


@dataclass(frozen=True)
class FilterKey:
    """Identifies a published Bloom filter.

    Attributes
    ----------
    relation:
        Name (alias) of the relation whose keys were inserted.
    attribute:
        The join attribute (equivalence-class name) the filter summarizes.
    pass_id:
        Distinguishes forward-pass filters from backward-pass filters so a
        backward ProbeBF never accidentally consumes a stale forward filter.
    """

    relation: str
    attribute: str
    pass_id: str = "forward"


class BloomFilterRegistry:
    """A mapping from :class:`FilterKey` to published :class:`BloomFilter`."""

    def __init__(self) -> None:
        self._filters: Dict[FilterKey, BloomFilter] = {}

    def publish(self, key: FilterKey, bloom: BloomFilter, replace: bool = False) -> None:
        """Publish a filter under ``key``.

        Raises
        ------
        ExecutionError
            If a filter is already published under that key and ``replace``
            is False — this would indicate a malformed transfer schedule.
        """
        if key in self._filters and not replace:
            raise ExecutionError(f"Bloom filter already published for {key}")
        self._filters[key] = bloom

    def lookup(self, key: FilterKey) -> BloomFilter:
        """Return the filter published under ``key``."""
        try:
            return self._filters[key]
        except KeyError:
            raise ExecutionError(f"no Bloom filter published for {key}") from None

    def get(self, key: FilterKey) -> Optional[BloomFilter]:
        """Return the filter published under ``key`` or None."""
        return self._filters.get(key)

    def __contains__(self, key: FilterKey) -> bool:
        return key in self._filters

    def __len__(self) -> int:
        return len(self._filters)

    def __iter__(self) -> Iterator[FilterKey]:
        return iter(self._filters)

    def total_bytes(self) -> int:
        """Total size of all published filters, for memory accounting."""
        return sum(f.size_bytes for f in self._filters.values())

    def clear(self) -> None:
        """Drop all published filters (between query executions)."""
        self._filters.clear()
