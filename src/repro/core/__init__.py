"""The paper's core contribution: join graphs, join trees, LargestRoot,
SafeSubjoin, transfer schedules, and robustness metrics."""

from repro.core.join_graph import AttributeClass, JoinGraph, JoinGraphEdge
from repro.core.join_tree import (
    JoinTree,
    TreeEdge,
    attribute_subgraph_connected,
    gyo_reduction,
    has_composite_edges,
    is_alpha_acyclic,
    is_gamma_acyclic,
    is_join_tree,
    is_maximum_spanning_tree,
    join_tree_from_gyo,
    join_tree_from_parent_map,
    maximum_spanning_tree_weight,
)
from repro.core.largest_root import LargestRootOptions, largest_root, largest_root_random
from repro.core.robustness import (
    BenchmarkRobustnessSummary,
    RobustnessFactor,
    geometric_mean,
    robustness_factor,
    speedup,
    summarize_robustness,
)
from repro.core.safe_subjoin import is_safe_join_order, safe_subjoin, unsafe_prefixes
from repro.core.small2large import TransferGraph, TransferGraphEdge, small2large
from repro.core.transfer_schedule import (
    TransferPass,
    TransferSchedule,
    TransferStep,
    schedule_from_transfer_graph,
    schedule_from_tree,
)

__all__ = [
    "AttributeClass",
    "BenchmarkRobustnessSummary",
    "JoinGraph",
    "JoinGraphEdge",
    "JoinTree",
    "LargestRootOptions",
    "RobustnessFactor",
    "TransferGraph",
    "TransferGraphEdge",
    "TransferPass",
    "TransferSchedule",
    "TransferStep",
    "TreeEdge",
    "attribute_subgraph_connected",
    "geometric_mean",
    "gyo_reduction",
    "has_composite_edges",
    "is_alpha_acyclic",
    "is_gamma_acyclic",
    "is_join_tree",
    "is_maximum_spanning_tree",
    "is_safe_join_order",
    "join_tree_from_gyo",
    "join_tree_from_parent_map",
    "largest_root",
    "largest_root_random",
    "maximum_spanning_tree_weight",
    "robustness_factor",
    "safe_subjoin",
    "schedule_from_transfer_graph",
    "schedule_from_tree",
    "small2large",
    "speedup",
    "summarize_robustness",
    "unsafe_prefixes",
]
