"""Join graph construction and attribute equivalence classes.

Section 3.1 of the paper reasons about queries as *natural joins*: join
predicates such as ``R.a = S.b`` are treated as the two columns being the
same attribute.  This module performs that translation:

* every ``alias.column`` that participates in a join condition is placed in
  an *attribute equivalence class* (union-find over the join conditions);
* each relation occurrence is then viewed as a hyperedge over the attribute
  classes it contains;
* the **join graph** has one vertex per relation and an undirected edge
  between two relations whenever they share at least one attribute class,
  weighted by the number of shared classes (Lemma 3.2's weights).

The join graph is the input to GYO ear removal (acyclicity tests),
``LargestRoot``, ``Small2Large`` and ``SafeSubjoin``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.errors import PlanError
from repro.query import QuerySpec


@dataclass(frozen=True)
class AttributeClass:
    """One equivalence class of join columns (a "natural join attribute").

    Attributes
    ----------
    name:
        Stable, human-readable identifier (derived from the smallest member).
    members:
        The set of ``(alias, column)`` pairs equated by the join conditions.
    """

    name: str
    members: FrozenSet[Tuple[str, str]]

    def column_of(self, alias: str) -> str:
        """Return the column of ``alias`` belonging to this class.

        If a relation contributes several columns to the same class (rare,
        implies a self-equality), the lexicographically smallest is returned.
        """
        candidates = sorted(column for a, column in self.members if a == alias)
        if not candidates:
            raise PlanError(f"relation {alias!r} has no column in attribute class {self.name!r}")
        return candidates[0]

    def touches(self, alias: str) -> bool:
        """True when the class contains a column of ``alias``."""
        return any(a == alias for a, _ in self.members)


class _UnionFind:
    """Minimal union-find over hashable items."""

    def __init__(self) -> None:
        self._parent: Dict[Tuple[str, str], Tuple[str, str]] = {}

    def add(self, item: Tuple[str, str]) -> None:
        self._parent.setdefault(item, item)

    def find(self, item: Tuple[str, str]) -> Tuple[str, str]:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Tuple[str, str], b: Tuple[str, str]) -> None:
        self.add(a)
        self.add(b)
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra

    def groups(self) -> list[frozenset[Tuple[str, str]]]:
        by_root: Dict[Tuple[str, str], set[Tuple[str, str]]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), set()).add(item)
        return [frozenset(g) for g in by_root.values()]


@dataclass(frozen=True)
class JoinGraphEdge:
    """An undirected, weighted edge of the join graph."""

    left: str
    right: str
    attributes: Tuple[str, ...]

    @property
    def weight(self) -> int:
        """Number of shared attribute classes (Lemma 3.2 weight)."""
        return len(self.attributes)

    def aliases(self) -> frozenset[str]:
        """The two endpoints as a set."""
        return frozenset({self.left, self.right})

    def other(self, alias: str) -> str:
        """The endpoint that is not ``alias``."""
        if alias == self.left:
            return self.right
        if alias == self.right:
            return self.left
        raise PlanError(f"alias {alias!r} is not an endpoint of edge {self}")

    def __repr__(self) -> str:
        return f"{self.left} -[{','.join(self.attributes)}]- {self.right}"


@dataclass
class JoinGraph:
    """The weighted join graph of a query.

    Attributes
    ----------
    query:
        The query this graph was derived from.
    attribute_classes:
        All natural-join attribute classes, keyed by name.
    relation_attributes:
        For each relation alias, the set of attribute-class names it contains.
    edges:
        Undirected weighted edges between relations sharing attributes.
    relation_sizes:
        Cardinality of each relation (row count of the underlying base table,
        or of the filtered base table when filtered sizes are supplied);
        drives the "largest relation" choices of LargestRoot / Small2Large.
    """

    query: QuerySpec
    attribute_classes: Dict[str, AttributeClass]
    relation_attributes: Dict[str, FrozenSet[str]]
    edges: Tuple[JoinGraphEdge, ...]
    relation_sizes: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_query(
        cls,
        query: QuerySpec,
        relation_sizes: Optional[Mapping[str, int]] = None,
    ) -> "JoinGraph":
        """Build the join graph of ``query``.

        Parameters
        ----------
        query:
            The query specification.
        relation_sizes:
            Optional mapping alias -> cardinality.  Missing aliases default
            to size 0; callers that care about LargestRoot / Small2Large
            behaviour should always provide sizes.
        """
        uf = _UnionFind()
        for join in query.joins:
            uf.union((join.left_alias, join.left_column), (join.right_alias, join.right_column))

        classes: Dict[str, AttributeClass] = {}
        for group in uf.groups():
            name = _class_name(group)
            classes[name] = AttributeClass(name=name, members=group)

        relation_attributes: Dict[str, FrozenSet[str]] = {}
        for ref in query.relations:
            attrs = frozenset(
                name for name, ac in classes.items() if ac.touches(ref.alias)
            )
            relation_attributes[ref.alias] = attrs

        edges = _build_edges(query, relation_attributes)
        sizes = {alias: int((relation_sizes or {}).get(alias, 0)) for alias in query.aliases}
        return cls(
            query=query,
            attribute_classes=classes,
            relation_attributes=relation_attributes,
            edges=edges,
            relation_sizes=sizes,
        )

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    @property
    def aliases(self) -> Tuple[str, ...]:
        """All relation aliases of the underlying query."""
        return self.query.aliases

    def size(self, alias: str) -> int:
        """Cardinality recorded for ``alias`` (0 when unknown)."""
        return self.relation_sizes.get(alias, 0)

    def attributes_of(self, alias: str) -> FrozenSet[str]:
        """Attribute-class names present in ``alias``."""
        return self.relation_attributes[alias]

    def shared_attributes(self, left: str, right: str) -> Tuple[str, ...]:
        """Attribute classes shared between two relations (sorted for determinism)."""
        return tuple(sorted(self.relation_attributes[left] & self.relation_attributes[right]))

    def edge_between(self, left: str, right: str) -> Optional[JoinGraphEdge]:
        """The edge connecting two relations, or None when they do not join."""
        target = frozenset({left, right})
        for edge in self.edges:
            if edge.aliases() == target:
                return edge
        return None

    def edges_of(self, alias: str) -> Tuple[JoinGraphEdge, ...]:
        """All edges incident to ``alias``."""
        return tuple(e for e in self.edges if alias in e.aliases())

    def neighbors(self, alias: str) -> frozenset[str]:
        """Relations directly connected to ``alias``."""
        return frozenset(e.other(alias) for e in self.edges_of(alias))

    def largest_relation(self) -> str:
        """The alias with the largest recorded cardinality.

        Ties break toward the lexicographically smallest alias so the result
        is deterministic.
        """
        if not self.aliases:
            raise PlanError("join graph has no relations")
        return max(sorted(self.aliases), key=lambda a: self.size(a))

    def is_connected(self) -> bool:
        """True when the graph is a single connected component."""
        if not self.aliases:
            return True
        seen = {self.aliases[0]}
        frontier = [self.aliases[0]]
        while frontier:
            current = frontier.pop()
            for neighbor in self.neighbors(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(self.aliases)

    def connected_components(self) -> Tuple[frozenset[str], ...]:
        """All connected components of the graph (a join forest has several)."""
        remaining = set(self.aliases)
        components: list[frozenset[str]] = []
        while remaining:
            start = sorted(remaining)[0]
            seen = {start}
            frontier = [start]
            while frontier:
                current = frontier.pop()
                for neighbor in self.neighbors(current):
                    if neighbor not in seen:
                        seen.add(neighbor)
                        frontier.append(neighbor)
            components.append(frozenset(seen))
            remaining -= seen
        return tuple(components)

    def hyperedges(self) -> Dict[str, FrozenSet[str]]:
        """The hypergraph view: relation alias -> set of attribute classes.

        This is the input representation used by GYO ear removal.
        """
        return dict(self.relation_attributes)

    def subgraph(self, aliases: Iterable[str]) -> "JoinGraph":
        """The induced sub-join-graph over a subset of relations.

        The subgraph keeps the *parent graph's attribute classes* (restricted
        to the requested relations) instead of recomputing them from the
        subquery's explicit join conditions.  This matches the paper's
        natural-join view: two relations equated through a third relation's
        attribute still share that attribute even when the third relation is
        not part of the subjoin.  SafeSubjoin relies on this behaviour.
        """
        alias_set = set(aliases)
        unknown = alias_set - set(self.aliases)
        if unknown:
            raise PlanError(f"unknown aliases in subgraph request: {sorted(unknown)}")
        sub_relations = tuple(r for r in self.query.relations if r.alias in alias_set)
        sub_joins = tuple(
            j for j in self.query.joins
            if j.left_alias in alias_set and j.right_alias in alias_set
        )
        sub_query = QuerySpec(
            name=f"{self.query.name}__sub",
            relations=sub_relations,
            joins=sub_joins,
            aggregates=self.query.aggregates,
        )
        sub_classes = {
            name: AttributeClass(
                name=name,
                members=frozenset((a, c) for a, c in ac.members if a in alias_set),
            )
            for name, ac in self.attribute_classes.items()
            if any(a in alias_set for a, _ in ac.members)
        }
        sub_relation_attributes = {
            alias: frozenset(a for a in self.relation_attributes[alias] if a in sub_classes)
            for alias in alias_set
        }
        sub_edges = _build_edges(sub_query, sub_relation_attributes)
        sub_sizes = {a: self.size(a) for a in alias_set}
        return JoinGraph(
            query=sub_query,
            attribute_classes=sub_classes,
            relation_attributes=sub_relation_attributes,
            edges=sub_edges,
            relation_sizes=sub_sizes,
        )

    def total_mst_weight_upper_bound(self) -> int:
        """Sum over attribute classes of (number of relations containing it - 1).

        For an acyclic query this equals the weight of any maximum spanning
        tree (see the discussion under Lemma 3.2), which gives a cheap check
        for whether a candidate spanning tree is an MST.
        """
        total = 0
        for ac in self.attribute_classes.values():
            relations = {alias for alias, _ in ac.members}
            total += max(len(relations) - 1, 0)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JoinGraph({self.query.name!r}, relations={len(self.aliases)}, "
            f"edges={len(self.edges)})"
        )


def _class_name(group: frozenset[Tuple[str, str]]) -> str:
    """Derive a deterministic attribute-class name from its members."""
    alias, column = sorted(group)[0]
    return f"{alias}.{column}"


def _build_edges(
    query: QuerySpec,
    relation_attributes: Mapping[str, FrozenSet[str]],
) -> Tuple[JoinGraphEdge, ...]:
    """Create one weighted edge per pair of relations sharing attributes."""
    edges: list[JoinGraphEdge] = []
    aliases = list(query.aliases)
    for i, left in enumerate(aliases):
        for right in aliases[i + 1:]:
            shared = tuple(sorted(relation_attributes[left] & relation_attributes[right]))
            if shared:
                edges.append(JoinGraphEdge(left=left, right=right, attributes=shared))
    return tuple(edges)
