"""Join trees, GYO ear removal, and acyclicity tests (α- and γ-acyclicity).

A *join tree* of a natural-join query is a spanning tree of its join graph
such that for every attribute class the relations containing that attribute
induce a connected subtree (the "connectedness" / running-intersection
property).  Acyclicity is defined through join trees:

* **α-acyclic** (Definition 3.1): a join tree exists.  Tested here with the
  classic GYO ear-removal algorithm on the query's hypergraph.
* **γ-acyclic** (Definition 3.4): α-acyclic and free of γ-cycles; the paper
  uses the practical sufficient condition "no two relations are connected by
  more than one attribute" plus the size-3 γ-cycle pattern, both implemented
  below.

Lemma 3.2 states that for an acyclic query, a spanning tree is a join tree
iff it is a *maximum* spanning tree under the shared-attribute-count weights;
:func:`is_join_tree` and :func:`is_maximum_spanning_tree` implement both
sides of that equivalence so the library (and its tests) can cross-check the
two characterizations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.errors import AcyclicityError, PlanError
from repro.core.join_graph import JoinGraph


@dataclass(frozen=True)
class TreeEdge:
    """A directed edge of a rooted join tree, pointing child -> parent.

    Following Algorithm 1, edges are directed "from R to S" where S is
    already in the tree, i.e. from the newly added (child) vertex toward the
    root.  The edge direction is exactly the direction Bloom filters flow in
    the forward pass.
    """

    child: str
    parent: str
    attributes: Tuple[str, ...]

    @property
    def weight(self) -> int:
        """Number of shared attribute classes."""
        return len(self.attributes)

    def __repr__(self) -> str:
        return f"{self.child} -> {self.parent} [{','.join(self.attributes)}]"


@dataclass
class JoinTree:
    """A rooted spanning tree of a join graph.

    The tree is represented by its root and child->parent edges.  Traversal
    helpers provide the orders needed by the transfer schedule (post-order
    for the forward pass, level-order for the backward pass) and the join
    phase (bottom-up join order).
    """

    root: str
    edges: Tuple[TreeEdge, ...]
    graph: JoinGraph = field(repr=False)

    def __post_init__(self) -> None:
        nodes = {self.root} | {e.child for e in self.edges} | {e.parent for e in self.edges}
        if len(self.edges) != len(nodes) - 1:
            raise PlanError(
                f"join tree has {len(self.edges)} edges for {len(nodes)} nodes; not a tree"
            )
        children = [e.child for e in self.edges]
        if len(set(children)) != len(children):
            raise PlanError("join tree has a node with two parents")
        if self.root in children:
            raise PlanError("join tree root must not have a parent")

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> FrozenSet[str]:
        """All relation aliases in the tree."""
        return frozenset({self.root} | {e.child for e in self.edges} | {e.parent for e in self.edges})

    @property
    def total_weight(self) -> int:
        """Sum of edge weights (shared-attribute counts)."""
        return sum(e.weight for e in self.edges)

    def parent_of(self, alias: str) -> Optional[str]:
        """Parent of ``alias`` (None for the root)."""
        for edge in self.edges:
            if edge.child == alias:
                return edge.parent
        if alias == self.root:
            return None
        raise PlanError(f"alias {alias!r} is not a node of this join tree")

    def children_of(self, alias: str) -> Tuple[str, ...]:
        """Children of ``alias`` in deterministic (sorted) order."""
        return tuple(sorted(e.child for e in self.edges if e.parent == alias))

    def edge_to_parent(self, alias: str) -> TreeEdge:
        """The edge connecting ``alias`` to its parent."""
        for edge in self.edges:
            if edge.child == alias:
                return edge
        raise PlanError(f"alias {alias!r} has no parent edge (is it the root?)")

    def depth_of(self, alias: str) -> int:
        """Distance from ``alias`` to the root."""
        depth = 0
        current: Optional[str] = alias
        while current != self.root:
            current = self.parent_of(current)
            if current is None:
                raise PlanError(f"alias {alias!r} is disconnected from root {self.root!r}")
            depth += 1
        return depth

    def height(self) -> int:
        """Maximum depth over all nodes."""
        return max(self.depth_of(n) for n in self.nodes)

    # ------------------------------------------------------------------
    # Traversals
    # ------------------------------------------------------------------
    def post_order(self) -> Tuple[str, ...]:
        """Children-before-parents order (used by the forward pass)."""
        order: List[str] = []

        def visit(node: str) -> None:
            for child in self.children_of(node):
                visit(child)
            order.append(node)

        visit(self.root)
        return tuple(order)

    def level_order(self) -> Tuple[str, ...]:
        """Root-first breadth-first order (used by the backward pass)."""
        order: List[str] = [self.root]
        frontier: List[str] = [self.root]
        while frontier:
            next_frontier: List[str] = []
            for node in frontier:
                for child in self.children_of(node):
                    order.append(child)
                    next_frontier.append(child)
            frontier = next_frontier
        return tuple(order)

    def leaves(self) -> Tuple[str, ...]:
        """Nodes with no children."""
        return tuple(sorted(n for n in self.nodes if not self.children_of(n)))

    def bottom_up_join_order(self) -> Tuple[str, ...]:
        """A left-deep join order that climbs the tree from a leaf (Yannakakis join phase).

        The first element is a leaf; every subsequent relation is adjacent
        *in the tree* to the set already joined (a depth-first walk of the
        tree viewed as an undirected graph), so every binary join maps to a
        tree edge and intermediate results stay monotone on a fully reduced
        instance.
        """
        start = self.leaves()[0] if self.leaves() else self.root
        order: List[str] = []
        seen: set[str] = set()

        def visit(node: str) -> None:
            if node in seen:
                return
            seen.add(node)
            order.append(node)
            neighbors = list(self.children_of(node))
            parent = self.parent_of(node)
            if parent is not None:
                neighbors.append(parent)
            for neighbor in neighbors:
                visit(neighbor)

        visit(start)
        return tuple(order)

    def aligned_join_order(self) -> Tuple[str, ...]:
        """The top-down (root-first) join order that is *aligned* with the transfer order.

        When the join phase consumes relations in this order, every relation
        is joined immediately after its parent, so the filtering the backward
        pass would have performed happens inside the joins themselves and the
        backward pass can be skipped (§4.3 of the paper).
        """
        return self.level_order()

    def subtree_nodes(self, alias: str) -> FrozenSet[str]:
        """All nodes in the subtree rooted at ``alias`` (including itself)."""
        result = {alias}
        frontier = [alias]
        while frontier:
            node = frontier.pop()
            for child in self.children_of(node):
                result.add(child)
                frontier.append(child)
        return frozenset(result)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JoinTree(root={self.root!r}, edges={len(self.edges)})"


# ---------------------------------------------------------------------------
# GYO ear removal and acyclicity
# ---------------------------------------------------------------------------
def gyo_reduction(graph: JoinGraph) -> Tuple[Dict[str, FrozenSet[str]], List[Tuple[str, Optional[str]]]]:
    """Run GYO ear removal on the query hypergraph.

    Repeatedly removes *ears*: a relation R is an ear if its attributes that
    are shared with any other relation are all contained in a single other
    relation S (the *witness*), or if R shares no attribute with anyone.

    Returns
    -------
    (remaining, removal_sequence):
        ``remaining`` maps the aliases that could not be removed to their
        attribute sets (empty iff the query is α-acyclic); the removal
        sequence records ``(ear, witness)`` pairs in removal order, which is
        exactly a join-tree parent assignment for acyclic queries.
    """
    hyperedges: Dict[str, FrozenSet[str]] = dict(graph.hyperedges())
    removal_sequence: List[Tuple[str, Optional[str]]] = []

    changed = True
    while changed and len(hyperedges) > 1:
        changed = False
        for alias in sorted(hyperedges):
            attrs = hyperedges[alias]
            others = {a: s for a, s in hyperedges.items() if a != alias}
            shared_with_others = frozenset(
                attr for attr in attrs if any(attr in s for s in others.values())
            )
            if not shared_with_others:
                removal_sequence.append((alias, None))
                del hyperedges[alias]
                changed = True
                break
            witness = None
            for other_alias in sorted(others, key=lambda a: (-len(others[a] & shared_with_others), a)):
                if shared_with_others <= others[other_alias]:
                    witness = other_alias
                    break
            if witness is not None:
                removal_sequence.append((alias, witness))
                del hyperedges[alias]
                changed = True
                break
    return hyperedges, removal_sequence


def is_alpha_acyclic(graph: JoinGraph) -> bool:
    """True when the query is α-acyclic (a join tree exists)."""
    if len(graph.aliases) <= 1:
        return True
    remaining, _ = gyo_reduction(graph)
    return len(remaining) <= 1


def is_gamma_acyclic(graph: JoinGraph) -> bool:
    """True when the query is γ-acyclic (Definition 3.4).

    Implemented as: α-acyclic, and no three relations R, S, T with attribute
    classes x, y, z form the γ-cycle-of-size-3 pattern
    ``R ⊇ {x, y}``, ``S ⊇ {y, z}``, ``T ⊇ {x, y, z}`` with R missing z and S
    missing x.  (This matches the definition quoted in the paper; the fully
    general γ-cycle elimination procedure reduces to this pattern after
    α-acyclicity holds for the query shapes evaluated here.)
    """
    if not is_alpha_acyclic(graph):
        return False
    aliases = list(graph.aliases)
    attrs = graph.relation_attributes
    for r in aliases:
        for s in aliases:
            if s == r:
                continue
            for t in aliases:
                if t in (r, s):
                    continue
                # Candidate z: shared by S and T but not in R.
                # Candidate x: shared by R and T but not in S.
                # Candidate y: shared by all three.
                shared_all = attrs[r] & attrs[s] & attrs[t]
                if not shared_all:
                    continue
                x_candidates = (attrs[r] & attrs[t]) - attrs[s]
                z_candidates = (attrs[s] & attrs[t]) - attrs[r]
                if x_candidates and z_candidates:
                    return False
    return True


def has_composite_edges(graph: JoinGraph) -> bool:
    """True when some pair of relations joins on more than one attribute.

    The paper uses "no composite-key joins" as a quick *sufficient* check for
    γ-acyclicity of an α-acyclic query.
    """
    return any(edge.weight > 1 for edge in graph.edges)


# ---------------------------------------------------------------------------
# Join-tree validation (Lemma 3.2, both directions)
# ---------------------------------------------------------------------------
def attribute_subgraph_connected(tree: JoinTree, attribute: str) -> bool:
    """True when the relations containing ``attribute`` induce a connected subtree."""
    graph = tree.graph
    members = {alias for alias in tree.nodes if attribute in graph.attributes_of(alias)}
    if len(members) <= 1:
        return True
    # Walk the induced subgraph of the tree restricted to `members`.
    adjacency: Dict[str, set[str]] = {m: set() for m in members}
    for edge in tree.edges:
        if edge.child in members and edge.parent in members:
            adjacency[edge.child].add(edge.parent)
            adjacency[edge.parent].add(edge.child)
    start = sorted(members)[0]
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for neighbor in adjacency[node]:
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return seen == members


def is_join_tree(tree: JoinTree) -> bool:
    """True when ``tree`` satisfies the join-tree connectedness property."""
    if tree.nodes != frozenset(tree.graph.aliases):
        return False
    return all(
        attribute_subgraph_connected(tree, attribute)
        for attribute in tree.graph.attribute_classes
    )


def maximum_spanning_tree_weight(graph: JoinGraph) -> int:
    """Weight of a maximum spanning tree of the join graph (Prim's algorithm)."""
    aliases = list(graph.aliases)
    if len(aliases) <= 1:
        return 0
    if not graph.is_connected():
        raise AcyclicityError("maximum spanning tree weight requires a connected join graph")
    in_tree = {aliases[0]}
    total = 0
    while len(in_tree) < len(aliases):
        best_weight = -1
        best_vertex: Optional[str] = None
        for edge in graph.edges:
            endpoints = edge.aliases()
            inside = endpoints & in_tree
            outside = endpoints - in_tree
            if len(inside) == 1 and len(outside) == 1:
                if edge.weight > best_weight:
                    best_weight = edge.weight
                    best_vertex = next(iter(outside))
        if best_vertex is None:
            raise AcyclicityError("join graph is disconnected; no spanning tree exists")
        in_tree.add(best_vertex)
        total += best_weight
    return total


def is_maximum_spanning_tree(tree: JoinTree) -> bool:
    """True when ``tree`` is a maximum spanning tree of its join graph."""
    if tree.nodes != frozenset(tree.graph.aliases):
        return False
    return tree.total_weight == maximum_spanning_tree_weight(tree.graph)


def join_tree_from_parent_map(
    graph: JoinGraph,
    root: str,
    parents: Dict[str, str],
) -> JoinTree:
    """Assemble a :class:`JoinTree` from a child->parent mapping."""
    edges = []
    for child, parent in parents.items():
        shared = graph.shared_attributes(child, parent)
        edges.append(TreeEdge(child=child, parent=parent, attributes=shared))
    return JoinTree(root=root, edges=tuple(edges), graph=graph)


def join_tree_from_gyo(graph: JoinGraph) -> JoinTree:
    """Build a join tree directly from a GYO removal sequence.

    Useful as an alternative construction to LargestRoot in tests: for an
    acyclic query both must produce valid join trees (though generally
    different ones).

    Raises
    ------
    AcyclicityError
        If the query is not α-acyclic.
    """
    remaining, sequence = gyo_reduction(graph)
    if len(remaining) > 1:
        raise AcyclicityError(f"query {graph.query.name!r} is cyclic; no join tree exists")
    if len(graph.aliases) == 1:
        return JoinTree(root=graph.aliases[0], edges=(), graph=graph)
    root = next(iter(remaining)) if remaining else sequence[-1][0]
    parents: Dict[str, str] = {}
    # An ear's witness (still present at removal time) becomes its parent.
    for ear, witness in sequence:
        if ear == root:
            continue
        if witness is not None:
            parents[ear] = witness
        else:
            # Ear with no shared attributes (disconnected query component):
            # attach to the root so the structure remains a tree.
            parents[ear] = root
    return join_tree_from_parent_map(graph, root, parents)
