"""The LargestRoot algorithm (Algorithm 1 of the paper).

LargestRoot builds a *maximum spanning tree* of the weighted join graph with
Prim's algorithm, seeded with the largest relation so that the largest
relation becomes the root of the resulting join tree.  By Lemma 3.2 the MST
of an acyclic query's join graph is a join tree, so the transfer schedule
derived from it performs a **full semi-join reduction** — the property the
original Predicate Transfer's Small2Large heuristic lacks.

Two tie-breaking knobs from the paper are represented explicitly:

* when several frontier edges have maximal weight, the edge whose outside
  vertex ``R`` is largest is chosen ("pushes larger relations toward the
  root", minimizing Bloom-filter construction cost);
* the choice of inside vertex ``S`` is unconstrained by the paper; we break
  ties deterministically (smallest alias) by default.

For the Figure 13 experiment the paper replaces Line 3 with a *random* edge
choice while keeping the largest relation at the root;
:func:`largest_root_random` reproduces that variant.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.join_graph import JoinGraph, JoinGraphEdge
from repro.core.join_tree import JoinTree, TreeEdge
from repro.errors import PlanError


@dataclass(frozen=True)
class LargestRootOptions:
    """Tuning knobs for LargestRoot.

    Attributes
    ----------
    prefer_large_outside:
        Tie-break maximal-weight frontier edges by picking the largest
        outside relation (the paper's Line 3 policy).  Disabling this is the
        ablation knob exercised by the Figure 13 style experiments.
    """

    prefer_large_outside: bool = True


def largest_root(
    graph: JoinGraph,
    options: Optional[LargestRootOptions] = None,
    root: Optional[str] = None,
) -> JoinTree:
    """Run Algorithm 1 (LargestRoot) on a join graph.

    Parameters
    ----------
    graph:
        The weighted join graph (must be connected).
    options:
        Tie-breaking options; defaults to the paper's policy.
    root:
        Override the root.  The paper always uses the largest relation; the
        override exists so tests can explore other roots.

    Returns
    -------
    JoinTree
        A maximum spanning tree rooted at the largest relation.  For an
        α-acyclic query this is a join tree (full-reduction guarantee); for a
        cyclic query it is still a spanning tree and the schedule derived
        from it transfers every predicate at least once.

    Raises
    ------
    PlanError
        If the join graph is empty or disconnected.
    """
    options = options or LargestRootOptions()
    aliases = list(graph.aliases)
    if not aliases:
        raise PlanError("cannot run LargestRoot on an empty join graph")
    if not graph.is_connected():
        raise PlanError(
            "LargestRoot requires a connected join graph; "
            "split the query into components and build a join forest instead"
        )
    start = root if root is not None else graph.largest_relation()
    if start not in aliases:
        raise PlanError(f"root {start!r} is not a relation of the join graph")

    in_tree = {start}
    parents: Dict[str, str] = {}
    while len(in_tree) < len(aliases):
        edge, outside = _pick_edge_paper_policy(graph, in_tree, options)
        parents[outside] = edge.other(outside)
        in_tree.add(outside)
    return _assemble(graph, start, parents)


def largest_root_random(
    graph: JoinGraph,
    rng: random.Random,
    root: Optional[str] = None,
) -> JoinTree:
    """The randomized LargestRoot variant used in the Figure 13 experiment.

    Line 3 of Algorithm 1 is replaced by "find *an* edge {R, S} with R
    outside and S inside the tree" chosen uniformly at random among **all**
    frontier edges, while the largest relation stays at the root.  For
    acyclic queries whose edges all have weight 1 (the common case) every
    such tree is still a join tree; with composite-key edges the random
    variant may not be an MST — exactly the degradation the experiment
    studies.
    """
    aliases = list(graph.aliases)
    if not aliases:
        raise PlanError("cannot run LargestRoot on an empty join graph")
    if not graph.is_connected():
        raise PlanError("LargestRoot requires a connected join graph")
    start = root if root is not None else graph.largest_relation()
    in_tree = {start}
    parents: Dict[str, str] = {}
    while len(in_tree) < len(aliases):
        frontier = _frontier_edges(graph, in_tree)
        if not frontier:
            raise PlanError("join graph became disconnected during LargestRoot")
        edge, outside = frontier[rng.randrange(len(frontier))]
        parents[outside] = edge.other(outside)
        in_tree.add(outside)
    return _assemble(graph, start, parents)


# ---------------------------------------------------------------------------
# Internals
# ---------------------------------------------------------------------------
def _frontier_edges(
    graph: JoinGraph, in_tree: set[str]
) -> List[Tuple[JoinGraphEdge, str]]:
    """All edges with exactly one endpoint inside the tree, with the outside vertex."""
    result: List[Tuple[JoinGraphEdge, str]] = []
    for edge in graph.edges:
        endpoints = edge.aliases()
        inside = endpoints & in_tree
        outside = endpoints - in_tree
        if len(inside) == 1 and len(outside) == 1:
            result.append((edge, next(iter(outside))))
    # Deterministic base order so random sampling is reproducible per seed.
    result.sort(key=lambda item: (item[0].left, item[0].right))
    return result


def _pick_edge_paper_policy(
    graph: JoinGraph,
    in_tree: set[str],
    options: LargestRootOptions,
) -> Tuple[JoinGraphEdge, str]:
    """Line 3 of Algorithm 1: maximal weight, tie-break on largest outside relation."""
    frontier = _frontier_edges(graph, in_tree)
    if not frontier:
        raise PlanError("join graph became disconnected during LargestRoot")

    def sort_key(item: Tuple[JoinGraphEdge, str]) -> Tuple:
        edge, outside = item
        size_term = graph.size(outside) if options.prefer_large_outside else 0
        inside = edge.other(outside)
        # Larger weight first, then larger outside relation (the paper's Line 3
        # tie-break), then the smaller inside relation (unspecified by the
        # paper; attaching to the smaller relation yields the deeper tree shown
        # in Figure 1b, filtering irrelevant tuples earlier), then alias order.
        return (-edge.weight, -size_term, graph.size(inside), outside, inside)

    frontier.sort(key=sort_key)
    return frontier[0]


def _assemble(graph: JoinGraph, root: str, parents: Dict[str, str]) -> JoinTree:
    edges = tuple(
        TreeEdge(child=child, parent=parent, attributes=graph.shared_attributes(child, parent))
        for child, parent in parents.items()
    )
    return JoinTree(root=root, edges=edges, graph=graph)
