"""Robustness metrics: the Robustness Factor and related summaries.

The paper quantifies join-order robustness of a query as the **Robustness
Factor (RF)** — the ratio between the maximum and the minimum execution time
over a set of random join orders (200 in the paper's Tables 1 and 2).  A
query is perfectly robust when RF = 1.  The same definition applies to any
cost metric; the reproduction reports RF over wall time *and* over the
deterministic tuple-count cost so results are stable at laptop scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.errors import BenchmarkError


@dataclass(frozen=True)
class RobustnessFactor:
    """Robustness summary of one query under one execution mode."""

    query_name: str
    mode: str
    num_plans: int
    min_cost: float
    max_cost: float
    median_cost: float
    mean_cost: float

    @property
    def factor(self) -> float:
        """max / min cost over the evaluated plans (RF; 1.0 = perfectly robust)."""
        if self.min_cost <= 0:
            return float("inf") if self.max_cost > 0 else 1.0
        return self.max_cost / self.min_cost

    def __repr__(self) -> str:
        return (
            f"RF({self.query_name}, {self.mode}): {self.factor:.2f} "
            f"[{self.min_cost:.3g}, {self.max_cost:.3g}] over {self.num_plans} plans"
        )


def robustness_factor(
    query_name: str,
    mode: str,
    costs: Sequence[float],
) -> RobustnessFactor:
    """Compute the robustness factor from per-plan costs."""
    values = [float(c) for c in costs]
    if not values:
        raise BenchmarkError(f"no plan costs supplied for query {query_name!r}")
    values_sorted = sorted(values)
    n = len(values_sorted)
    median = (
        values_sorted[n // 2]
        if n % 2 == 1
        else 0.5 * (values_sorted[n // 2 - 1] + values_sorted[n // 2])
    )
    return RobustnessFactor(
        query_name=query_name,
        mode=mode,
        num_plans=n,
        min_cost=values_sorted[0],
        max_cost=values_sorted[-1],
        median_cost=median,
        mean_cost=sum(values_sorted) / n,
    )


@dataclass(frozen=True)
class BenchmarkRobustnessSummary:
    """Avg / Min / Max robustness factors over a benchmark (one row of Table 1/2)."""

    benchmark: str
    mode: str
    avg_rf: float
    min_rf: float
    max_rf: float
    num_queries: int

    def as_row(self) -> Dict[str, float]:
        """Row representation used by the report printers."""
        return {"avg": self.avg_rf, "min": self.min_rf, "max": self.max_rf}


def summarize_robustness(
    benchmark: str,
    mode: str,
    factors: Iterable[RobustnessFactor],
) -> BenchmarkRobustnessSummary:
    """Aggregate per-query robustness factors into a Table 1/2 style row."""
    values: List[float] = [f.factor for f in factors]
    if not values:
        raise BenchmarkError(f"no robustness factors supplied for benchmark {benchmark!r}")
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        finite = values
    return BenchmarkRobustnessSummary(
        benchmark=benchmark,
        mode=mode,
        avg_rf=sum(finite) / len(finite),
        min_rf=min(finite),
        max_rf=max(finite),
        num_queries=len(values),
    )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's per-query speedup aggregation)."""
    cleaned = [v for v in values if v > 0]
    if not cleaned:
        raise BenchmarkError("geometric mean requires at least one positive value")
    return math.exp(sum(math.log(v) for v in cleaned) / len(cleaned))


def speedup(baseline_cost: float, new_cost: float) -> float:
    """Speedup of ``new`` over ``baseline`` (> 1 means new is faster/cheaper)."""
    if new_cost <= 0:
        return float("inf") if baseline_cost > 0 else 1.0
    return baseline_cost / new_cost
