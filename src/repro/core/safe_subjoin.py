"""The SafeSubjoin algorithm (Algorithm 2 of the paper) and safe-order checking.

A *subjoin* of an acyclic query is **safe** (Definition 3.3) when its result
on any fully reduced instance is a projection of the final output, so its
size is bounded by the output size.  Lemma 3.7 characterizes safety
structurally: a subjoin is safe iff its relations are connected in *some*
join tree of the full query.

``SafeSubjoin`` tests this by (1) building a maximum spanning tree ``T'`` of
the subjoin's join graph with LargestRoot, (2) extending ``T'`` to a spanning
tree ``T`` of the full query by continuing LargestRoot with the subjoin's
relations pre-seeded, and (3) checking whether ``T`` is a maximum spanning
tree of the full join graph (equivalently, a join tree — Lemma 3.2).

On top of the per-subjoin test, :func:`is_safe_join_order` validates a whole
left-deep or bushy join order by checking every prefix/subtree it
materializes, and γ-acyclic queries short-circuit to "all Cartesian-free
orders are safe" (Theorem 3.6).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.core.join_graph import JoinGraph
from repro.core.join_tree import (
    JoinTree,
    TreeEdge,
    is_gamma_acyclic,
    maximum_spanning_tree_weight,
)
from repro.core.largest_root import LargestRootOptions, _frontier_edges, _pick_edge_paper_policy
from repro.errors import PlanError


def safe_subjoin(graph: JoinGraph, subjoin_aliases: Iterable[str]) -> bool:
    """Algorithm 2: is the subjoin over ``subjoin_aliases`` safe?

    Parameters
    ----------
    graph:
        Join graph of the full (acyclic) query.
    subjoin_aliases:
        The relations of the candidate subjoin.  Must be non-empty, a subset
        of the query's relations, and connected in the join graph (a subjoin
        containing a Cartesian product is never safe and is rejected with
        ``False`` immediately).

    Returns
    -------
    bool
        True iff the subjoin is safe (Lemma 3.7 / Algorithm 2).
    """
    aliases = list(dict.fromkeys(subjoin_aliases))
    if not aliases:
        raise PlanError("a subjoin must contain at least one relation")
    unknown = set(aliases) - set(graph.aliases)
    if unknown:
        raise PlanError(f"subjoin references unknown relations: {sorted(unknown)}")
    if len(aliases) <= 1:
        return True
    if set(aliases) == set(graph.aliases):
        # The full query: safe by definition (its output is the output).
        return True

    subgraph = graph.subgraph(aliases)
    if not subgraph.is_connected():
        # Involves a Cartesian product — never safe.
        return False

    # Step 1: T' <- LargestRoot(G_q')
    sub_tree = _largest_root_on(subgraph)

    # Step 2: continue LargestRoot on the full graph with T' pre-seeded.
    full_tree = _extend_tree(graph, seeded_nodes=set(aliases), seed_edges=sub_tree.edges,
                             root=subgraph.largest_relation())

    # Step 3: T is a join tree of q iff it is a maximum spanning tree of G_q.
    return full_tree.total_weight == maximum_spanning_tree_weight(graph)


def is_safe_join_order(
    graph: JoinGraph,
    join_order: Sequence[str],
    assume_gamma_acyclic: Optional[bool] = None,
) -> bool:
    """Check that every prefix of a left-deep join order is a safe subjoin.

    For a γ-acyclic query every Cartesian-product-free order is safe
    (Theorem 3.6); the check therefore only verifies connectivity of each
    prefix.  Otherwise each prefix of size ≥ 2 (and < full) is tested with
    :func:`safe_subjoin`.

    Parameters
    ----------
    graph:
        Join graph of the full acyclic query.
    join_order:
        Left-deep order of relation aliases.
    assume_gamma_acyclic:
        Skip (or force) the γ-acyclicity test, mainly for testing.
    """
    order = list(join_order)
    if set(order) != set(graph.aliases) or len(order) != len(graph.aliases):
        raise PlanError("join order must be a permutation of the query's relations")
    gamma = is_gamma_acyclic(graph) if assume_gamma_acyclic is None else assume_gamma_acyclic

    joined: set[str] = set()
    for alias in order:
        if joined and not (graph.neighbors(alias) & joined):
            # Cartesian product — unsafe regardless of acyclicity class.
            return False
        joined.add(alias)
        if gamma:
            continue
        if 2 <= len(joined) < len(graph.aliases):
            if not safe_subjoin(graph, joined):
                return False
    return True


def unsafe_prefixes(graph: JoinGraph, join_order: Sequence[str]) -> list[frozenset[str]]:
    """Return the unsafe prefixes of a left-deep join order (empty list = safe).

    Useful for diagnostics: the paper's TPC-DS Q29 discussion identifies
    specific unsafe subjoins of an acyclic-but-not-γ-acyclic query.
    """
    order = list(join_order)
    joined: set[str] = set()
    offenders: list[frozenset[str]] = []
    for alias in order:
        if joined and not (graph.neighbors(alias) & joined):
            offenders.append(frozenset(joined | {alias}))
            joined.add(alias)
            continue
        joined.add(alias)
        if 2 <= len(joined) < len(graph.aliases) and not safe_subjoin(graph, joined):
            offenders.append(frozenset(joined))
    return offenders


# ---------------------------------------------------------------------------
# Internals: LargestRoot restarted from a seeded tree (Algorithm 2, line 2)
# ---------------------------------------------------------------------------
def _largest_root_on(graph: JoinGraph) -> JoinTree:
    """Plain LargestRoot on a (sub)graph, using the paper's tie-breaking."""
    options = LargestRootOptions()
    start = graph.largest_relation()
    in_tree = {start}
    parents: Dict[str, str] = {}
    while len(in_tree) < len(graph.aliases):
        edge, outside = _pick_edge_paper_policy(graph, in_tree, options)
        parents[outside] = edge.other(outside)
        in_tree.add(outside)
    edges = tuple(
        TreeEdge(child=c, parent=p, attributes=graph.shared_attributes(c, p))
        for c, p in parents.items()
    )
    return JoinTree(root=start, edges=edges, graph=graph)


def _extend_tree(
    graph: JoinGraph,
    seeded_nodes: set[str],
    seed_edges: Sequence[TreeEdge],
    root: str,
) -> JoinTree:
    """Continue LargestRoot on the full graph starting from a seeded subtree.

    This is Algorithm 2's modified initialization: ``T <- T'``,
    ``R' <- relations of q'``.
    """
    options = LargestRootOptions()
    in_tree = set(seeded_nodes)
    parents: Dict[str, str] = {e.child: e.parent for e in seed_edges}
    while len(in_tree) < len(graph.aliases):
        frontier = _frontier_edges(graph, in_tree)
        if not frontier:
            raise PlanError("join graph became disconnected while extending the seeded tree")
        edge, outside = _pick_edge_paper_policy(graph, in_tree, options)
        parents[outside] = edge.other(outside)
        in_tree.add(outside)
    # Re-root the combined parent map at `root` (edges in the seed already
    # point toward the subjoin's internal root; nodes added later point
    # toward the seeded component, so `root` keeps no parent).
    edges = tuple(
        TreeEdge(child=c, parent=p, attributes=graph.shared_attributes(c, p))
        for c, p in parents.items()
    )
    return JoinTree(root=root, edges=edges, graph=graph)
