"""The Small2Large transfer-graph heuristic of the original Predicate Transfer.

The original Predicate Transfer paper (Yang et al., CIDR 2024) orients every
edge of the (undirected) join graph from the *smaller* relation to the
*larger* one, producing a DAG (the *transfer graph*).  The forward pass then
follows the DAG edges in topological order and the backward pass reverses
them.

As Section 3.1 of the RPT paper shows (Figure 2), this heuristic does **not**
guarantee a full reduction for acyclic queries: two relations that only meet
"sideways" through a shared smaller neighbour never exchange filter
information.  The module exists so the reproduction can run the original PT
as a baseline and show exactly where it falls short (Figure 8, Appendix B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.join_graph import JoinGraph
from repro.errors import PlanError


@dataclass(frozen=True)
class TransferGraphEdge:
    """A directed edge of a transfer graph: filters flow ``source -> target``."""

    source: str
    target: str
    attributes: Tuple[str, ...]

    def __repr__(self) -> str:
        return f"{self.source} => {self.target} [{','.join(self.attributes)}]"


@dataclass
class TransferGraph:
    """A DAG over the query's relations describing Bloom-filter flow."""

    graph: JoinGraph
    edges: Tuple[TransferGraphEdge, ...]

    def topological_order(self) -> Tuple[str, ...]:
        """A topological order of the relations (sources before targets).

        Ties are broken by ascending relation size and then alias, which
        matches the original PT's intent of letting small, selective tables
        transfer first.
        """
        indegree: Dict[str, int] = {alias: 0 for alias in self.graph.aliases}
        for edge in self.edges:
            indegree[edge.target] += 1
        ready = sorted(
            (a for a, d in indegree.items() if d == 0),
            key=lambda a: (self.graph.size(a), a),
        )
        order: List[str] = []
        remaining = dict(indegree)
        while ready:
            current = ready.pop(0)
            order.append(current)
            for edge in self.edges:
                if edge.source == current:
                    remaining[edge.target] -= 1
                    if remaining[edge.target] == 0:
                        ready.append(edge.target)
            ready.sort(key=lambda a: (self.graph.size(a), a))
        if len(order) != len(self.graph.aliases):
            raise PlanError("transfer graph contains a cycle; Small2Large produced an invalid DAG")
        return tuple(order)

    def outgoing(self, alias: str) -> Tuple[TransferGraphEdge, ...]:
        """Edges whose source is ``alias``."""
        return tuple(e for e in self.edges if e.source == alias)

    def incoming(self, alias: str) -> Tuple[TransferGraphEdge, ...]:
        """Edges whose target is ``alias``."""
        return tuple(e for e in self.edges if e.target == alias)


def small2large(graph: JoinGraph) -> TransferGraph:
    """Build the Small2Large transfer graph.

    Every join-graph edge is directed from the smaller relation to the
    larger one (ties broken by alias so the orientation is deterministic and
    acyclic).
    """
    edges: List[TransferGraphEdge] = []
    for edge in graph.edges:
        left_size = graph.size(edge.left)
        right_size = graph.size(edge.right)
        if (left_size, edge.left) <= (right_size, edge.right):
            source, target = edge.left, edge.right
        else:
            source, target = edge.right, edge.left
        edges.append(TransferGraphEdge(source=source, target=target, attributes=edge.attributes))
    return TransferGraph(graph=graph, edges=tuple(edges))
