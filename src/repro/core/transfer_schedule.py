"""Transfer schedules: the ordered semi-join (Bloom-filter) steps of the transfer phase.

A transfer schedule is a list of :class:`TransferStep` objects.  Each step
``target ⋉ source`` means: build a Bloom filter on ``source``'s current
(already reduced) values of the shared join attributes and use it to filter
``target``.  The schedule has a *forward pass* (filters flow leaf→root of the
join tree, or along the transfer-graph DAG for the original PT) and a
*backward pass* (the reverse), exactly as in the Yannakakis semi-join phase.

Schedules can be derived from:

* a :class:`~repro.core.join_tree.JoinTree` produced by LargestRoot — this is
  Robust Predicate Transfer and guarantees a full reduction for α-acyclic
  queries;
* a :class:`~repro.core.small2large.TransferGraph` produced by Small2Large —
  this is the original Predicate Transfer and may under-reduce.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.join_tree import JoinTree
from repro.core.small2large import TransferGraph


class TransferPass(enum.Enum):
    """Which pass of the transfer phase a step belongs to."""

    FORWARD = "forward"
    BACKWARD = "backward"


@dataclass(frozen=True)
class TransferStep:
    """One semi-join reduction ``target ⋉ source`` realized with a Bloom filter.

    Attributes
    ----------
    source:
        The relation whose join-key values populate the Bloom filter.
    target:
        The relation filtered by probing the Bloom filter.
    attributes:
        The shared attribute classes the filter is built/probed on.
    pass_:
        Forward or backward pass.
    """

    source: str
    target: str
    attributes: Tuple[str, ...]
    pass_: TransferPass

    def __repr__(self) -> str:
        arrow = "=>" if self.pass_ is TransferPass.FORWARD else "<="
        return f"{self.target} ⋉ {self.source} ({self.pass_.value}) [{','.join(self.attributes)}]"


@dataclass(frozen=True)
class TransferSchedule:
    """An ordered sequence of transfer steps (forward pass then backward pass)."""

    steps: Tuple[TransferStep, ...]

    @property
    def forward_steps(self) -> Tuple[TransferStep, ...]:
        """Steps belonging to the forward pass, in execution order."""
        return tuple(s for s in self.steps if s.pass_ is TransferPass.FORWARD)

    @property
    def backward_steps(self) -> Tuple[TransferStep, ...]:
        """Steps belonging to the backward pass, in execution order."""
        return tuple(s for s in self.steps if s.pass_ is TransferPass.BACKWARD)

    @property
    def num_steps(self) -> int:
        """Total number of semi-join steps."""
        return len(self.steps)

    def relations_reduced(self) -> frozenset[str]:
        """Relations that appear as the target of at least one step."""
        return frozenset(s.target for s in self.steps)

    @property
    def has_backward_pass(self) -> bool:
        """True when the schedule contains at least one backward-pass step."""
        return any(s.pass_ is TransferPass.BACKWARD for s in self.steps)

    def sources_of_pass(self, pass_: TransferPass) -> frozenset[str]:
        """Relations serving as the build side of at least one step of ``pass_``.

        Schedule-level introspection mirroring the rule the adaptive
        transfer controller applies over the *compiled* ops (it derives the
        backward build sides from the plan itself): the backward pass is
        skippable wholesale exactly when the forward pass left every
        backward-pass source (effectively) unreduced.
        """
        return frozenset(s.source for s in self.steps if s.pass_ is pass_)

    def without_backward_pass(self) -> "TransferSchedule":
        """Drop the backward pass (the §4.3 optimization when the join order
        aligns with the transfer order)."""
        return TransferSchedule(steps=self.forward_steps)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)


def schedule_from_tree(tree: JoinTree) -> TransferSchedule:
    """Derive the RPT transfer schedule from a join tree.

    Forward pass: process nodes in post-order (children before parents); for
    every non-root node X emit ``parent(X) ⋉ X``.  Processing X's step only
    after all of X's children have emitted theirs guarantees X's Bloom filter
    reflects X already reduced by its own subtree.

    Backward pass: process nodes in level order from the root; for every
    non-root node X emit ``X ⋉ parent(X)``, so X is reduced by a parent that
    has itself already been backward-reduced.
    """
    steps: List[TransferStep] = []
    for node in tree.post_order():
        if node == tree.root:
            continue
        edge = tree.edge_to_parent(node)
        steps.append(
            TransferStep(
                source=node,
                target=edge.parent,
                attributes=edge.attributes,
                pass_=TransferPass.FORWARD,
            )
        )
    for node in tree.level_order():
        if node == tree.root:
            continue
        edge = tree.edge_to_parent(node)
        steps.append(
            TransferStep(
                source=edge.parent,
                target=node,
                attributes=edge.attributes,
                pass_=TransferPass.BACKWARD,
            )
        )
    return TransferSchedule(steps=tuple(steps))


def schedule_from_transfer_graph(transfer_graph: TransferGraph) -> TransferSchedule:
    """Derive the original-PT transfer schedule from a Small2Large DAG.

    Forward pass: visit relations in topological order; each relation is
    reduced by the Bloom filters of all of its DAG predecessors.  Backward
    pass: visit relations in reverse topological order; each relation is
    reduced by its DAG successors.
    """
    order = transfer_graph.topological_order()
    steps: List[TransferStep] = []
    for target in order:
        for edge in sorted(transfer_graph.incoming(target), key=lambda e: e.source):
            steps.append(
                TransferStep(
                    source=edge.source,
                    target=target,
                    attributes=edge.attributes,
                    pass_=TransferPass.FORWARD,
                )
            )
    for target in reversed(order):
        for edge in sorted(transfer_graph.outgoing(target), key=lambda e: e.target):
            steps.append(
                TransferStep(
                    source=edge.target,
                    target=target,
                    attributes=edge.attributes,
                    pass_=TransferPass.BACKWARD,
                )
            )
    return TransferSchedule(steps=tuple(steps))
