"""Engine façade: the Database entry point and execution modes."""

from repro.engine.database import Database, ExecutionOptions, ExplainResult, QueryResult
from repro.engine.modes import ExecutionMode

__all__ = ["Database", "ExecutionMode", "ExecutionOptions", "ExplainResult", "QueryResult"]
