"""Engine façade: the Database entry point, execution modes, and serving."""

from repro.engine.database import (
    Database,
    ExecutionOptions,
    ExplainAnalyzeResult,
    ExplainResult,
    QueryResult,
)
from repro.engine.modes import ExecutionMode
from repro.engine.plancache import PlanCache, PlanCacheKey
from repro.engine.server import Server, ServerConfig, ServerStats
from repro.engine.session import Session

__all__ = [
    "Database",
    "ExecutionMode",
    "ExecutionOptions",
    "ExplainAnalyzeResult",
    "ExplainResult",
    "PlanCache",
    "PlanCacheKey",
    "QueryResult",
    "Server",
    "ServerConfig",
    "ServerStats",
    "Session",
]
