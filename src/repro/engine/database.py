"""The ``Database`` façade: the public entry point of the library.

A :class:`Database` owns a catalog of tables and executes
:class:`~repro.query.QuerySpec` queries under any of the
:class:`~repro.engine.modes.ExecutionMode` strategies, optionally with an
explicit join plan (the robustness experiments supply random plans) or with
the built-in optimizer's plan.

Execution is *compile-then-run*: every mode compiles
``(QuerySpec, JoinPlan, TransferSchedule)`` into one
:class:`~repro.plan.physical.PhysicalPlan` — a flat list of typed ops
spanning scan, transfer, and join phases — which the backend-pluggable
:class:`~repro.exec.pipeline.PipelineExecutor` runs.  The compiled plan and
its uniform per-op trace are exposed on the :class:`QueryResult`.

Typical usage::

    db = Database()
    db.register_dataframe("orders", {"o_orderkey": [...], ...}, primary_key=["o_orderkey"])
    result = db.execute(query, mode=ExecutionMode.RPT)
    print(result.aggregates, result.stats.total_intermediate_rows)
    print(result.physical_plan.describe())
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Sequence

import numpy as np

from repro.bloom.registry import BloomFilterRegistry
from repro.core.join_graph import JoinGraph
from repro.core.join_tree import JoinTree, is_alpha_acyclic, is_gamma_acyclic
from repro.core.largest_root import LargestRootOptions, largest_root
from repro.core.safe_subjoin import is_safe_join_order
from repro.core.small2large import small2large
from repro.core.transfer_schedule import (
    TransferSchedule,
    schedule_from_transfer_graph,
    schedule_from_tree,
)
from repro.engine.modes import ExecutionConfig, ExecutionMode
from repro.errors import (
    BackendUnavailable,
    FaultInjected,
    PlanError,
    QueryCancelled,
    QueryTimeout,
    ReproError,
)
from repro.exec import faults
from repro.exec.faults import CancelToken
from repro.exec.hashcache import HashCache
from repro.exec.join_phase import JoinPhaseOptions
from repro.exec.pipeline import PipelineExecutor, PipelineOptions, make_backend
from repro.exec.relation import BoundRelation
from repro.exec.spill import SpillManager
from repro.exec.statistics import ExecutionStats, OpStats
from repro.exec.transfer import TransferOptions
from repro.obs.trace import Span, Tracer
from repro.storage.artifacts import (
    DEFAULT_ARTIFACT_BUDGET_BYTES,
    ArtifactCache,
    mask_fingerprint,
)
from repro.storage.buffer import MemoryGovernor
from repro.optimizer.cardinality import CardinalityEstimator, EstimationErrorModel
from repro.optimizer.join_order import JoinOrderOptimizer, JoinOrderOptions
from repro.plan.join_plan import JoinPlan, validate_plan_for_query
from repro.plan.physical import PhysicalPlan, compile_execution
from repro.query import QuerySpec
from repro.sql import compile_statement
from repro.storage.catalog import Catalog, CatalogSnapshot
from repro.storage.datatypes import DataType
from repro.storage.table import ForeignKey, Table


@dataclass
class QueryResult:
    """The outcome of one query execution."""

    query: QuerySpec
    mode: ExecutionMode
    plan: JoinPlan
    aggregates: Dict[str, float]
    stats: ExecutionStats
    join_tree: Optional[JoinTree] = None
    schedule: Optional[TransferSchedule] = None
    relations: Dict[str, BoundRelation] = field(default_factory=dict)
    #: The compiled physical plan the execution ran through.
    physical_plan: Optional[PhysicalPlan] = None
    #: The resolved runtime configuration the execution ran under.
    execution_config: Optional[ExecutionConfig] = None
    #: Root of the hierarchical span tree (query -> phase -> op -> batch)
    #: when tracing was enabled (``ExecutionConfig.tracing`` / REPRO_TRACE);
    #: ``None`` otherwise.  Render with :func:`repro.obs.export.render_timeline`.
    trace: Optional[Span] = None

    @property
    def output_rows(self) -> int:
        """Number of joined tuples in the final result (before aggregation)."""
        return self.stats.output_rows

    @property
    def op_stats(self):
        """Per-op statistics of the compiled plan (uniform across all modes)."""
        return self.stats.op_stats


@dataclass
class ExplainResult:
    """The outcome of planning a query *without* executing it.

    Produced by :meth:`Database.explain` / :meth:`Database.explain_sql` and
    by ``EXPLAIN SELECT`` statements through :meth:`Database.sql`.  The
    ``stats`` carry one zero-cost :class:`~repro.exec.statistics.OpStats`
    entry per compiled op, so :func:`repro.bench.reporting.format_op_traces`
    renders an EXPLAIN the same way it renders an executed trace.
    """

    query: QuerySpec
    mode: ExecutionMode
    plan: JoinPlan
    physical_plan: PhysicalPlan
    stats: ExecutionStats
    join_tree: Optional[JoinTree] = None
    schedule: Optional[TransferSchedule] = None
    execution_config: Optional[ExecutionConfig] = None

    @property
    def op_stats(self):
        """Static per-op entries of the compiled plan (zero rows/seconds)."""
        return self.stats.op_stats

    def describe(self) -> str:
        """The compiled physical plan, one op per line."""
        return self.physical_plan.describe()

    def render(self) -> str:
        """The formatted op trace (what ``EXPLAIN`` prints)."""
        # Imported lazily: reporting is a leaf module, but the bench package
        # initializer pulls in the harness (which imports this module).
        from repro.bench.reporting import format_op_traces

        return format_op_traces({self.mode: self})


@dataclass
class ExplainAnalyzeResult:
    """The outcome of ``EXPLAIN ANALYZE SELECT ...`` through :meth:`Database.sql`.

    Unlike plain ``EXPLAIN``, the query *is* executed: ``result`` is the full
    :class:`QueryResult`, and :meth:`render` prints the compiled plan
    annotated with the execution's actual per-op rows, seconds, morsel
    counts and skip/degradation markers, followed by the hierarchical span
    timeline (``EXPLAIN ANALYZE`` always runs traced).
    """

    result: QueryResult

    @property
    def query(self) -> QuerySpec:
        return self.result.query

    @property
    def mode(self) -> ExecutionMode:
        return self.result.mode

    @property
    def plan(self) -> JoinPlan:
        return self.result.plan

    @property
    def aggregates(self) -> Dict[str, float]:
        return self.result.aggregates

    @property
    def stats(self) -> ExecutionStats:
        return self.result.stats

    @property
    def op_stats(self):
        """Executed per-op statistics (actual rows, seconds, markers)."""
        return self.result.stats.op_stats

    @property
    def trace(self):
        """Root span of the execution's trace tree."""
        return self.result.trace

    def render(self) -> str:
        """The annotated plan (what ``EXPLAIN ANALYZE`` prints)."""
        from repro.bench.reporting import format_op_traces
        from repro.obs.export import render_timeline

        parts = [format_op_traces({self.result.mode: self.result})]
        if self.result.trace is not None:
            parts.append("")
            parts.append(render_timeline(self.result.trace))
        return "\n".join(parts)


@dataclass
class _PreparedExecution:
    """Everything :meth:`Database.execute` and :meth:`Database.explain` share:
    the planned, compiled — but not yet executed — query."""

    plan: JoinPlan
    graph: JoinGraph
    join_tree: Optional[JoinTree]
    schedule: Optional[TransferSchedule]
    masks: Dict[str, np.ndarray]
    physical: PhysicalPlan
    config: ExecutionConfig
    #: alias -> rows the fused filter kernel short-circuited (aliases whose
    #: predicate was evaluated fused; empty when fusion is off/inapplicable).
    fused: Dict[str, int] = field(default_factory=dict)
    #: alias -> (blocks_skipped, blocks_total, encoded_bytes) for predicates
    #: evaluated with zone-map block skipping (block-encoded runs only).
    zone_stats: Dict[str, tuple[int, int, int]] = field(default_factory=dict)


@dataclass(frozen=True)
class ExecutionOptions:
    """Per-execution tuning knobs."""

    transfer: TransferOptions = field(default_factory=TransferOptions)
    join: JoinPhaseOptions = field(default_factory=JoinPhaseOptions)
    largest_root: LargestRootOptions = field(default_factory=LargestRootOptions)
    optimizer: JoinOrderOptions = field(default_factory=JoinOrderOptions)
    estimation_error: EstimationErrorModel = field(default_factory=EstimationErrorModel)
    #: §4.3: skip the backward pass when the join order aligns with the transfer order.
    skip_backward_if_aligned: bool = False
    #: Have the engine verify that the chosen join order is safe (SafeSubjoin).
    verify_safe_join_order: bool = False
    #: Runtime configuration (backend, threads, memory budget, partitioning).
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
    #: Legacy shorthand for ``execution.backend`` (``"serial"``, ``"chunked"``,
    #: or ``"parallel"``); ``None`` defers to ``execution`` / the environment.
    backend: Optional[str] = None
    #: Legacy shorthand for ``execution.chunk_size`` (morsel granularity).
    chunk_size: Optional[int] = None
    #: Pre-created :class:`~repro.exec.faults.CancelToken` for cooperative
    #: cancellation from another thread (``token.cancel()``); when ``None``
    #: a token is created internally iff ``execution.timeout_seconds`` is set.
    cancel: Optional[CancelToken] = None
    #: Caller-supplied :class:`~repro.obs.trace.Tracer` — lets a server or
    #: benchmark collect spans from several executions under one root.  When
    #: ``None`` a tracer is created internally iff ``execution.tracing``.
    tracer: Optional[Tracer] = None

    def resolved_execution(self) -> ExecutionConfig:
        """The effective :class:`ExecutionConfig` (legacy fields + env applied)."""
        config = self.execution
        if self.backend is not None:
            config = replace(config, backend=self.backend)
        if self.chunk_size is not None:
            config = replace(config, chunk_size=self.chunk_size)
        return config.resolved()


class Database:
    """An in-process analytical database instance (the DuckDB stand-in)."""

    def __init__(self, catalog: Optional[Catalog] = None) -> None:
        self.catalog = catalog or Catalog()
        # Cross-query artifact cache, created lazily on the first execution
        # configured with ``artifact_cache=True`` and shared by every later
        # one (that sharing *is* the repeated-traffic win).
        self._artifact_cache: Optional[ArtifactCache] = None
        self._artifact_cache_init_lock = threading.Lock()
        # Shared-memory column arena, created lazily the first time a
        # process-backend execution needs zero-copy base columns and shared
        # across executions (publishing a segment per query would erase the
        # win).  Segments are unlinked on table replace, close(), and GC.
        self._shm_arena = None
        self._shm_arena_init_lock = threading.Lock()
        self._closed = False
        # In-flight execution tracking: close() drains active queries
        # before unlinking shared resources, and new admissions after
        # close() raise immediately.
        self._state = threading.Condition()
        self._active = 0
        # Release-driven invalidation: when the last snapshot pinning a
        # replaced table version lets go, reclaim that version's cached
        # artifacts and shared-memory segments.  (When nothing pins the old
        # version, the catalog fires this synchronously from register —
        # the old eager-invalidation behaviour.)
        self.catalog.add_release_hook(self._on_version_released)

    def _on_version_released(self, name: str, version: int) -> None:
        cache = self._artifact_cache
        if cache is not None:
            cache.invalidate_version(name, version)
        arena = self._shm_arena
        if arena is not None:
            arena.invalidate_version(name, version)

    def _begin_execution(self) -> None:
        with self._state:
            self._ensure_open()
            self._active += 1

    def _end_execution(self) -> None:
        with self._state:
            self._active -= 1
            self._state.notify_all()

    @property
    def active_queries(self) -> int:
        """Number of queries currently executing (any thread)."""
        with self._state:
            return self._active

    @property
    def artifact_cache(self) -> Optional[ArtifactCache]:
        """The database's cross-query artifact cache (None until first used)."""
        return self._artifact_cache

    def _ensure_artifact_cache(self, config: ExecutionConfig) -> ArtifactCache:
        with self._artifact_cache_init_lock:
            if self._artifact_cache is None:
                budget = config.artifact_cache_budget_bytes or DEFAULT_ARTIFACT_BUDGET_BYTES
                self._artifact_cache = ArtifactCache(budget_bytes=budget)
            elif (
                config.artifact_cache_budget_bytes is not None
                and config.artifact_cache_budget_bytes != self._artifact_cache.budget_bytes
            ):
                # An explicitly configured budget applies to the shared
                # cache rather than being silently ignored.
                self._artifact_cache.resize(config.artifact_cache_budget_bytes)
            return self._artifact_cache

    @property
    def shm_arena(self):
        """The shared-memory column arena (None until a process-backend run)."""
        return self._shm_arena

    def _ensure_shm_arena(self):
        # Imported lazily: the storage shm layer is only needed by
        # process-backend executions.
        from repro.storage.shm import SharedColumnArena

        with self._shm_arena_init_lock:
            if self._shm_arena is None:
                self._shm_arena = SharedColumnArena(self.catalog)
            return self._shm_arena

    def close(self) -> None:
        """Release engine-owned shared resources; idempotent.

        Unlinks this database's shared-memory segments and drains the
        module-shared worker-process pool (if one was ever started).  Only
        needed when a database outlives its process-backend executions and
        the resources should be returned before interpreter exit (``atexit``
        hooks reclaim anything still live either way).  Executing queries
        after ``close()`` raises :class:`~repro.errors.ReproError`.

        Safe to call while queries are in flight on other threads: close
        first stops new admissions, then *drains* — waits for every active
        execution to finish — before unlinking segments or shutting the
        worker pool down, so a racing query never loses its columns
        mid-run.  (To cut queries short instead of waiting, cancel their
        tokens first — e.g. ``Server.close`` does.)  Every concurrent
        ``close()`` call drains; only the first releases resources.
        """
        with self._state:
            first = not self._closed
            self._closed = True
            while self._active:
                self._state.wait()
        if not first:
            return
        if self._shm_arena is not None:
            self._shm_arena.close()
        # Imported lazily, and only if the process backend was ever used —
        # close() must not be the thing that first imports the worker module.
        import sys

        process_module = sys.modules.get("repro.exec.process")
        if process_module is not None:
            process_module.shutdown_workers()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def _ensure_open(self) -> None:
        if self._closed:
            raise ReproError(
                "database is closed; create a new Database to execute queries"
            )

    # ------------------------------------------------------------------
    # Table registration
    # ------------------------------------------------------------------
    def register_table(self, table: Table, replace: bool = False) -> None:
        """Register a pre-built :class:`Table`.

        Replacing a table never tears an in-flight query: executions pin a
        catalog snapshot, so a replaced version's cached artifacts and
        shared-memory segments are reclaimed through the catalog's release
        hooks — immediately when nothing pins the old version, otherwise
        when its last reader releases it.
        """
        self.catalog.register(table, replace=replace)

    def register_dataframe(
        self,
        name: str,
        data: Mapping[str, Sequence[Any]],
        dtypes: Optional[Mapping[str, DataType]] = None,
        primary_key: Sequence[str] = (),
        foreign_keys: Sequence[ForeignKey] = (),
        replace: bool = False,
    ) -> Table:
        """Create a table from a mapping of column name to values and register it."""
        table = Table.from_dict(
            name,
            data,
            dtypes=dtypes,
            primary_key=primary_key,
            foreign_keys=foreign_keys,
        )
        self.register_table(table, replace=replace)
        return table

    def table(self, name: str) -> Table:
        """Return a registered table."""
        return self.catalog.table(name)

    # ------------------------------------------------------------------
    # Planning helpers
    # ------------------------------------------------------------------
    def filter_masks(self, query: QuerySpec) -> Dict[str, np.ndarray]:
        """Evaluate every base-table predicate of ``query`` exactly once.

        The returned alias -> boolean-mask mapping feeds both the join-graph
        cardinalities and the scan's ``FilterPush`` ops, so a predicate is
        never evaluated twice per execution.
        """
        return self._evaluate_filters(query, fuse=False)[0]

    def _evaluate_filters(
        self,
        query: QuerySpec,
        fuse: bool,
        stats: Optional[ExecutionStats] = None,
        encodings: bool = False,
        catalog: Optional[Any] = None,
    ) -> tuple[Dict[str, np.ndarray], Dict[str, int], Dict[str, tuple[int, int, int]]]:
        """:meth:`filter_masks`, optionally through fused conjunction kernels.

        With ``fuse`` on, each conjunctive predicate that
        :func:`repro.expr.fusion.fuse_conjunction` accepts runs as a single
        short-circuiting kernel (bit-identical mask); the second mapping
        records the rows each fused kernel short-circuited, per alias, and
        ``stats`` (when given) accumulates the fusion counters.

        With ``encodings`` on, supported predicates additionally run with
        zone-map block skipping — pruned blocks feed the fused kernel's
        initial selection, or an unfused predicate is evaluated entirely in
        code space (:mod:`repro.expr.codespace`; string comparisons become
        integer threshold tests on dictionary codes).  Every mask stays
        bit-identical to plain evaluation; the third mapping records per
        alias how many blocks were skipped and how many encoded bytes the
        filter read.
        """
        # Imported lazily: the expression package imports the kernel module,
        # which this engine module's package initializer already pulls in.
        from repro.expr.fusion import fuse_conjunction

        catalog = catalog if catalog is not None else self.catalog
        store = catalog.encodings if encodings else None
        if store is not None:
            from repro.expr import codespace

        def evaluate_alias(ref, table, active_store) -> None:
            if fuse:
                kernel = fuse_conjunction(ref.filter)
                if kernel is not None:
                    selection = None
                    if active_store is not None:
                        selection = codespace.block_selection(ref.filter, table, active_store)
                    if selection is not None:
                        mask, short_circuited = kernel.evaluate(
                            table, block_selection=selection
                        )
                        zone_stats[ref.alias] = (
                            selection.blocks_skipped,
                            selection.num_blocks,
                            codespace.encoded_bytes_touched(ref.filter, table, active_store),
                        )
                    else:
                        mask, short_circuited = kernel.evaluate(table)
                    masks[ref.alias] = np.asarray(mask, dtype=bool)
                    fused[ref.alias] = short_circuited
                    if stats is not None:
                        stats.fused_exprs += 1
                        stats.fused_rows_short_circuited += short_circuited
                    return
            if active_store is not None:
                result = codespace.evaluate(ref.filter, table, active_store)
                if result is not None:
                    masks[ref.alias] = np.asarray(result.mask, dtype=bool)
                    zone_stats[ref.alias] = (
                        result.blocks_skipped,
                        result.blocks_total,
                        codespace.encoded_bytes_touched(ref.filter, table, active_store),
                    )
                    return
            masks[ref.alias] = np.asarray(ref.filter.evaluate(table), dtype=bool)

        masks: Dict[str, np.ndarray] = {}
        fused: Dict[str, int] = {}
        zone_stats: Dict[str, tuple[int, int, int]] = {}
        for ref in query.relations:
            if ref.filter is None:
                continue
            table = catalog.table(ref.table)
            if store is None:
                evaluate_alias(ref, table, None)
                continue
            try:
                evaluate_alias(ref, table, store)
            except FaultInjected:
                # The encoded representation failed to read (injected
                # column.decode fault): degrade this alias to plain raw
                # evaluation — the mask is bit-identical, only the block
                # skipping and code-space kernels are lost.
                evaluate_alias(ref, table, None)
                if stats is not None:
                    stats.record_degradation(f"column.decode:{ref.alias}->raw")
        return masks, fused, zone_stats

    def join_graph(
        self,
        query: QuerySpec,
        use_filtered_sizes: bool = True,
        masks: Optional[Mapping[str, np.ndarray]] = None,
        catalog: Optional[Any] = None,
    ) -> JoinGraph:
        """Build the join graph of a query with (filtered) relation cardinalities.

        ``masks`` — precomputed base-filter masks from :meth:`filter_masks` —
        avoids re-evaluating the predicates for the cardinalities.
        ``catalog`` may be a pinned :class:`~repro.storage.catalog.CatalogSnapshot`.
        """
        catalog = catalog if catalog is not None else self.catalog
        sizes: Dict[str, int] = {}
        for ref in query.relations:
            table = catalog.table(ref.table)
            if use_filtered_sizes and ref.filter is not None:
                if masks is not None and ref.alias in masks:
                    sizes[ref.alias] = int(masks[ref.alias].sum())
                else:
                    sizes[ref.alias] = int(ref.filter.evaluate(table).sum())
            else:
                sizes[ref.alias] = table.num_rows
        return JoinGraph.from_query(query, relation_sizes=sizes)

    def optimizer_plan(
        self,
        query: QuerySpec,
        options: Optional[ExecutionOptions] = None,
        graph: Optional[JoinGraph] = None,
        catalog: Optional[Any] = None,
    ) -> JoinPlan:
        """The join plan chosen by the built-in cost-based optimizer."""
        options = options or ExecutionOptions()
        catalog = catalog if catalog is not None else self.catalog
        graph = graph or self.join_graph(query, catalog=catalog)
        bounds = None
        if options.resolved_execution().encodings:
            bounds = self._zone_row_bounds(query, catalog=catalog)
        estimator = CardinalityEstimator(
            catalog,
            query,
            graph,
            error_model=options.estimation_error,
            rows_upper_bounds=bounds,
        )
        return JoinOrderOptimizer(graph, estimator, options.optimizer).optimize()

    def _zone_row_bounds(
        self, query: QuerySpec, catalog: Optional[Any] = None
    ) -> Dict[str, int]:
        """Hard per-alias row bounds on base predicates, from zone maps alone.

        A bound of 0 means every block's ``[min, max]`` interval provably
        misses the predicate — the estimator then sees an empty relation
        *before* execution.  Aliases whose predicate shape is unsupported
        are simply absent.
        """
        from repro.expr import codespace

        catalog = catalog if catalog is not None else self.catalog
        store = catalog.encodings
        bounds: Dict[str, int] = {}
        for ref in query.relations:
            if ref.filter is None:
                continue
            bound = codespace.rows_upper_bound(
                ref.filter, catalog.table(ref.table), store
            )
            if bound is not None:
                bounds[ref.alias] = bound
        return bounds

    def is_acyclic(self, query: QuerySpec) -> bool:
        """True when the query is α-acyclic."""
        return is_alpha_acyclic(self.join_graph(query, use_filtered_sizes=False))

    def is_gamma_acyclic(self, query: QuerySpec) -> bool:
        """True when the query is γ-acyclic."""
        return is_gamma_acyclic(self.join_graph(query, use_filtered_sizes=False))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        query: QuerySpec,
        mode: ExecutionMode = ExecutionMode.RPT,
        plan: Optional[JoinPlan] = None,
        options: Optional[ExecutionOptions] = None,
        snapshot: Optional[CatalogSnapshot] = None,
    ) -> QueryResult:
        """Execute ``query`` under ``mode``.

        Parameters
        ----------
        query:
            The declarative query.
        mode:
            Execution strategy (baseline, Bloom join, PT, RPT, Yannakakis).
        plan:
            Explicit join-phase plan.  When omitted the built-in optimizer's
            plan is used — this is the paper's "optimizer's plan"
            configuration.
        options:
            Tuning knobs; defaults follow the paper (2% FPR, pruning on).
        snapshot:
            A pinned :class:`~repro.storage.catalog.CatalogSnapshot` to
            execute against (MVCC-lite isolation: a concurrent
            ``register_table(replace=True)`` cannot tear this run).  When
            omitted the execution pins — and releases — its own snapshot;
            a caller-supplied snapshot stays pinned for the caller to
            release.
        """
        options = options or ExecutionOptions()
        self._begin_execution()
        owned: Optional[CatalogSnapshot] = None
        try:
            if snapshot is None:
                owned = snapshot = self.catalog.snapshot(
                    ref.table for ref in query.relations
                )
            stats = ExecutionStats(query_name=query.name, mode=mode.value)
            # An explicit per-execution fault plan overrides the process-global
            # injector for the duration of this call (the env-driven plan, when
            # any, is restored afterwards by re-reading REPRO_FAULTS lazily).
            scoped_faults = False
            config_probe = options.resolved_execution()
            if config_probe.faults is not None:
                faults.configure(config_probe.faults)
                scoped_faults = True
            tracer = options.tracer
            if tracer is None and config_probe.tracing:
                tracer = Tracer()
            query_span = None
            if tracer is not None:
                query_span = tracer.start(
                    query.name or "query",
                    "query",
                    mode=mode.value,
                    backend=config_probe.backend,
                )
            try:
                return self._execute_configured(
                    query, mode, plan, options, stats, snapshot, tracer=tracer
                )
            except (QueryTimeout, QueryCancelled) as error:
                # The typed deadline/cancel errors carry the partial statistics
                # of the aborted run.
                error.stats = stats
                raise
            finally:
                if query_span is not None:
                    # Exception-safe: finishing the root unwinds any spans an
                    # aborted run left open, stamping their ends.
                    tracer.finish(query_span)
                if scoped_faults:
                    faults.clear()
        finally:
            if owned is not None:
                owned.release()
            self._end_execution()

    def _execute_configured(
        self,
        query: QuerySpec,
        mode: ExecutionMode,
        plan: Optional[JoinPlan],
        options: ExecutionOptions,
        stats: ExecutionStats,
        snapshot: CatalogSnapshot,
        tracer: Optional[Tracer] = None,
    ) -> QueryResult:
        plan_span = tracer.start("plan", "phase") if tracer is not None else None
        prep = self._prepare(query, mode, plan, options, stats, catalog=snapshot)
        if plan_span is not None:
            tracer.finish(plan_span, ops=len(prep.physical.ops))
        plan, graph, schedule = prep.plan, prep.graph, prep.schedule
        join_tree, masks, physical, config = prep.join_tree, prep.masks, prep.physical, prep.config
        spill = SpillManager()
        governor = MemoryGovernor(config.memory_budget_bytes, spill_handler=spill)
        backend = self._backend_ladder(config, stats)
        token = options.cancel
        if token is None and config.timeout_seconds is not None:
            token = CancelToken(config.timeout_seconds)
        if token is not None:
            backend.cancel = token
        # Probe-shipping backends read base columns through the database's
        # shared-memory arena (segments persist across queries; table
        # replace and close() unlink them).
        arena = self._ensure_shm_arena() if getattr(backend, "ships_probes", False) else None
        if arena is not None and hasattr(backend, "arena"):
            # Crash recovery re-verifies published segments after a pool
            # respawn (see ProcessBackend._run_morsels).
            backend.arena = arena
        artifact_cache = None
        fingerprints = None
        table_versions = None
        if config.artifact_cache:
            artifact_cache = self._ensure_artifact_cache(config)
            fingerprints = {
                ref.alias: mask_fingerprint(masks.get(ref.alias)) for ref in query.relations
            }
            table_versions = {
                ref.alias: snapshot.version(ref.table) for ref in query.relations
            }
        executor = PipelineExecutor(
            query,
            graph,
            catalog=snapshot,
            options=PipelineOptions(
                transfer_fpr=options.transfer.fpr,
                join_fpr=options.join.fpr,
                prune_trivial_semijoins=options.transfer.prune_trivial_semijoins,
                allow_cartesian_products=options.join.allow_cartesian_products,
            ),
            backend=backend,
            registry=BloomFilterRegistry(),
            governor=governor,
            hash_cache=HashCache() if config.hash_cache else None,
            selection_vectors=bool(config.selection_vectors),
            artifact_cache=artifact_cache,
            table_versions=table_versions,
            fingerprints=fingerprints,
            adaptive_transfer=bool(config.adaptive_transfer),
            # ``config`` is resolved, so the knob is always filled in.
            adaptive_min_yield=float(config.adaptive_min_yield),
            ndv_sizing=bool(config.ndv_sizing),
            bitmap_downgrade=bool(config.bitmap_downgrade),
            arena=arena,
            encodings=bool(config.encodings),
            tracer=tracer,
        )
        try:
            run = executor.run(
                physical,
                stats,
                masks=masks,
                fused_filters=prep.fused,
                zone_stats=prep.zone_stats,
            )
        finally:
            backend.close()
        io_seconds = spill.simulated_seconds()
        if io_seconds:
            stats.timings.simulated_io += io_seconds
        if schedule is not None:
            for alias, relation in run.relations.items():
                stats.reduced_rows[alias] = relation.num_rows

        return QueryResult(
            query=query,
            mode=mode,
            plan=plan,
            aggregates=run.aggregates or {},
            stats=stats,
            join_tree=join_tree,
            schedule=schedule,
            relations=run.relations,
            physical_plan=physical,
            execution_config=config,
            trace=tracer.root if tracer is not None else None,
        )

    #: Graceful-degradation order when a backend cannot start: process
    #: (worker pool) falls back to parallel (thread pool), which falls back
    #: to serial.  Results are bit-identical on every rung.
    _BACKEND_LADDER = {"process": "parallel", "parallel": "serial"}

    def _backend_ladder(self, config: ExecutionConfig, stats: ExecutionStats):
        """Instantiate the configured backend, degrading down the ladder.

        Each :class:`~repro.errors.BackendUnavailable` from
        ``ensure_ready()`` (pool failed to start, injected ``process.pool``
        / ``parallel.pool`` fault) steps one rung down and records
        ``backend:<from>-><to>`` in ``stats.degradations``; serial has no
        further rung and re-raises.
        """
        name = config.backend
        while True:
            backend = make_backend(
                name,
                config.chunk_size,
                config.num_threads,
                config.num_workers,
                config.max_task_retries,
            )
            try:
                backend.ensure_ready()
                return backend
            except BackendUnavailable:
                fallback = self._BACKEND_LADDER.get(name)
                if fallback is None:
                    raise
                stats.record_degradation(f"backend:{name}->{fallback}")
                backend.close()
                name = fallback

    # ------------------------------------------------------------------
    # EXPLAIN and the SQL front end
    # ------------------------------------------------------------------
    def explain(
        self,
        query: QuerySpec,
        mode: ExecutionMode = ExecutionMode.RPT,
        plan: Optional[JoinPlan] = None,
        options: Optional[ExecutionOptions] = None,
    ) -> ExplainResult:
        """Plan and compile ``query`` without executing it.

        Runs the exact planning path of :meth:`execute` — base-filter masks,
        join graph, transfer schedule, join plan, physical-plan compilation —
        and returns an :class:`ExplainResult` whose stats carry one zero-cost
        entry per compiled op, so the usual trace renderers work on it.
        """
        options = options or ExecutionOptions()
        self._begin_execution()
        try:
            stats = ExecutionStats(query_name=query.name, mode=mode.value)
            with self.catalog.snapshot(
                ref.table for ref in query.relations
            ) as snapshot:
                prep = self._prepare(
                    query, mode, plan, options, stats, catalog=snapshot
                )
        finally:
            self._end_execution()
        for index, op in enumerate(prep.physical.ops):
            entry = OpStats(index=index, kind=op.kind, detail=op.describe())
            # Block-encoded runs know their zone-map pruning at plan time
            # (the base predicates were already evaluated), so EXPLAIN shows
            # the same ``[zm skip k/n]`` markers an execution would.
            if op.kind == "filter_push":
                zone = prep.zone_stats.get(getattr(op, "alias", ""))
                if zone is not None:
                    entry.blocks_skipped, entry.blocks_total, entry.encoded_bytes = zone
            stats.op_stats.append(entry)
        return ExplainResult(
            query=query,
            mode=mode,
            plan=prep.plan,
            physical_plan=prep.physical,
            stats=stats,
            join_tree=prep.join_tree,
            schedule=prep.schedule,
            execution_config=prep.config,
        )

    def sql(
        self,
        text: str,
        mode: ExecutionMode = ExecutionMode.RPT,
        plan: Optional[JoinPlan] = None,
        options: Optional[ExecutionOptions] = None,
        name: Optional[str] = None,
    ):
        """Compile and run one SQL statement.

        The statement is parsed, bound against this database's catalog, and
        lowered to a :class:`~repro.query.QuerySpec` (front-end failures
        raise :class:`~repro.errors.SqlError` with caret diagnostics), then
        executed exactly like :meth:`execute` — returning a
        :class:`QueryResult`.  An ``EXPLAIN SELECT ...`` statement is
        planned but not executed, returning an :class:`ExplainResult`; an
        ``EXPLAIN ANALYZE SELECT ...`` statement is executed with tracing
        forced on and returns an :class:`ExplainAnalyzeResult` whose
        ``render()`` annotates the plan with actual rows and timings.

        ``name`` overrides the query name; otherwise a ``-- name:`` comment
        directive in the text is used.
        """
        self._ensure_open()
        compiled = compile_statement(text, self.catalog, name=name)
        if compiled.analyze:
            analyze_options = options or ExecutionOptions()
            analyze_options = replace(
                analyze_options,
                execution=replace(analyze_options.execution, tracing=True),
            )
            result = self.execute(
                compiled.query, mode=mode, plan=plan, options=analyze_options
            )
            return ExplainAnalyzeResult(result=result)
        if compiled.explain:
            return self.explain(compiled.query, mode=mode, plan=plan, options=options)
        return self.execute(compiled.query, mode=mode, plan=plan, options=options)

    def explain_sql(
        self,
        text: str,
        mode: ExecutionMode = ExecutionMode.RPT,
        plan: Optional[JoinPlan] = None,
        options: Optional[ExecutionOptions] = None,
        name: Optional[str] = None,
    ) -> ExplainResult:
        """EXPLAIN one SQL statement (with or without a leading ``EXPLAIN``)."""
        compiled = compile_statement(text, self.catalog, name=name)
        return self.explain(compiled.query, mode=mode, plan=plan, options=options)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _prepare(
        self,
        query: QuerySpec,
        mode: ExecutionMode,
        plan: Optional[JoinPlan],
        options: ExecutionOptions,
        stats: ExecutionStats,
        catalog: Optional[Any] = None,
    ) -> _PreparedExecution:
        """The shared planning front half of :meth:`execute` / :meth:`explain`.

        ``catalog`` is the pinned snapshot the run plans against (defaults
        to the live catalog for direct callers).
        """
        catalog = catalog if catalog is not None else self.catalog
        if not query.is_connected() and len(query.relations) > 1:
            raise PlanError(
                f"query {query.name!r} has a disconnected join graph; "
                "connect it or execute each component separately"
            )

        # Resolve the runtime config before evaluating filters: the fusion
        # knob decides how the base predicates run.
        config = options.resolved_execution()
        with stats.time_phase("scan_filter"):
            masks, fused, zone_stats = self._evaluate_filters(
                query,
                fuse=bool(config.fuse_filters),
                stats=stats,
                encodings=bool(config.encodings),
                catalog=catalog,
            )
        graph = self.join_graph(query, masks=masks, catalog=catalog)

        join_tree: Optional[JoinTree] = None
        schedule: Optional[TransferSchedule] = None
        if mode.uses_transfer_phase:
            join_tree, schedule = self._build_schedule(mode, graph, options)

        if plan is None:
            plan = self.optimizer_plan(query, options, graph, catalog=catalog)
        validate_plan_for_query(plan, query.aliases)

        if options.verify_safe_join_order and plan.is_left_deep() and is_alpha_acyclic(graph):
            if not is_safe_join_order(graph, plan.left_deep_order()):
                raise PlanError(
                    f"join order {plan.left_deep_order()} contains an unsafe subjoin "
                    f"for query {query.name!r}"
                )

        if schedule is not None and options.skip_backward_if_aligned and self._order_aligned(plan, join_tree):
            schedule = schedule.without_backward_pass()

        physical = compile_execution(
            query,
            mode,
            plan,
            graph,
            tables={ref.alias: catalog.table(ref.table) for ref in query.relations},
            schedule=schedule,
            partition_threshold=config.partition_threshold,
            partition_bits=config.partition_bits or 0,
        )
        return _PreparedExecution(
            plan=plan,
            graph=graph,
            join_tree=join_tree,
            schedule=schedule,
            masks=masks,
            physical=physical,
            config=config,
            fused=fused,
            zone_stats=zone_stats,
        )

    def _build_schedule(
        self,
        mode: ExecutionMode,
        graph: JoinGraph,
        options: ExecutionOptions,
    ) -> tuple[Optional[JoinTree], TransferSchedule]:
        if mode in (ExecutionMode.RPT, ExecutionMode.YANNAKAKIS):
            tree = largest_root(graph, options.largest_root)
            return tree, schedule_from_tree(tree)
        if mode is ExecutionMode.PT:
            transfer_graph = small2large(graph)
            return None, schedule_from_transfer_graph(transfer_graph)
        raise PlanError(f"mode {mode} does not use a transfer phase")

    def _order_aligned(self, plan: JoinPlan, tree: Optional[JoinTree]) -> bool:
        """True when a left-deep plan joins relations top-down along the join tree."""
        if tree is None or not plan.is_left_deep():
            return False
        return plan.left_deep_order() == tree.aligned_join_order()
