"""Execution modes: the systems compared throughout the paper's evaluation.

* ``BASELINE``   — plain binary hash joins in the chosen join order
  (vanilla DuckDB in the paper).
* ``BLOOM_JOIN`` — baseline plus a per-join Bloom filter passed from the
  build side to the probe side (classic sideways information passing).
* ``PT``         — the original Predicate Transfer: Small2Large transfer
  graph, Bloom-filter transfer phase, then the join phase.
* ``RPT``        — Robust Predicate Transfer: LargestRoot join tree,
  Bloom-filter transfer phase, then the join phase.  The paper's
  contribution.
* ``YANNAKAKIS`` — exact (hash-based) semi-join reduction over the
  LargestRoot join tree; the classical algorithm PT/RPT approximate.

Every mode compiles into the same :class:`~repro.plan.physical.PhysicalPlan`
op vocabulary; the property flags below drive that compilation:

==============  ==============  ============  ===============  =============
mode            transfer phase  Bloom xfer    exact semi-join  per-join SIP
==============  ==============  ============  ===============  =============
``BASELINE``    no              no            no               no
``BLOOM_JOIN``  no              no            no               yes
``PT``          yes             yes           no               no
``RPT``         yes             yes           no               no
``YANNAKAKIS``  yes             no            yes              no
==============  ==============  ============  ===============  =============
"""

from __future__ import annotations

import enum


class ExecutionMode(enum.Enum):
    """Which join-processing strategy the engine uses for a query."""

    BASELINE = "baseline"
    BLOOM_JOIN = "bloom_join"
    PT = "pt"
    RPT = "rpt"
    YANNAKAKIS = "yannakakis"

    @property
    def uses_transfer_phase(self) -> bool:
        """True for modes that run a semi-join / Bloom transfer phase."""
        return self in (ExecutionMode.PT, ExecutionMode.RPT, ExecutionMode.YANNAKAKIS)

    @property
    def uses_bloom_filters(self) -> bool:
        """True for modes whose transfer phase uses Bloom filters (not exact semi-joins)."""
        return self in (ExecutionMode.PT, ExecutionMode.RPT)

    @property
    def uses_exact_semijoins(self) -> bool:
        """True for modes whose transfer phase is exact (no false positives)."""
        return self is ExecutionMode.YANNAKAKIS

    @property
    def uses_per_join_bloom(self) -> bool:
        """True for the Bloom Join baseline (per-join SIP filters)."""
        return self is ExecutionMode.BLOOM_JOIN

    @property
    def label(self) -> str:
        """Display label used in reports (matches the paper's legend)."""
        return {
            ExecutionMode.BASELINE: "DuckDB",
            ExecutionMode.BLOOM_JOIN: "Bloom Join",
            ExecutionMode.PT: "PT",
            ExecutionMode.RPT: "RPT",
            ExecutionMode.YANNAKAKIS: "Yannakakis",
        }[self]
