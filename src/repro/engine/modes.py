"""Execution modes: the systems compared throughout the paper's evaluation.

* ``BASELINE``   — plain binary hash joins in the chosen join order
  (vanilla DuckDB in the paper).
* ``BLOOM_JOIN`` — baseline plus a per-join Bloom filter passed from the
  build side to the probe side (classic sideways information passing).
* ``PT``         — the original Predicate Transfer: Small2Large transfer
  graph, Bloom-filter transfer phase, then the join phase.
* ``RPT``        — Robust Predicate Transfer: LargestRoot join tree,
  Bloom-filter transfer phase, then the join phase.  The paper's
  contribution.
* ``YANNAKAKIS`` — exact (hash-based) semi-join reduction over the
  LargestRoot join tree; the classical algorithm PT/RPT approximate.

Every mode compiles into the same :class:`~repro.plan.physical.PhysicalPlan`
op vocabulary; the property flags below drive that compilation:

==============  ==============  ============  ===============  =============
mode            transfer phase  Bloom xfer    exact semi-join  per-join SIP
==============  ==============  ============  ===============  =============
``BASELINE``    no              no            no               no
``BLOOM_JOIN``  no              no            no               yes
``PT``          yes             yes           no               no
``RPT``         yes             yes           no               no
``YANNAKAKIS``  yes             no            yes              no
==============  ==============  ============  ===============  =============
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass
from typing import Optional

from repro.exec.adaptive import DEFAULT_MIN_YIELD as DEFAULT_ADAPTIVE_MIN_YIELD
from repro.exec.kernels import DEFAULT_PARTITION_BITS


class ExecutionMode(enum.Enum):
    """Which join-processing strategy the engine uses for a query."""

    BASELINE = "baseline"
    BLOOM_JOIN = "bloom_join"
    PT = "pt"
    RPT = "rpt"
    YANNAKAKIS = "yannakakis"

    @property
    def uses_transfer_phase(self) -> bool:
        """True for modes that run a semi-join / Bloom transfer phase."""
        return self in (ExecutionMode.PT, ExecutionMode.RPT, ExecutionMode.YANNAKAKIS)

    @property
    def uses_bloom_filters(self) -> bool:
        """True for modes whose transfer phase uses Bloom filters (not exact semi-joins)."""
        return self in (ExecutionMode.PT, ExecutionMode.RPT)

    @property
    def uses_exact_semijoins(self) -> bool:
        """True for modes whose transfer phase is exact (no false positives)."""
        return self is ExecutionMode.YANNAKAKIS

    @property
    def uses_per_join_bloom(self) -> bool:
        """True for the Bloom Join baseline (per-join SIP filters)."""
        return self is ExecutionMode.BLOOM_JOIN

    @property
    def label(self) -> str:
        """Display label used in reports (matches the paper's legend)."""
        return {
            ExecutionMode.BASELINE: "DuckDB",
            ExecutionMode.BLOOM_JOIN: "Bloom Join",
            ExecutionMode.PT: "PT",
            ExecutionMode.RPT: "RPT",
            ExecutionMode.YANNAKAKIS: "Yannakakis",
        }[self]


#: Estimated build rows at which the compiler switches a hash join to the
#: radix-partitioned form.  Below this a monolithic sort fits the caches and
#: the partitioning pass is pure overhead.
DEFAULT_PARTITION_THRESHOLD = 1 << 17

#: Environment variables consulted when an :class:`ExecutionConfig` knob is
#: left unset — the CI backend matrix runs the whole suite under
#: ``REPRO_BACKEND=parallel`` without touching any call site.
ENV_BACKEND = "REPRO_BACKEND"
ENV_NUM_THREADS = "REPRO_NUM_THREADS"
ENV_NUM_WORKERS = "REPRO_NUM_WORKERS"
ENV_FUSE_FILTERS = "REPRO_FUSE_FILTERS"
ENV_MEMORY_BUDGET = "REPRO_MEMORY_BUDGET"
ENV_PARTITION_BITS = "REPRO_PARTITION_BITS"
ENV_HASH_CACHE = "REPRO_HASH_CACHE"
ENV_SELECTION_VECTORS = "REPRO_SELECTION_VECTORS"
ENV_ARTIFACT_CACHE = "REPRO_ARTIFACT_CACHE"
ENV_ARTIFACT_CACHE_BUDGET = "REPRO_ARTIFACT_CACHE_BUDGET"
ENV_ADAPTIVE_TRANSFER = "REPRO_ADAPTIVE_TRANSFER"
ENV_ADAPTIVE_MIN_YIELD = "REPRO_ADAPTIVE_MIN_YIELD"
ENV_NDV_SIZING = "REPRO_NDV_SIZING"
ENV_BITMAP_DOWNGRADE = "REPRO_BITMAP_DOWNGRADE"
ENV_ENCODINGS = "REPRO_ENCODINGS"
ENV_TIMEOUT_SECONDS = "REPRO_TIMEOUT_SECONDS"
ENV_MAX_TASK_RETRIES = "REPRO_MAX_TASK_RETRIES"
ENV_FAULTS = "REPRO_FAULTS"
ENV_TRACE = "REPRO_TRACE"

#: Pool-respawn attempts per morsel before the process backend falls back to
#: executing the remaining morsels inline.
DEFAULT_MAX_TASK_RETRIES = 2


def _env_flag(name: str) -> Optional[bool]:
    """Parse a boolean ``REPRO_*`` environment variable (None when unset)."""
    value = os.environ.get(name)
    if value is None or value == "":
        return None
    return value.strip().lower() not in ("0", "false", "no", "off")


@dataclass(frozen=True)
class ExecutionConfig:
    """Runtime configuration of the execution stack (backend and resources).

    One object carries every knob the runtime layers consult so the bench
    harness can compare backends uniformly:

    * ``backend`` — ``"serial"`` (whole-column kernels), ``"chunked"``
      (morsel-granular with the Figure 14 simulated-parallelism model),
      ``"parallel"`` (a real morsel-driven scheduler over a thread pool), or
      ``"process"`` (a morsel scheduler over worker *processes* reading
      base columns from ``multiprocessing.shared_memory`` — GIL-free,
      bit-identical to serial).
    * ``num_threads`` — worker threads of the parallel backend (``None``:
      one per CPU, capped at 32 like the paper's testbed).
    * ``num_workers`` — worker processes of the process backend (``None``:
      one per CPU, capped at 32).
    * ``chunk_size`` — morsel granularity of the chunked/parallel backends
      (``None``: each backend's own default — 2048-row chunks for the
      chunked simulation, larger morsels for the real parallel scheduler).
    * ``memory_budget_bytes`` — the :class:`~repro.storage.buffer.MemoryGovernor`
      budget; ``None`` means ungoverned (peak footprint still tracked).
    * ``partition_bits`` / ``partition_threshold`` — radix-partitioned hash
      join configuration; ``partition_threshold=None`` disables partitioning.
    * ``hash_cache`` — the query-lifetime
      :class:`~repro.exec.hashcache.HashCache`: hash each key column with
      splitmix64 exactly once per query and replay the pass across every
      Bloom insert/probe (default on; bit-identical either way).
    * ``selection_vectors`` — late-materialized transfer: Bloom probes carry
      row-id selection vectors over the immutable base columns and gather at
      the probe itself rather than materializing filtered key arrays at every
      step (default on; bit-identical either way).
    * ``artifact_cache`` / ``artifact_cache_budget_bytes`` — the cross-query
      :class:`~repro.storage.artifacts.ArtifactCache` memoizing built Bloom
      filters and frozen hash indexes across ``Database.execute`` calls
      (default off; keyed by table version + filter fingerprint, LRU within
      the byte budget).
    * ``adaptive_transfer`` / ``adaptive_min_yield`` — the
      :class:`~repro.exec.adaptive.AdaptiveTransferController`: observe each
      transfer step's pruning yield at runtime and cancel a relation's
      remaining passes (plus the builds that only feed them, plus the whole
      backward pass when the forward pass reduced nothing) once the yield
      falls below ``adaptive_min_yield`` (default off / 1%).  Purely
      reductive passes mean skipping never changes final results — only
      their speed.
    * ``ndv_sizing`` — size each transfer Bloom filter from a KMV
      distinct-count estimate of its build column instead of the build row
      count, shrinking filter bytes on duplicate-heavy keys.  Defaults to
      the resolved ``adaptive_transfer`` value.
    * ``bitmap_downgrade`` — downgrade a Bloom step whose build-side key
      domain is small/dense to an exact bitmap semi-join (no false
      positives, cheaper probes).  Defaults to the resolved
      ``adaptive_transfer`` value.
    * ``fuse_filters`` — compile conjunctive base-table predicates into one
      fused kernel that short-circuits later conjuncts through progressive
      selection vectors instead of materializing a boolean mask per node
      (default off; bit-identical either way).
    * ``encodings`` — block-encoded columnar execution: columns carry
      dictionary / run-length / bit-packed encodings chosen at registration
      time, base filters consult per-block min/max zone maps to skip whole
      blocks, string predicates are rewritten into dictionary code space,
      and the process backend ships the *encoded* buffers through shared
      memory (default off; bit-identical either way).
    * ``timeout_seconds`` — query deadline: a
      :class:`~repro.exec.faults.CancelToken` is checked at morsel-gather
      barriers and at chunk granularity inside long kernels; expiry raises
      :class:`~repro.errors.QueryTimeout` carrying the partial stats
      (``None``: no deadline).
    * ``max_task_retries`` — pool-respawn attempts per morsel after a worker
      crash before the process backend executes the remaining morsels inline
      (bit-identical either way).
    * ``faults`` — deterministic fault-injection spec
      (``"seed:1234,rate:0.05[,sites:a|b][,latency:s]"``), see
      ``exec/faults.py``; ``None`` leaves the ``REPRO_FAULTS`` environment
      configuration in place.
    * ``tracing`` — record a hierarchical :class:`~repro.obs.trace.Span`
      tree (query → phase → physical op → morsel batch) on the
      :class:`~repro.engine.database.QueryResult` (default off; results
      are bit-identical either way, overhead is gated under 2% by the
      observability microbench).

    Unset knobs (``backend=None`` etc.) resolve from ``REPRO_*`` environment
    variables, then defaults — see :meth:`resolved`.
    """

    backend: Optional[str] = None
    num_threads: Optional[int] = None
    num_workers: Optional[int] = None
    chunk_size: Optional[int] = None
    memory_budget_bytes: Optional[int] = None
    partition_bits: Optional[int] = None
    partition_threshold: Optional[int] = DEFAULT_PARTITION_THRESHOLD
    hash_cache: Optional[bool] = None
    selection_vectors: Optional[bool] = None
    artifact_cache: Optional[bool] = None
    artifact_cache_budget_bytes: Optional[int] = None
    adaptive_transfer: Optional[bool] = None
    adaptive_min_yield: Optional[float] = None
    ndv_sizing: Optional[bool] = None
    bitmap_downgrade: Optional[bool] = None
    fuse_filters: Optional[bool] = None
    encodings: Optional[bool] = None
    timeout_seconds: Optional[float] = None
    max_task_retries: Optional[int] = None
    faults: Optional[str] = None
    tracing: Optional[bool] = None

    def resolved(self) -> "ExecutionConfig":
        """This config with unset knobs filled from the environment / defaults."""
        backend = self.backend or os.environ.get(ENV_BACKEND) or "serial"
        num_threads = self.num_threads
        if num_threads is None and os.environ.get(ENV_NUM_THREADS):
            num_threads = int(os.environ[ENV_NUM_THREADS])
        num_workers = self.num_workers
        if num_workers is None and os.environ.get(ENV_NUM_WORKERS):
            num_workers = int(os.environ[ENV_NUM_WORKERS])
        memory_budget = self.memory_budget_bytes
        if memory_budget is None and os.environ.get(ENV_MEMORY_BUDGET):
            memory_budget = int(os.environ[ENV_MEMORY_BUDGET])
        partition_bits = self.partition_bits
        if partition_bits is None and os.environ.get(ENV_PARTITION_BITS):
            partition_bits = int(os.environ[ENV_PARTITION_BITS])
        if partition_bits is None:
            partition_bits = DEFAULT_PARTITION_BITS
        hash_cache = self.hash_cache
        if hash_cache is None:
            hash_cache = _env_flag(ENV_HASH_CACHE)
        if hash_cache is None:
            hash_cache = True
        selection_vectors = self.selection_vectors
        if selection_vectors is None:
            selection_vectors = _env_flag(ENV_SELECTION_VECTORS)
        if selection_vectors is None:
            selection_vectors = True
        artifact_cache = self.artifact_cache
        if artifact_cache is None:
            artifact_cache = _env_flag(ENV_ARTIFACT_CACHE)
        if artifact_cache is None:
            artifact_cache = False
        artifact_budget = self.artifact_cache_budget_bytes
        if artifact_budget is None and os.environ.get(ENV_ARTIFACT_CACHE_BUDGET):
            artifact_budget = int(os.environ[ENV_ARTIFACT_CACHE_BUDGET])
        adaptive_transfer = self.adaptive_transfer
        if adaptive_transfer is None:
            adaptive_transfer = _env_flag(ENV_ADAPTIVE_TRANSFER)
        if adaptive_transfer is None:
            adaptive_transfer = False
        adaptive_min_yield = self.adaptive_min_yield
        if adaptive_min_yield is None and os.environ.get(ENV_ADAPTIVE_MIN_YIELD):
            adaptive_min_yield = float(os.environ[ENV_ADAPTIVE_MIN_YIELD])
        if adaptive_min_yield is None:
            adaptive_min_yield = DEFAULT_ADAPTIVE_MIN_YIELD
        # NDV sizing and the exact-bitmap downgrade ride along with the
        # adaptive master switch unless configured individually.
        ndv_sizing = self.ndv_sizing
        if ndv_sizing is None:
            ndv_sizing = _env_flag(ENV_NDV_SIZING)
        if ndv_sizing is None:
            ndv_sizing = adaptive_transfer
        bitmap_downgrade = self.bitmap_downgrade
        if bitmap_downgrade is None:
            bitmap_downgrade = _env_flag(ENV_BITMAP_DOWNGRADE)
        if bitmap_downgrade is None:
            bitmap_downgrade = adaptive_transfer
        fuse_filters = self.fuse_filters
        if fuse_filters is None:
            fuse_filters = _env_flag(ENV_FUSE_FILTERS)
        if fuse_filters is None:
            fuse_filters = False
        encodings = self.encodings
        if encodings is None:
            encodings = _env_flag(ENV_ENCODINGS)
        if encodings is None:
            encodings = False
        timeout_seconds = self.timeout_seconds
        if timeout_seconds is None and os.environ.get(ENV_TIMEOUT_SECONDS):
            timeout_seconds = float(os.environ[ENV_TIMEOUT_SECONDS])
        max_task_retries = self.max_task_retries
        if max_task_retries is None and os.environ.get(ENV_MAX_TASK_RETRIES):
            max_task_retries = int(os.environ[ENV_MAX_TASK_RETRIES])
        if max_task_retries is None:
            max_task_retries = DEFAULT_MAX_TASK_RETRIES
        tracing = self.tracing
        if tracing is None:
            tracing = _env_flag(ENV_TRACE)
        if tracing is None:
            tracing = False
        # ``faults`` stays None unless set explicitly: the injector consults
        # REPRO_FAULTS itself, and None means "don't override it".
        return ExecutionConfig(
            backend=backend,
            num_threads=num_threads,
            num_workers=num_workers,
            chunk_size=self.chunk_size,
            memory_budget_bytes=memory_budget,
            partition_bits=partition_bits,
            partition_threshold=self.partition_threshold,
            hash_cache=hash_cache,
            selection_vectors=selection_vectors,
            artifact_cache=artifact_cache,
            artifact_cache_budget_bytes=artifact_budget,
            adaptive_transfer=adaptive_transfer,
            adaptive_min_yield=adaptive_min_yield,
            ndv_sizing=ndv_sizing,
            bitmap_downgrade=bitmap_downgrade,
            fuse_filters=fuse_filters,
            encodings=encodings,
            timeout_seconds=timeout_seconds,
            max_task_retries=max_task_retries,
            faults=self.faults,
            tracing=tracing,
        )
