"""Plan cache for the serving layer: normalized SQL text -> join plan.

The :mod:`repro.sql.format` round-trip formatter gives a free normal form:
two statements that differ only in whitespace, case, or clause ordering
lower to equal :class:`~repro.query.QuerySpec` objects and therefore
render to the *same* canonical text.  The cache keys on that text plus the
execution mode, the per-table catalog versions the query was admitted
against, and the planning-relevant options — so a ``register(...,
replace=True)`` bumps a version and every cached plan over the old data
simply misses (no invalidation race to get wrong), while the stale entry
ages out of the LRU.

Only the :class:`~repro.plan.join_plan.JoinPlan` is cached — masks and the
physical plan depend on live column data, and the join plan is the one
planning product whose recomputation costs real optimizer time.  Any join
plan is *correct* for its query (execution validates it), so even a
hypothetical stale hit could change performance, never results.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.plan.join_plan import JoinPlan

DEFAULT_PLAN_CACHE_ENTRIES = 256


@dataclass(frozen=True)
class PlanCacheKey:
    """Identity of one cached plan."""

    #: Canonical SQL text (``to_sql(spec, include_name=False)``).
    text: str
    #: Execution mode value (plans differ across transfer strategies).
    mode: str
    #: The pinned ``(table, version)`` pairs the query planned against.
    versions: Tuple[Tuple[str, int], ...]
    #: Planning-relevant option fingerprint (optimizer knobs, encodings).
    options_token: str


class PlanCache:
    """A thread-safe LRU of :class:`JoinPlan` keyed by :class:`PlanCacheKey`."""

    def __init__(self, max_entries: int = DEFAULT_PLAN_CACHE_ENTRIES) -> None:
        if max_entries <= 0:
            raise ValueError("plan cache must allow at least one entry")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[PlanCacheKey, JoinPlan]" = OrderedDict()

    def get(self, key: PlanCacheKey) -> Optional[JoinPlan]:
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return plan

    def put(self, key: PlanCacheKey, plan: JoinPlan) -> None:
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def invalidate_table(self, name: str) -> int:
        """Eagerly drop entries planned over any version of ``name``.

        Version-keyed lookups already miss after a replace; this just
        reclaims the slots.  Returns how many entries were dropped.
        """
        with self._lock:
            stale = [
                key
                for key in self._entries
                if any(table == name for table, _ in key.versions)
            ]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }
