"""Concurrent serving layer: many SQL clients over one shared ``Database``.

The :class:`Server` multiplexes concurrent client :class:`~repro.engine.session.Session`
queries over a shared :class:`~repro.engine.database.Database` with three
guarantees a bare ``Database`` does not give:

* **MVCC-lite snapshot isolation** — every admitted query pins a
  :class:`~repro.storage.catalog.CatalogSnapshot` of exactly the tables it
  reads; a concurrent ``register_table(replace=True)`` retains the pinned
  versions until the last reader releases them, so a running query never
  sees a torn catalog and never loses its cached artifacts or
  shared-memory columns mid-flight.
* **Admission control** — at most ``max_concurrent`` queries execute at
  once; up to ``max_queue`` more wait (bounded, FIFO-ish) for at most
  ``admission_timeout_seconds``.  Anything beyond that is *shed* with a
  typed :class:`~repro.errors.AdmissionRejected` carrying a
  ``retry_after_seconds`` hint derived from observed service latency and
  queue depth — overload degrades into fast typed rejections, never into
  unbounded queues or hangs.  Optional per-query memory reservations
  (``session_memory_bytes`` against ``memory_budget_bytes``, accounted
  through a :class:`~repro.storage.buffer.MemoryGovernor`) extend the same
  backpressure to memory.
* **Deadlines and shed-load degradation** — every admitted query gets a
  :class:`~repro.exec.faults.CancelToken` (defaulting from
  ``default_timeout_seconds``); a query that waited in the admission queue
  can be tightened to ``shed_timeout_seconds``, recorded in
  ``ExecutionStats.degradations`` alongside the queue wait itself.

A plan cache (:mod:`repro.engine.plancache`) keyed by the round-trip SQL
normal form, the execution mode, and the pinned table versions skips the
join-order optimizer for repeated statement shapes; a table replace bumps
the version and the stale entry simply misses.

Per-query fault plans (``ExecutionOptions.execution.faults``) configure
the *process-global* injector and are not safe under concurrency; chaos
testing against a server should configure :mod:`repro.exec.faults`
globally (e.g. via ``REPRO_FAULTS``) instead.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace as dc_replace
from typing import Dict, List, Optional, Union

from repro.engine.database import (
    Database,
    ExecutionOptions,
    ExplainResult,
    QueryResult,
)
from repro.engine.modes import ExecutionMode
from repro.engine.plancache import (
    DEFAULT_PLAN_CACHE_ENTRIES,
    PlanCache,
    PlanCacheKey,
)
from repro.engine.session import Session
from repro.errors import (
    AdmissionRejected,
    PlanError,
    QueryCancelled,
    QueryTimeout,
    ReproError,
)
from repro.exec import faults
from repro.exec.faults import CancelToken
from repro.obs.export import render_exposition
from repro.obs.metrics import MetricsRegistry
from repro.obs.querylog import (
    DEFAULT_QUERY_LOG_ENTRIES,
    QueryLog,
    QueryLogRecord,
    sql_hash,
)
from repro.query import QuerySpec
from repro.sql import compile_statement
from repro.sql.format import to_sql
from repro.storage.buffer import MemoryGovernor


@dataclass(frozen=True)
class ServerConfig:
    """Serving knobs (all admission decisions derive from these)."""

    #: Queries allowed to execute concurrently.
    max_concurrent: int = 4
    #: Queries allowed to *wait* for a slot beyond the concurrent ones;
    #: admission beyond ``max_concurrent + max_queue`` rejects immediately.
    max_queue: int = 16
    #: Longest a query may wait in the admission queue before being shed.
    admission_timeout_seconds: float = 10.0
    #: Default per-query deadline (None: no deadline unless the client's
    #: options carry one).
    default_timeout_seconds: Optional[float] = None
    #: Tighter deadline applied to queries that had to wait in the queue
    #: (shed-load degradation; None disables the tightening).
    shed_timeout_seconds: Optional[float] = None
    #: Memory reserved per admitted query (0 disables memory admission).
    session_memory_bytes: int = 0
    #: Total memory budget across concurrent queries (None: unlimited).
    memory_budget_bytes: Optional[int] = None
    #: Whether to cache join plans for repeated normalized SQL texts.
    plan_cache: bool = True
    plan_cache_entries: int = DEFAULT_PLAN_CACHE_ENTRIES
    #: Ring-buffer capacity of the structured query log (0 disables it).
    query_log_entries: int = DEFAULT_QUERY_LOG_ENTRIES

    def __post_init__(self) -> None:
        if self.max_concurrent <= 0:
            raise ValueError("max_concurrent must be positive")
        if self.max_queue < 0:
            raise ValueError("max_queue must be non-negative")
        if self.admission_timeout_seconds < 0:
            raise ValueError("admission_timeout_seconds must be non-negative")
        if self.session_memory_bytes < 0:
            raise ValueError("session_memory_bytes must be non-negative")
        if self.query_log_entries < 0:
            raise ValueError("query_log_entries must be non-negative")


@dataclass
class ServerStats:
    """Monotonic serving counters (snapshot via :meth:`Server.stats`)."""

    admitted: int = 0
    completed: int = 0
    failed: int = 0
    queued: int = 0
    rejected_queue_full: int = 0
    rejected_timeout: int = 0
    rejected_memory: int = 0
    rejected_closed: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: Flat metrics snapshot (series name -> value), filled by
    #: :meth:`Server.stats` from the server's :class:`MetricsRegistry`.
    metrics: Dict[str, float] = field(default_factory=dict)
    #: Retained query-log records (oldest first), filled by
    #: :meth:`Server.stats` from the server's :class:`QueryLog`.
    query_log: List[QueryLogRecord] = field(default_factory=list)

    @property
    def rejected(self) -> int:
        return (
            self.rejected_queue_full
            + self.rejected_timeout
            + self.rejected_memory
            + self.rejected_closed
        )


class Server:
    """Admission-controlled concurrent front end over one ``Database``."""

    def __init__(
        self,
        database: Database,
        config: Optional[ServerConfig] = None,
        mode: ExecutionMode = ExecutionMode.RPT,
        options: Optional[ExecutionOptions] = None,
    ) -> None:
        self.database = database
        self.config = config or ServerConfig()
        self.default_mode = mode
        self.default_options = options
        self._stats = ServerStats()
        # One condition guards every piece of admission state below.
        self._cond = threading.Condition()
        self._running = 0
        self._waiting = 0
        self._closed = False
        self._session_counter = 0
        self._query_counter = 0
        self._reserved_bytes = 0
        #: Exponential moving average of completed-query latency; seeds the
        #: retry-after hints (50ms until the first completion).
        self._latency_ewma: Optional[float] = None
        self._sessions: List[Session] = []
        self._active_tokens: Dict[int, CancelToken] = {}
        # Accounting-only governor for admission reservations: budget
        # checks happen under the server's own lock (the governor is not
        # internally synchronized), but reservations flow through it so the
        # suite-wide leak guard (buffer.assert_no_outstanding_reservations)
        # sees serving-layer leaks too.
        self._governor = MemoryGovernor(self.config.memory_budget_bytes)
        self._plan_cache = (
            PlanCache(self.config.plan_cache_entries)
            if self.config.plan_cache
            else None
        )
        self.query_log: Optional[QueryLog] = (
            QueryLog(self.config.query_log_entries)
            if self.config.query_log_entries
            else None
        )
        self.metrics = MetricsRegistry()
        self._register_instruments()

    def _register_instruments(self) -> None:
        """Declare every serving instrument once, up front.

        Event-driven counters/histograms update as queries flow; the
        ``(sampled)`` gauges are refreshed from component state by
        :meth:`sample_metrics` whenever a snapshot or exposition is taken.
        """
        m = self.metrics
        self._m_queries = m.counter(
            "repro_server_queries_total", "Queries finished, by outcome.",
            labels=("outcome",),
        )
        self._m_rejections = m.counter(
            "repro_server_rejections_total",
            "Admission rejections, by typed reason.", labels=("reason",),
        )
        self._m_admission_wait = m.histogram(
            "repro_server_admission_wait_seconds",
            "Seconds queries spent queued for admission.",
        )
        self._m_latency = m.histogram(
            "repro_server_query_seconds", "End-to-end latency of served queries.",
        )
        self._m_active = m.gauge(
            "repro_server_active_queries", "Queries executing right now (sampled).",
        )
        self._m_queued = m.gauge(
            "repro_server_queued_queries",
            "Queries waiting in the admission queue (sampled).",
        )
        self._m_reserved = m.gauge(
            "repro_server_reserved_memory_bytes",
            "Bytes reserved by memory admission (sampled).",
        )
        self._m_retry_after = m.gauge(
            "repro_server_retry_after_seconds",
            "Current retry-after hint: latency EWMA scaled by queue depth (sampled).",
        )
        self._m_degradations = m.counter(
            "repro_degradations_total",
            "Degradation-ladder rungs taken across served queries, by rung family.",
            labels=("rung",),
        )
        self._m_output_rows = m.counter(
            "repro_server_output_rows_total", "Joined result rows produced.",
        )
        self._m_spill_events = m.counter(
            "repro_governor_spill_events_total",
            "Memory-governor spills across served queries.",
        )
        self._m_spilled_bytes = m.counter(
            "repro_governor_spilled_bytes_total",
            "Bytes the memory governor spilled across served queries.",
        )
        self._m_hash_hits = m.counter(
            "repro_hash_cache_hits_total", "Hash-cache column passes reused.",
        )
        self._m_hash_misses = m.counter(
            "repro_hash_cache_misses_total", "Hash-cache column passes computed.",
        )
        self._m_artifact_hits = m.counter(
            "repro_artifact_cache_hits_total",
            "Artifact-cache hits across served queries.",
        )
        self._m_artifact_misses = m.counter(
            "repro_artifact_cache_misses_total",
            "Artifact-cache misses across served queries.",
        )
        self._m_worker_crashes = m.counter(
            "repro_worker_crashes_total", "Process-pool worker crashes recovered.",
        )
        self._m_plan_cache_hits = m.gauge(
            "repro_plan_cache_hits", "Plan-cache hits (sampled).",
        )
        self._m_plan_cache_misses = m.gauge(
            "repro_plan_cache_misses", "Plan-cache misses (sampled).",
        )
        self._m_plan_cache_entries = m.gauge(
            "repro_plan_cache_entries", "Plans resident in the cache (sampled).",
        )
        self._m_artifact_entries = m.gauge(
            "repro_artifact_cache_entries", "Artifacts resident (sampled).",
        )
        self._m_artifact_bytes = m.gauge(
            "repro_artifact_cache_bytes",
            "Bytes charged to resident artifacts (sampled).",
        )
        self._m_artifact_evictions = m.gauge(
            "repro_artifact_cache_evictions", "Artifact-cache evictions (sampled).",
        )
        self._m_shm_segments = m.gauge(
            "repro_shm_segments", "Shared-memory segments published (sampled).",
        )
        self._m_shm_bytes = m.gauge(
            "repro_shm_bytes",
            "Bytes in published shared-memory segments (sampled).",
        )
        self._m_fault_injections = m.gauge(
            "repro_fault_injections",
            "Faults the active injector has fired, by site (sampled).",
            labels=("site",),
        )

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def session(
        self,
        name: Optional[str] = None,
        mode: Optional[ExecutionMode] = None,
        options: Optional[ExecutionOptions] = None,
    ) -> Session:
        """Open a client session (cheap; any number may be open at once)."""
        with self._cond:
            if self._closed:
                raise ReproError("server is closed; no new sessions")
            self._session_counter += 1
            session = Session(
                self,
                self._session_counter,
                name=name,
                mode=mode or self.default_mode,
                options=options if options is not None else self.default_options,
            )
            self._sessions.append(session)
            return session

    def _forget_session(self, session: Session) -> None:
        with self._cond:
            try:
                self._sessions.remove(session)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> ServerStats:
        """A consistent copy of the serving counters, metrics, and query log."""
        with self._cond:
            stats = dc_replace(self._stats)
            if self._plan_cache is not None:
                stats.plan_cache_hits = self._plan_cache.hits
                stats.plan_cache_misses = self._plan_cache.misses
        stats.metrics = self.metrics_snapshot()
        stats.query_log = (
            self.query_log.records() if self.query_log is not None else []
        )
        return stats

    def sample_metrics(self) -> None:
        """Refresh the ``(sampled)`` gauges from live component state."""
        with self._cond:
            self._m_active.set(self._running)
            self._m_queued.set(self._waiting)
            self._m_reserved.set(self._reserved_bytes)
            self._m_retry_after.set(self._retry_after_locked())
        cache = self._plan_cache
        if cache is not None:
            self._m_plan_cache_hits.set(cache.hits)
            self._m_plan_cache_misses.set(cache.misses)
            self._m_plan_cache_entries.set(len(cache))
        # Component state lives on the shared database (same package;
        # sampling must not force either cache into existence).
        artifacts = self.database._artifact_cache
        if artifacts is not None:
            self._m_artifact_entries.set(len(artifacts))
            self._m_artifact_bytes.set(artifacts.current_bytes)
            self._m_artifact_evictions.set(artifacts.evictions)
        arena = self.database._shm_arena
        if arena is not None:
            self._m_shm_segments.set(arena.num_segments)
            self._m_shm_bytes.set(arena.total_bytes)
        for site, count in faults.injection_counts().items():
            self._m_fault_injections.set(count, site=site)

    def metrics_snapshot(self) -> Dict[str, float]:
        """Flat ``series name -> value`` snapshot (gauges freshly sampled)."""
        self.sample_metrics()
        return self.metrics.snapshot()

    def render_metrics(self) -> str:
        """Prometheus-style text exposition of every serving metric."""
        self.sample_metrics()
        return render_exposition(self.metrics)

    @property
    def plan_cache(self) -> Optional[PlanCache]:
        return self._plan_cache

    @property
    def active_queries(self) -> int:
        with self._cond:
            return self._running

    @property
    def queued_queries(self) -> int:
        with self._cond:
            return self._waiting

    @property
    def reserved_memory_bytes(self) -> int:
        with self._cond:
            return self._reserved_bytes

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, cancel_active: bool = True, close_database: bool = False) -> None:
        """Stop admission, cancel (or drain) in-flight queries; idempotent.

        Queued queries are shed with :class:`AdmissionRejected`; running
        ones are cancelled through their tokens when ``cancel_active`` is
        True (they surface :class:`~repro.errors.QueryCancelled` to their
        clients), otherwise close blocks until they finish.  The underlying
        database is left open unless ``close_database`` is set — servers
        may share one database.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
            tokens = list(self._active_tokens.values()) if cancel_active else []
        for token in tokens:
            token.cancel()
        with self._cond:
            while self._running:
                self._cond.wait()
        if self._plan_cache is not None:
            self._plan_cache.clear()
        if close_database:
            self.database.close()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def _retry_after_locked(self) -> float:
        """Back-off hint: how long until a slot plausibly frees (lock held)."""
        latency = self._latency_ewma if self._latency_ewma is not None else 0.05
        depth = self._waiting + 1
        return max(0.01, latency * depth / self.config.max_concurrent)

    def _admit(self) -> float:
        """Take an execution slot; returns seconds spent queued.

        Raises :class:`AdmissionRejected` (typed, with a retry-after hint)
        when the bounded queue is full, the wait times out, or the server
        closes while waiting.
        """
        deadline = time.monotonic() + self.config.admission_timeout_seconds
        with self._cond:
            if self._closed:
                self._stats.rejected_closed += 1
                raise AdmissionRejected(
                    "server is closed", retry_after_seconds=0.0, reason="closed"
                )
            # Fast path only when nobody is already waiting (no barging).
            if self._running < self.config.max_concurrent and not self._waiting:
                self._running += 1
                self._stats.admitted += 1
                return 0.0
            if self._waiting >= self.config.max_queue:
                self._stats.rejected_queue_full += 1
                raise AdmissionRejected(
                    f"admission queue full ({self._waiting} waiting, "
                    f"{self._running} running)",
                    retry_after_seconds=self._retry_after_locked(),
                    reason="queue_full",
                )
            self._waiting += 1
            started = time.monotonic()
            try:
                while True:
                    if self._closed:
                        self._stats.rejected_closed += 1
                        raise AdmissionRejected(
                            "server closed while queued",
                            retry_after_seconds=0.0,
                            reason="closed",
                        )
                    if self._running < self.config.max_concurrent:
                        self._running += 1
                        self._stats.admitted += 1
                        self._stats.queued += 1
                        return time.monotonic() - started
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self._stats.rejected_timeout += 1
                        raise AdmissionRejected(
                            f"admission wait exceeded "
                            f"{self.config.admission_timeout_seconds:.3f}s",
                            retry_after_seconds=self._retry_after_locked(),
                            reason="timeout",
                        )
                    self._cond.wait(remaining)
            finally:
                self._waiting -= 1

    def _release_slot(self) -> None:
        with self._cond:
            self._running -= 1
            self._cond.notify_all()

    def _reserve_memory(self) -> Optional[str]:
        """Reserve this query's admission memory; None when disabled."""
        size = self.config.session_memory_bytes
        if not size:
            return None
        with self._cond:
            budget = self.config.memory_budget_bytes
            if budget is not None and self._reserved_bytes + size > budget:
                self._stats.rejected_memory += 1
                raise AdmissionRejected(
                    f"memory budget exhausted "
                    f"({self._reserved_bytes}/{budget} bytes reserved)",
                    retry_after_seconds=self._retry_after_locked(),
                    reason="memory",
                )
            self._query_counter += 1
            key = f"serving:q{self._query_counter}"
            # Non-evictable: admission reservations model a query's pinned
            # working set; inject=False keeps chaos alloc faults scoped to
            # execution, where the spill-retry rung handles them.
            self._governor.reserve(key, size, evictable=False, inject=False)
            self._reserved_bytes += size
            return key

    def _release_memory(self, key: Optional[str]) -> None:
        if key is None:
            return
        with self._cond:
            self._governor.release(key)
            self._reserved_bytes -= self.config.session_memory_bytes

    def _record_latency(self, seconds: float) -> None:
        with self._cond:
            if self._latency_ewma is None:
                self._latency_ewma = seconds
            else:
                self._latency_ewma = 0.8 * self._latency_ewma + 0.2 * seconds

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @staticmethod
    def _outcome_of(error: BaseException) -> str:
        if isinstance(error, AdmissionRejected):
            return "rejected"
        if isinstance(error, QueryTimeout):
            return "timeout"
        if isinstance(error, QueryCancelled):
            return "cancelled"
        return "failed"

    def _observe_query(
        self,
        session: Session,
        spec: Optional[QuerySpec],
        mode: ExecutionMode,
        outcome: str,
        queued_seconds: float,
        duration_seconds: float,
        result: Optional[QueryResult] = None,
        stats=None,
        error: Optional[BaseException] = None,
    ) -> None:
        """Fold one finished/failed/rejected query into metrics + query log."""
        self._m_queries.inc(outcome=outcome)
        if isinstance(error, AdmissionRejected):
            self._m_rejections.inc(reason=getattr(error, "reason", "unknown"))
        else:
            self._m_admission_wait.observe(queued_seconds)
            self._m_latency.observe(duration_seconds)

        backend = ""
        plan_fingerprint = ""
        if result is not None:
            stats = result.stats
            if result.execution_config is not None:
                backend = result.execution_config.backend
            if result.physical_plan is not None:
                plan_fingerprint = sql_hash(
                    " ".join(op.kind for op in result.physical_plan.ops)
                )

        output_rows = 0
        op_seconds: Dict[str, float] = {}
        cache: Dict[str, int] = {}
        adaptive: Dict[str, int] = {}
        degradations: Dict[str, int] = {}
        if stats is not None:
            output_rows = stats.output_rows
            for op in stats.op_stats:
                op_seconds[op.kind] = op_seconds.get(op.kind, 0.0) + op.seconds
            for key, value in (
                ("hash_hits", stats.hash_reuse_hits),
                ("hash_misses", stats.hash_reuse_misses),
                ("artifact_hits", stats.artifact_cache_hits),
                ("artifact_misses", stats.artifact_cache_misses),
            ):
                if value:
                    cache[key] = value
            for key, value in (
                ("steps_skipped", stats.adaptive_steps_skipped),
                ("exact_downgrades", stats.adaptive_exact_downgrades),
                ("filter_bytes_saved", stats.adaptive_filter_bytes_saved),
            ):
                if value:
                    adaptive[key] = value
            degradations = dict(stats.degradation_counts)
            for rung, count in degradations.items():
                # Label by rung family (first two segments), keeping the
                # label space bounded against per-query suffixes like
                # "admission:queued:12ms".
                family = ":".join(rung.split(":")[:2])
                self._m_degradations.inc(count, rung=family)
            if outcome == "ok":
                self._m_output_rows.inc(output_rows)
            if stats.spill_events:
                self._m_spill_events.inc(stats.spill_events)
            if stats.spilled_bytes:
                self._m_spilled_bytes.inc(stats.spilled_bytes)
            if stats.hash_reuse_hits:
                self._m_hash_hits.inc(stats.hash_reuse_hits)
            if stats.hash_reuse_misses:
                self._m_hash_misses.inc(stats.hash_reuse_misses)
            if stats.artifact_cache_hits:
                self._m_artifact_hits.inc(stats.artifact_cache_hits)
            if stats.artifact_cache_misses:
                self._m_artifact_misses.inc(stats.artifact_cache_misses)
            if stats.worker_crashes:
                self._m_worker_crashes.inc(stats.worker_crashes)

        if self.query_log is None:
            return
        text = ""
        if spec is not None:
            try:
                # Same normal form the plan cache keys on, so one statement
                # shape shares a hash across syntactic variants.
                text = to_sql(spec, include_name=False)
            except PlanError:
                text = spec.name
        self.query_log.append(
            QueryLogRecord(
                query_name=spec.name if spec is not None else "",
                sql_hash=sql_hash(text),
                mode=mode.value,
                backend=backend,
                plan_fingerprint=plan_fingerprint,
                session=session.name,
                admission_wait_seconds=queued_seconds,
                duration_seconds=duration_seconds,
                output_rows=output_rows,
                op_seconds=op_seconds,
                cache=cache,
                adaptive=adaptive,
                degradations=degradations,
                outcome=outcome,
                error=str(error) if error is not None else "",
            )
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _plan_key(
        self,
        spec: QuerySpec,
        mode: ExecutionMode,
        options: ExecutionOptions,
        versions: Dict[str, int],
    ) -> Optional[PlanCacheKey]:
        try:
            text = to_sql(spec, include_name=False)
        except PlanError:
            # The rare spec shapes SQL cannot round-trip are simply not
            # plan-cached.
            return None
        token = repr(
            (
                options.optimizer,
                options.estimation_error,
                bool(options.resolved_execution().encodings),
            )
        )
        return PlanCacheKey(
            text=text,
            mode=mode.value,
            versions=tuple(sorted(versions.items())),
            options_token=token,
        )

    def _execute(
        self,
        session: Session,
        source: Union[str, QuerySpec],
        mode: ExecutionMode,
        options: Optional[ExecutionOptions],
        name: Optional[str],
    ) -> Union[QueryResult, ExplainResult]:
        options = options or ExecutionOptions()
        spec: Optional[QuerySpec] = None
        queued_seconds = 0.0
        started = time.monotonic()
        try:
            queued_seconds = self._admit()
        except AdmissionRejected as error:
            self._observe_query(
                session,
                source if isinstance(source, QuerySpec) else None,
                mode,
                "rejected",
                queued_seconds=time.monotonic() - started,
                duration_seconds=0.0,
                error=error,
            )
            raise
        memory_key: Optional[str] = None
        token_id: Optional[int] = None
        snapshot = None
        try:
            memory_key = self._reserve_memory()
            explain = False
            if isinstance(source, str):
                compiled = compile_statement(
                    source, self.database.catalog, name=name
                )
                spec = compiled.query
                explain = compiled.explain
            else:
                spec = source
            if explain:
                explained = self.database.explain(spec, mode=mode, options=options)
                self._observe_query(
                    session,
                    spec,
                    mode,
                    "ok",
                    queued_seconds=queued_seconds,
                    duration_seconds=time.monotonic() - started,
                    stats=explained.stats,
                )
                return explained

            snapshot = self.database.catalog.snapshot(
                ref.table for ref in spec.relations
            )
            cached_plan = None
            key = None
            if self._plan_cache is not None:
                key = self._plan_key(spec, mode, options, snapshot.versions())
                if key is not None:
                    cached_plan = self._plan_cache.get(key)

            # Deadline: explicit per-query timeout wins; otherwise the
            # server default, tightened to the shed timeout for queries
            # that had to queue.
            timeout = options.resolved_execution().timeout_seconds
            if timeout is None:
                timeout = self.config.default_timeout_seconds
            shed = False
            if queued_seconds > 0 and self.config.shed_timeout_seconds is not None:
                if timeout is None or self.config.shed_timeout_seconds < timeout:
                    timeout = self.config.shed_timeout_seconds
                    shed = True
            token = options.cancel
            if token is None:
                token = CancelToken(timeout)
                options = dc_replace(options, cancel=token)
            token_id = id(token)
            with self._cond:
                if self._closed:
                    # Raced a close: surface the typed rejection rather
                    # than starting work close() will not wait for.
                    self._stats.rejected_closed += 1
                    raise AdmissionRejected(
                        "server is closed", retry_after_seconds=0.0, reason="closed"
                    )
                self._active_tokens[token_id] = token

            result = self.database.execute(
                spec,
                mode=mode,
                plan=cached_plan,
                options=options,
                snapshot=snapshot,
            )

            if key is not None and cached_plan is None:
                self._plan_cache.put(key, result.plan)
            if queued_seconds > 0:
                result.stats.record_degradation(
                    f"admission:queued:{queued_seconds * 1e3:.0f}ms"
                )
            if shed:
                result.stats.record_degradation(
                    f"admission:shed-timeout:{timeout:.3f}s"
                )
            elapsed = time.monotonic() - started
            self._record_latency(elapsed)
            with self._cond:
                self._stats.completed += 1
            self._observe_query(
                session,
                spec,
                mode,
                "ok",
                queued_seconds=queued_seconds,
                duration_seconds=elapsed,
                result=result,
            )
            return result
        except AdmissionRejected as error:
            self._observe_query(
                session,
                spec,
                mode,
                "rejected",
                queued_seconds=queued_seconds,
                duration_seconds=time.monotonic() - started,
                error=error,
            )
            raise
        except BaseException as error:
            with self._cond:
                self._stats.failed += 1
            self._observe_query(
                session,
                spec,
                mode,
                self._outcome_of(error),
                queued_seconds=queued_seconds,
                duration_seconds=time.monotonic() - started,
                # Typed deadline/cancel errors carry the aborted run's
                # partial statistics.
                stats=getattr(error, "stats", None),
                error=error,
            )
            raise
        finally:
            if snapshot is not None:
                snapshot.release()
            if token_id is not None:
                with self._cond:
                    self._active_tokens.pop(token_id, None)
            self._release_memory(memory_key)
            self._release_slot()
