"""Per-client session handles for the concurrent serving layer.

A :class:`Session` is a thin, cheap handle a client holds onto a
:class:`~repro.engine.server.Server`: it carries the client's default
execution mode/options and per-session counters, and funnels every query
through the server's admission control.  Sessions are *not* transactional
— isolation is per query (each admitted query pins its own catalog
snapshot) — and a single session may be used from multiple threads; the
server serializes nothing per session, only global admission.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Optional, Union

from repro.engine.modes import ExecutionMode
from repro.errors import ReproError
from repro.query import QuerySpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.database import ExecutionOptions, ExplainResult, QueryResult
    from repro.engine.server import Server


class Session:
    """One client's handle on a :class:`~repro.engine.server.Server`."""

    def __init__(
        self,
        server: "Server",
        session_id: int,
        name: Optional[str] = None,
        mode: Optional[ExecutionMode] = None,
        options: Optional["ExecutionOptions"] = None,
    ) -> None:
        self.server = server
        self.session_id = session_id
        self.name = name or f"session-{session_id}"
        self.default_mode = mode
        self.default_options = options
        self.queries_completed = 0
        self.queries_failed = 0
        self.queries_rejected = 0
        self._closed = False
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Query entry points
    # ------------------------------------------------------------------
    def sql(
        self,
        text: str,
        mode: Optional[ExecutionMode] = None,
        options: Optional["ExecutionOptions"] = None,
        name: Optional[str] = None,
    ) -> Union["QueryResult", "ExplainResult"]:
        """Compile and run one SQL statement through server admission."""
        return self._submit(text, mode, options, name)

    def execute(
        self,
        query: QuerySpec,
        mode: Optional[ExecutionMode] = None,
        options: Optional["ExecutionOptions"] = None,
    ) -> "QueryResult":
        """Run a pre-built :class:`QuerySpec` through server admission."""
        return self._submit(query, mode, options, None)

    def _submit(self, source, mode, options, name):
        if self._closed:
            raise ReproError(f"session {self.name!r} is closed")
        resolved_mode = mode or self.default_mode or ExecutionMode.RPT
        resolved_options = options or self.default_options
        try:
            result = self.server._execute(
                self, source, resolved_mode, resolved_options, name
            )
        except ReproError as error:
            from repro.errors import AdmissionRejected

            with self._lock:
                if isinstance(error, AdmissionRejected):
                    self.queries_rejected += 1
                else:
                    self.queries_failed += 1
            raise
        with self._lock:
            self.queries_completed += 1
        return result

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Detach from the server; idempotent.  In-flight queries finish."""
        if self._closed:
            return
        self._closed = True
        self.server._forget_session(self)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Session({self.name!r}, completed={self.queries_completed}, "
            f"rejected={self.queries_rejected})"
        )
