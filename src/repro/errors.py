"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by the library derives from
:class:`ReproError` so that callers can distinguish library failures from
programming mistakes (``TypeError``, ``KeyError`` escaping from NumPy, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A table, column, or datatype definition is invalid or inconsistent."""


class CatalogError(ReproError):
    """A catalog lookup failed or a registration conflicts with an existing entry."""


class PlanError(ReproError):
    """A logical or physical plan is malformed (e.g. disconnected join, missing input)."""


class ExecutionError(ReproError):
    """A runtime failure while executing a physical plan."""


class QueryTimeout(ReproError):
    """A query exceeded its ``timeout_seconds`` deadline.

    Carries the partial :class:`~repro.exec.statistics.ExecutionStats`
    accumulated up to the point of expiry in ``stats`` (``None`` when the
    deadline fired before any statistics existed).
    """

    def __init__(self, message: str, stats: "object | None" = None) -> None:
        self.stats = stats
        super().__init__(message)


class QueryCancelled(ReproError):
    """A query was cancelled through its :class:`~repro.exec.faults.CancelToken`.

    Like :class:`QueryTimeout`, carries the partial execution statistics in
    ``stats`` when available.
    """

    def __init__(self, message: str, stats: "object | None" = None) -> None:
        self.stats = stats
        super().__init__(message)


class BackendUnavailable(ExecutionError):
    """An execution backend could not be brought up (e.g. pool start failed).

    ``Database.execute`` catches this and walks the degradation ladder
    (process → parallel → serial) instead of failing the query.
    """


class MemoryExhausted(ExecutionError):
    """The memory governor could not reserve working memory within budget.

    The executor catches this once per reservation, synchronously spills
    every evictable reservation, and retries before giving up.
    """


class FaultInjected(ExecutionError):
    """A deterministic fault fired at an injection site (see ``exec/faults.py``).

    Raised only when no recovery path exists for the site; recoverable sites
    (worker crashes, transient shm errors, spill failures) are translated
    into their real-world failure shapes instead.
    """


class OptimizerError(ReproError):
    """The optimizer could not produce a plan for the given query."""


class AcyclicityError(ReproError):
    """An operation that requires an acyclic query was invoked on a cyclic one."""


class SqlError(ReproError):
    """A SQL front-end failure: lexing, parsing, binding, or lowering.

    Carries the source text and the character offset of the offending
    position; ``str()`` renders the message with a ``line:column`` location
    and a caret (``^``) under the source position::

        unknown column 'prod_year' of table 'title' (line 2, column 18)
          WHERE t.prod_year > 1990
                  ^
    """

    def __init__(self, message: str, source: "str | None" = None, pos: "int | None" = None) -> None:
        self.message = message
        self.source = source
        self.pos = pos
        super().__init__(self.render())

    @property
    def line(self) -> "int | None":
        """1-based line number of the error position (None without source)."""
        if self.source is None or self.pos is None:
            return None
        return self.source.count("\n", 0, self.pos) + 1

    @property
    def column(self) -> "int | None":
        """1-based column number of the error position (None without source)."""
        if self.source is None or self.pos is None:
            return None
        return self.pos - self.source.rfind("\n", 0, self.pos)

    def render(self) -> str:
        """The full diagnostic: message, location, source line, and caret."""
        if self.source is None or self.pos is None:
            return self.message
        pos = min(max(self.pos, 0), len(self.source))
        line_start = self.source.rfind("\n", 0, pos) + 1
        line_end = self.source.find("\n", line_start)
        if line_end == -1:
            line_end = len(self.source)
        source_line = self.source[line_start:line_end]
        caret_indent = " " * (pos - line_start)
        return (
            f"{self.message} (line {self.line}, column {self.column})\n"
            f"  {source_line}\n"
            f"  {caret_indent}^"
        )


class AdmissionRejected(ReproError):
    """The serving layer declined to admit a query (typed backpressure).

    Raised by :class:`~repro.engine.server.Server` when the bounded
    admission queue is full, an admission wait times out, or the server's
    memory budget cannot cover another concurrent query.  Carries a
    ``retry_after_seconds`` hint (derived from observed service latency
    and queue depth) so closed-loop clients can back off instead of
    hammering an overloaded server, plus a machine-readable ``reason``
    (``"queue_full"`` / ``"timeout"`` / ``"memory"`` / ``"closed"``).
    """

    def __init__(
        self,
        message: str,
        retry_after_seconds: float = 0.1,
        reason: str = "overload",
    ) -> None:
        super().__init__(message)
        self.retry_after_seconds = float(retry_after_seconds)
        self.reason = reason


class WorkloadError(ReproError):
    """A workload generator or query-set definition is invalid."""


class BenchmarkError(ReproError):
    """A benchmark harness configuration is invalid."""
