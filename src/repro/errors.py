"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by the library derives from
:class:`ReproError` so that callers can distinguish library failures from
programming mistakes (``TypeError``, ``KeyError`` escaping from NumPy, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A table, column, or datatype definition is invalid or inconsistent."""


class CatalogError(ReproError):
    """A catalog lookup failed or a registration conflicts with an existing entry."""


class PlanError(ReproError):
    """A logical or physical plan is malformed (e.g. disconnected join, missing input)."""


class ExecutionError(ReproError):
    """A runtime failure while executing a physical plan."""


class OptimizerError(ReproError):
    """The optimizer could not produce a plan for the given query."""


class AcyclicityError(ReproError):
    """An operation that requires an acyclic query was invoked on a cyclic one."""


class WorkloadError(ReproError):
    """A workload generator or query-set definition is invalid."""


class BenchmarkError(ReproError):
    """A benchmark harness configuration is invalid."""
