"""Vectorized execution layer: kernels, chunks, operators, executors, statistics."""

from repro.exec.chunk import DEFAULT_CHUNK_SIZE, DataChunk, iter_chunks, num_chunks
from repro.exec.join_phase import JoinPhaseExecutor, JoinPhaseOptions
from repro.exec.kernels import (
    JoinMatches,
    bloom_probe_cost,
    combine_key_columns,
    combine_key_columns_pair,
    hash_probe_cost,
    match_keys,
    semi_join_mask,
)
from repro.exec.parallel import ParallelismModel, simulate_parallel_cost
from repro.exec.relation import BoundRelation, IntermediateResult, bind_relations
from repro.exec.spill import SpillConfig, simulate_spill
from repro.exec.statistics import (
    ExecutionStats,
    JoinStepStats,
    PhaseTimings,
    TransferStepStats,
    merge_reduced_rows,
)
from repro.exec.transfer import TransferExecutor, TransferOptions

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "BoundRelation",
    "DataChunk",
    "ExecutionStats",
    "IntermediateResult",
    "JoinMatches",
    "JoinPhaseExecutor",
    "JoinPhaseOptions",
    "JoinStepStats",
    "ParallelismModel",
    "PhaseTimings",
    "SpillConfig",
    "TransferExecutor",
    "TransferOptions",
    "TransferStepStats",
    "bind_relations",
    "bloom_probe_cost",
    "combine_key_columns",
    "combine_key_columns_pair",
    "hash_probe_cost",
    "iter_chunks",
    "match_keys",
    "merge_reduced_rows",
    "num_chunks",
    "semi_join_mask",
    "simulate_parallel_cost",
    "simulate_spill",
]
