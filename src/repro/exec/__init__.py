"""Vectorized execution layer: kernels, chunks, operators, executors, statistics."""

from repro.exec.chunk import DEFAULT_CHUNK_SIZE, DataChunk, iter_chunks, num_chunks
from repro.exec.join_phase import JoinPhaseExecutor, JoinPhaseOptions
from repro.exec.kernels import (
    HashIndex,
    JoinMatches,
    as_hash_index,
    bloom_probe_cost,
    combine_key_columns,
    combine_key_columns_pair,
    hash_probe_cost,
    match_keys,
    semi_join_mask,
)
from repro.exec.parallel import ParallelismModel, simulate_parallel_cost
from repro.exec.pipeline import (
    ChunkedBackend,
    ExecutionBackend,
    PipelineExecutor,
    PipelineOptions,
    PipelineResult,
    SerialBackend,
    compute_aggregates,
    make_backend,
)
from repro.exec.relation import BoundRelation, IntermediateResult, bind_relations
from repro.exec.spill import SpillConfig, simulate_spill
from repro.exec.statistics import (
    ExecutionStats,
    JoinStepStats,
    OpStats,
    PhaseTimings,
    TransferStepStats,
    merge_reduced_rows,
)
from repro.exec.transfer import TransferExecutor, TransferOptions

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "BoundRelation",
    "ChunkedBackend",
    "DataChunk",
    "ExecutionBackend",
    "ExecutionStats",
    "HashIndex",
    "IntermediateResult",
    "JoinMatches",
    "JoinPhaseExecutor",
    "JoinPhaseOptions",
    "JoinStepStats",
    "OpStats",
    "ParallelismModel",
    "PhaseTimings",
    "PipelineExecutor",
    "PipelineOptions",
    "PipelineResult",
    "SerialBackend",
    "SpillConfig",
    "TransferExecutor",
    "TransferOptions",
    "TransferStepStats",
    "as_hash_index",
    "bind_relations",
    "bloom_probe_cost",
    "combine_key_columns",
    "combine_key_columns_pair",
    "compute_aggregates",
    "hash_probe_cost",
    "iter_chunks",
    "make_backend",
    "match_keys",
    "merge_reduced_rows",
    "num_chunks",
    "semi_join_mask",
    "simulate_parallel_cost",
    "simulate_spill",
]
