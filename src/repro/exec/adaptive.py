"""Adaptive transfer execution: a runtime feedback loop over the transfer phase.

The transfer phase is compiled statically: every forward/backward step of the
:class:`~repro.core.transfer_schedule.TransferSchedule` becomes a
``BloomBuild``/``BloomProbe`` pair (or a ``SemiJoinReduce``) that always runs
to completion, even when the workload's filters stopped pruning several steps
ago.  Because Bloom transfer is *purely reductive* — a skipped pass can only
leave extra rows for the join phase to eliminate, never change the final
result — the executor is free to stop paying for passes that no longer pay
for themselves.

:class:`AdaptiveTransferController` implements that feedback loop over a
compiled :class:`~repro.plan.physical.PhysicalPlan`:

* **Yield-driven cancellation** — after every executed transfer probe the
  executor reports the step's pruning yield (fraction of target rows
  eliminated).  When a step's yield falls below ``min_yield``, the
  controller cancels the target relation's remaining transfer probes: the
  observed evidence says filters are no longer reducing it, so the remaining
  passes are (probabilistically) pure overhead.
* **Dead-build elimination** — cancelling probes orphans the builds that
  exist only to feed them.  The controller walks the plan's static
  ``provides``/``requires`` dependency metadata: a transfer build whose
  provided ``stage:<id>`` token has no pending non-cancelled consumer is
  cancelled too, so neither the filter construction nor its memory is paid.
* **Wholesale backward-pass skip** — the backward pass reduces each relation
  with its (by then forward-reduced) parent.  If the forward pass left every
  backward-pass build side effectively unreduced (cumulative reduction below
  ``min_yield``), the backward filters carry no information the forward pass
  did not already apply, and the whole pass is skipped at once.

Every decision is made *between* ops — after a probe's morsel results have
been gathered and the relation reduced — so the controller sees identical
inputs under the serial, chunked, and morsel-parallel backends and its
decisions (hence the surviving row sets, hence the final results) are
bit-identical across all of them.

The controller is deliberately execution-agnostic: it never touches
relations or filters, it only answers :meth:`should_skip` and consumes
:meth:`observe` calls.  The :class:`~repro.exec.pipeline.PipelineExecutor`
owns the actual skipping (and the NDV-based filter sizing and exact-bitmap
downgrades that ride along under the same config gate).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.core.transfer_schedule import TransferPass
from repro.plan.physical import (
    SCOPE_TRANSFER,
    BloomBuild,
    BloomProbe,
    PhysicalPlan,
    SemiJoinReduce,
)

#: Default minimum per-step pruning yield: a transfer step must eliminate at
#: least this fraction of its target's rows for the target to keep receiving
#: passes (~1%, the point where a pass's probe cost stops paying for itself).
DEFAULT_MIN_YIELD = 0.01

#: Pass tag stamped onto backward-pass transfer ops by the compiler
#: (``compile_transfer_ops`` copies ``step.pass_.value``).
_BACKWARD = TransferPass.BACKWARD.value


def _is_transfer_probe(op) -> bool:
    if isinstance(op, SemiJoinReduce):
        return True
    return isinstance(op, BloomProbe) and op.scope == SCOPE_TRANSFER


def _is_transfer_build(op) -> bool:
    return isinstance(op, BloomBuild) and op.scope == SCOPE_TRANSFER


class AdaptiveTransferController:
    """Runtime skip decisions over the transfer ops of one compiled plan.

    One controller serves one plan execution.  The executor asks
    :meth:`should_skip` before running each transfer op and reports each
    executed probe's reduction through :meth:`observe`; both calls happen on
    the coordinator thread at op granularity (the morsel-gather barrier), so
    decisions are deterministic for a given plan and data regardless of
    backend.
    """

    def __init__(self, plan: PhysicalPlan, min_yield: float = DEFAULT_MIN_YIELD) -> None:
        if not 0.0 <= min_yield <= 1.0:
            raise ValueError(f"adaptive min yield must be in [0, 1], got {min_yield}")
        self.min_yield = float(min_yield)
        self._ops = tuple(plan)
        #: Op indices cancelled by an adaptive decision.
        self._cancelled: Set[int] = set()
        #: Step ids whose probe (and possibly build) was cancelled.
        self.cancelled_steps: Set[int] = set()
        #: Human-readable decision log (surfaced in tests / debugging).
        self.decisions: List[str] = []
        #: alias -> rows when first observed as a transfer target.
        self._initial_rows: Dict[str, int] = {}
        #: alias -> rows eliminated from it by executed forward-pass steps.
        self._forward_eliminated: Dict[str, int] = {}
        self._backward_decided = False
        # Static consumer map over the dependency metadata: token -> indices
        # of ops that require it (what dead-build elimination walks).
        self._consumers: Dict[str, List[int]] = {}
        for index, op in enumerate(self._ops):
            for token in op.requires():
                self._consumers.setdefault(token, []).append(index)
        self._backward_sources = frozenset(
            op.source.alias
            for op in self._ops
            if _is_transfer_probe(op) and op.pass_ == _BACKWARD
        )

    # ------------------------------------------------------------------
    # Executor-facing API
    # ------------------------------------------------------------------
    def should_skip(self, index: int, op) -> bool:
        """True when the adaptive controller has cancelled op ``index``.

        The first backward-pass transfer op triggers the wholesale
        backward-pass decision (every earlier forward observation is in by
        then, since ops execute in plan order).
        """
        if (
            not self._backward_decided
            and (_is_transfer_build(op) or _is_transfer_probe(op))
            and op.pass_ == _BACKWARD
        ):
            self._decide_backward(index)
        return index in self._cancelled

    def observe(self, index: int, op, rows_before: int, rows_after: int) -> None:
        """Record one executed transfer probe's reduction and react to it."""
        alias = op.target.alias
        self._initial_rows.setdefault(alias, rows_before)
        eliminated = max(rows_before - rows_after, 0)
        if op.pass_ != _BACKWARD:
            self._forward_eliminated[alias] = (
                self._forward_eliminated.get(alias, 0) + eliminated
            )
        yield_ = (eliminated / rows_before) if rows_before else 0.0
        if yield_ < self.min_yield:
            self._cancel_target(alias, after_index=index)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _cancel_target(self, alias: str, after_index: int) -> None:
        """Cancel ``alias``'s pending transfer probes and the builds feeding only them."""
        newly: List[int] = []
        for index in range(after_index + 1, len(self._ops)):
            op = self._ops[index]
            if index in self._cancelled or not _is_transfer_probe(op):
                continue
            if op.target.alias == alias:
                self._cancelled.add(index)
                self.cancelled_steps.add(op.step_id)
                newly.append(index)
        if newly:
            self.decisions.append(
                f"cancel {len(newly)} pending probe(s) of {alias!r} (yield < {self.min_yield:g})"
            )
            self._cancel_dead_builds(after_index)

    def _cancel_dead_builds(self, after_index: int) -> None:
        """Cancel pending transfer builds whose outputs have no live consumer."""
        for index in range(after_index + 1, len(self._ops)):
            op = self._ops[index]
            if index in self._cancelled or not _is_transfer_build(op):
                continue
            live = [
                consumer
                for token in op.provides()
                for consumer in self._consumers.get(token, ())
                if consumer > after_index and consumer not in self._cancelled
            ]
            if not live:
                self._cancelled.add(index)
                self.cancelled_steps.add(op.step_id)

    def _decide_backward(self, at_index: int) -> None:
        """Skip the backward pass wholesale when its build sides are unreduced.

        "Unreduced" is yield-relative: a build side whose cumulative
        forward-pass reduction stayed below ``min_yield`` of its initial rows
        carries (to within the controller's own tolerance) no new information
        for the relations it would reduce.
        """
        self._backward_decided = True
        for alias in self._backward_sources:
            initial = self._initial_rows.get(alias, 0)
            eliminated = self._forward_eliminated.get(alias, 0)
            if initial and eliminated / initial >= self.min_yield:
                return  # at least one build side was genuinely reduced
        cancelled = 0
        for index in range(at_index, len(self._ops)):
            op = self._ops[index]
            if index in self._cancelled:
                continue
            if (_is_transfer_build(op) or _is_transfer_probe(op)) and op.pass_ == _BACKWARD:
                self._cancelled.add(index)
                self.cancelled_steps.add(op.step_id)
                cancelled += 1
        if cancelled:
            self.decisions.append(
                f"skip backward pass wholesale ({cancelled} op(s); "
                "forward pass left every build side unreduced)"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cancelled_op_count(self) -> int:
        """Number of plan ops cancelled so far."""
        return len(self._cancelled)

    def is_cancelled_step(self, step_id: int) -> bool:
        """True when ``step_id``'s probe or build was adaptively cancelled."""
        return step_id in self.cancelled_steps
