"""Data chunks and selection vectors.

DuckDB's push-based engine processes data in fixed-size *data chunks*
(default 2048 tuples) and marks surviving tuples with a *selection vector*
rather than compacting eagerly.  The paper's ``ProbeBF`` operator outputs a
chunk "with an updated selection vector" after a vectorized Bloom probe, and
implements a fast bit-vector → selection-vector conversion.

This module mirrors those concepts so the chunked execution paths (scans,
the Figure 16 microbenchmark, the simulated parallel model) process data in
the same granularity as the original system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

import numpy as np

from repro.errors import ExecutionError

#: Default tuples per chunk, matching DuckDB's vector size.
DEFAULT_CHUNK_SIZE = 2048


@dataclass
class DataChunk:
    """A batch of column vectors plus a selection vector of valid rows.

    Attributes
    ----------
    columns:
        Mapping of (qualified) column name to a NumPy array; all arrays have
        the same *physical* length.
    selection:
        Indices of the valid rows within the physical arrays, or ``None``
        when every row is valid.
    """

    columns: Dict[str, np.ndarray]
    selection: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        lengths = {arr.shape[0] for arr in self.columns.values()}
        if len(lengths) > 1:
            raise ExecutionError(f"chunk columns have differing lengths: {lengths}")

    @property
    def physical_size(self) -> int:
        """Number of physical rows stored in the chunk."""
        if not self.columns:
            return 0
        return int(next(iter(self.columns.values())).shape[0])

    @property
    def size(self) -> int:
        """Number of *valid* rows (after applying the selection vector)."""
        if self.selection is None:
            return self.physical_size
        return int(self.selection.shape[0])

    def column(self, name: str) -> np.ndarray:
        """Return the valid values of a column (selection applied)."""
        try:
            values = self.columns[name]
        except KeyError:
            raise ExecutionError(f"chunk has no column {name!r}") from None
        if self.selection is None:
            return values
        return values[self.selection]

    def apply_mask(self, mask: np.ndarray) -> "DataChunk":
        """Refine the selection with a boolean mask over the *valid* rows.

        This is the bit-vector → selection-vector conversion: the Bloom
        probe produces a boolean hit vector over the currently valid rows and
        the chunk records which physical rows remain.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != self.size:
            raise ExecutionError(
                f"mask length {mask.shape[0]} does not match chunk size {self.size}"
            )
        valid_positions = np.nonzero(mask)[0]
        if self.selection is None:
            new_selection = valid_positions.astype(np.int64)
        else:
            new_selection = self.selection[valid_positions]
        return DataChunk(columns=self.columns, selection=new_selection)

    def compact(self) -> "DataChunk":
        """Materialize the selection: physically gather the valid rows."""
        if self.selection is None:
            return self
        gathered = {name: arr[self.selection] for name, arr in self.columns.items()}
        return DataChunk(columns=gathered, selection=None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataChunk(cols={list(self.columns)}, size={self.size})"


def iter_chunks(
    columns: Dict[str, np.ndarray],
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Iterator[DataChunk]:
    """Split column arrays into successive :class:`DataChunk` batches."""
    if chunk_size <= 0:
        raise ExecutionError("chunk size must be positive")
    if not columns:
        return
    total = next(iter(columns.values())).shape[0]
    for start in range(0, total, chunk_size):
        end = min(start + chunk_size, total)
        yield DataChunk(columns={name: arr[start:end] for name, arr in columns.items()})


def num_chunks(total_rows: int, chunk_size: int = DEFAULT_CHUNK_SIZE) -> int:
    """Number of chunks needed for ``total_rows`` rows."""
    if total_rows <= 0:
        return 0
    return (total_rows + chunk_size - 1) // chunk_size
