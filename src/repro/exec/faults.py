"""Deterministic fault injection and cooperative cancellation.

The fault-tolerance layer (process-pool crash recovery, the degradation
ladder in ``Database.execute``, spill-then-retry under the memory governor)
is only trustworthy if every recovery path can be exercised on demand.  This
module provides that: a seeded :class:`FaultPlan` names *sites* in the
runtime (``process.task``, ``shm.attach``, ``spill.write``, ...) and a rate,
and the :class:`FaultInjector` decides — purely from ``(seed, site,
occurrence counter)`` — whether each occurrence fires.  Same plan, same
execution → same faults, every time.

Sites currently wired into the runtime:

==================  =========================================================
site                effect when it fires
==================  =========================================================
``process.task``    the worker process running a morsel dies (``os._exit``)
``process.pool``    starting the worker pool fails (``BackendUnavailable``)
``parallel.pool``   starting the thread pool fails (``BackendUnavailable``)
``shm.attach``      attaching a shared-memory segment raises transiently
``shm.share``       publishing an array into shared memory fails
``shm.unlink``      unlinking a segment fails transiently (bounded retries)
``spill.write``     the spill handler's write raises (victim is restored)
``spill.read``      reloading a spilled reservation raises
``alloc.reserve``   a governor reservation raises ``MemoryExhausted``
``op.latency``      the operator sleeps ``latency`` seconds before running
``column.decode``   decoding an encoded column fails (engine uses raw path)
==================  =========================================================

The plan is configured per-process via :func:`configure` (from
``ExecutionConfig.faults`` or the ``REPRO_FAULTS`` environment variable) and
shipped to pool workers through the pool initializer so that worker-side
sites fire deterministically too.

:class:`CancelToken` lives here as well: the cooperative deadline /
cancellation primitive checked at morsel-gather barriers and inside long
kernels at chunk granularity.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import FaultInjected, QueryCancelled, QueryTimeout

#: Environment variable holding the fault-plan spec for this process.
ENV_FAULTS = "REPRO_FAULTS"

#: All sites the runtime consults — ``FaultPlan.parse`` validates against this.
KNOWN_SITES = (
    "process.task",
    "process.pool",
    "parallel.pool",
    "shm.attach",
    "shm.share",
    "shm.unlink",
    "spill.write",
    "spill.read",
    "alloc.reserve",
    "op.latency",
    "column.decode",
)


def _mix64(value: int) -> int:
    """splitmix64 finalizer — the same mixer the hash kernels use."""
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


def _site_key(site: str) -> int:
    """A stable 64-bit key for a site name.

    ``hash(str)`` is randomized per interpreter (PYTHONHASHSEED), which would
    desynchronize parent and pool-worker injectors — fold the bytes instead.
    """
    key = 0
    for byte in site.encode("utf-8"):
        key = _mix64(key ^ byte)
    return key


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible fault schedule: which sites may fire, how often.

    ``spec()`` round-trips through :meth:`parse`, so the plan can be carried
    in an environment variable or a pool-initializer argument unchanged.
    """

    seed: int = 0
    rate: float = 0.0
    sites: Tuple[str, ...] = ()  # empty = every known site
    latency: float = 0.0  # seconds slept when ``op.latency`` fires

    @staticmethod
    def parse(spec: str) -> "FaultPlan":
        """Parse ``"seed:1234,rate:0.05[,sites:a|b][,latency:0.01]"``."""
        seed, rate, sites, latency = 0, 0.0, (), 0.0
        text = spec.strip()
        if not text:
            return FaultPlan()
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            if ":" not in item:
                raise FaultInjected(f"malformed fault-plan entry {item!r} in {spec!r}")
            key, _, value = item.partition(":")
            key = key.strip().lower()
            value = value.strip()
            try:
                if key == "seed":
                    seed = int(value)
                elif key == "rate":
                    rate = float(value)
                elif key == "latency":
                    latency = float(value)
                elif key == "sites":
                    sites = tuple(s.strip() for s in value.split("|") if s.strip())
                else:
                    raise FaultInjected(
                        f"unknown fault-plan key {key!r} in {spec!r} "
                        f"(expected seed/rate/sites/latency)"
                    )
            except ValueError as error:
                raise FaultInjected(
                    f"bad fault-plan value {value!r} for {key!r} in {spec!r}"
                ) from error
        for site in sites:
            if site not in KNOWN_SITES:
                raise FaultInjected(
                    f"unknown fault site {site!r} in {spec!r} "
                    f"(known: {', '.join(KNOWN_SITES)})"
                )
        if not 0.0 <= rate <= 1.0:
            raise FaultInjected(f"fault rate must be in [0, 1], got {rate} in {spec!r}")
        return FaultPlan(seed=seed, rate=rate, sites=sites, latency=latency)

    def spec(self) -> str:
        """The canonical spec string (``parse(plan.spec()) == plan``)."""
        parts = [f"seed:{self.seed}", f"rate:{self.rate}"]
        if self.sites:
            parts.append("sites:" + "|".join(self.sites))
        if self.latency:
            parts.append(f"latency:{self.latency}")
        return ",".join(parts)

    def covers(self, site: str) -> bool:
        """Whether this plan may ever fire at ``site``."""
        return self.rate > 0.0 and (not self.sites or site in self.sites)


@dataclass
class FaultInjector:
    """Decides, deterministically, whether each occurrence of a site fires.

    Each site keeps its own occurrence counter; occurrence ``n`` of ``site``
    fires iff ``mix(seed, site, n)`` maps below ``rate`` in [0, 1).  The
    counters advance on every consult, so a fixed plan replayed over a fixed
    execution fires at exactly the same points.
    """

    plan: FaultPlan
    counters: Dict[str, int] = field(default_factory=dict)
    #: Per-site counts of occurrences that actually fired (observability:
    #: surfaced through :func:`injection_counts` into serving metrics).
    fired: Dict[str, int] = field(default_factory=dict)

    def should_fire(self, site: str) -> bool:
        """Consume one occurrence of ``site``; True if the fault fires."""
        if not self.plan.covers(site):
            return False
        count = self.counters.get(site, 0)
        self.counters[site] = count + 1
        mixed = _mix64((self.plan.seed & 0xFFFFFFFFFFFFFFFF) ^ _site_key(site) ^ count)
        hit = (mixed / 2.0**64) < self.plan.rate
        if hit:
            self.fired[site] = self.fired.get(site, 0) + 1
        return hit

    def fire(self, site: str, message: Optional[str] = None) -> None:
        """Raise :class:`FaultInjected` if ``site`` fires on this occurrence."""
        if self.should_fire(site):
            raise FaultInjected(message or f"injected fault at site:{site}")

    def latency(self, site: str = "op.latency") -> float:
        """Seconds of artificial latency for this occurrence (0.0 = none)."""
        if self.plan.latency <= 0.0:
            return 0.0
        return self.plan.latency if self.should_fire(site) else 0.0


# ---------------------------------------------------------------------------
# Per-process active injector
# ---------------------------------------------------------------------------
_INJECTOR: Optional[FaultInjector] = None
_CONFIGURED = False


def configure(spec: Optional[str]) -> Optional[FaultInjector]:
    """Install the process-wide fault injector from a spec string.

    ``None`` / empty spec clears injection.  Reconfiguring with the same
    spec restarts the occurrence counters, which is what reproducibility
    wants: one configure call per sweep, counters advancing across queries.
    """
    global _INJECTOR, _CONFIGURED
    _CONFIGURED = True
    if not spec:
        _INJECTOR = None
        return None
    plan = FaultPlan.parse(spec)
    if plan.rate <= 0.0:
        _INJECTOR = None
        return None
    _INJECTOR = FaultInjector(plan=plan)
    return _INJECTOR


def active_injector() -> Optional[FaultInjector]:
    """The process-wide injector (lazily configured from ``REPRO_FAULTS``)."""
    global _CONFIGURED
    if not _CONFIGURED:
        configure(os.environ.get(ENV_FAULTS))
    return _INJECTOR


def clear() -> None:
    """Remove the active injector and forget the env was ever consulted."""
    global _INJECTOR, _CONFIGURED
    _INJECTOR = None
    _CONFIGURED = False


def should_fire(site: str) -> bool:
    """Module-level convenience: consult the active injector for ``site``."""
    injector = active_injector()
    return injector is not None and injector.should_fire(site)


def fire(site: str, message: Optional[str] = None) -> None:
    """Module-level convenience: raise if ``site`` fires on this occurrence."""
    injector = active_injector()
    if injector is not None:
        injector.fire(site, message)


def injected_latency() -> float:
    """Artificial operator latency for this occurrence (0.0 without a plan)."""
    injector = active_injector()
    return injector.latency() if injector is not None else 0.0


def injection_counts() -> Dict[str, int]:
    """Per-site counts of faults the active injector has fired.

    Empty without an active injector.  Reads the module state directly
    (no lazy env configure) so metrics sampling never changes injection
    behaviour.
    """
    injector = _INJECTOR
    return dict(injector.fired) if injector is not None else {}


# ---------------------------------------------------------------------------
# Cooperative cancellation
# ---------------------------------------------------------------------------
class CancelToken:
    """A deadline plus a manual cancel flag, checked cooperatively.

    The executor checks the token between operators; the serial and chunked
    backends check it at chunk granularity inside long kernels; the parallel
    and process backends check it before gathering each morsel result.
    ``check()`` raises :class:`~repro.errors.QueryTimeout` (deadline) or
    :class:`~repro.errors.QueryCancelled` (manual ``cancel()``), whichever
    tripped first.
    """

    __slots__ = ("deadline", "timeout_seconds", "_cancelled")

    def __init__(self, timeout_seconds: Optional[float] = None) -> None:
        self.timeout_seconds = timeout_seconds
        self.deadline = (
            time.monotonic() + timeout_seconds if timeout_seconds is not None else None
        )
        self._cancelled = False

    def cancel(self) -> None:
        """Request cancellation; the next ``check()`` raises ``QueryCancelled``."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def expired(self) -> bool:
        """Whether the deadline has passed (False without a deadline)."""
        return self.deadline is not None and time.monotonic() >= self.deadline

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (clamped at 0), or None without one."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.monotonic())

    def check(self) -> None:
        """Raise if cancelled or past the deadline; otherwise return."""
        if self._cancelled:
            raise QueryCancelled("query cancelled")
        if self.expired():
            raise QueryTimeout(
                f"query exceeded its {self.timeout_seconds}s deadline"
            )
