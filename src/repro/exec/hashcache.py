"""Query-lifetime hash cache: hash every key column at most once per query.

The predicate-transfer pipeline makes many Bloom build/probe passes over the
*same* key columns: a relation inserts its join keys into a forward-pass
filter, probes backward-pass filters over the same keys, and the join phase
may hash them yet again.  Each pass historically paid a fresh splitmix64
hash (plus the block bit-pattern derivation, the bulk of the per-key work)
over a freshly gathered key array.

:class:`HashCache` eliminates the redundancy with two granularities of
memoized pass, both pure functions of the key values (so replaying them is
bit-identical to hashing directly):

* **Full-column passes** (:meth:`bloom_pass`) over *all* rows of an
  immutable base column.  Computed only when some consumer touches the
  column while its relation is unreduced — then the pass costs no gather at
  all — and afterwards served to reduced consumers through one
  ``hashes[row_indices]`` gather (:meth:`peek_bloom_pass`).
* **Per-selection passes** (:meth:`selection_pass` /
  :meth:`store_selection_pass`) keyed by the identity of a relation's
  ``row_indices`` array: a transfer step's build and probe over the same
  relation state, or two steps between which the relation was not reduced,
  share one pass with zero re-gathering.

The radix-partitioned join path is deliberately *not* cached here: its
multiplicative hash is a single 64-bit multiply, cheaper than the gather a
replay would need.  Kernel-level callers that do hold a precomputed pass
can still feed it straight to :func:`~repro.exec.kernels.radix_partition`
(``hashes=``) and :class:`~repro.exec.kernels.PartitionedHashIndex`.

Entries are keyed by a *weakref-tracked token* of the underlying NumPy
buffers plus the column's *encoding token* (``"raw"`` unless block
encodings are active), which makes self-joins — several aliases over one
table — share a single pass per column while keeping a pass recorded over
raw buffers from aliasing one recorded under an encoded representation of
the same column.  Raw ``id()`` keys would be unsound here: CPython reuses
addresses, so a selection array allocated after a superseded one is
collected can receive the dead array's ``id`` and silently alias its
cached pass.  :class:`_ArrayTokens` hands out monotonically increasing
tokens that are retired (never reissued) when their array dies, so a
recycled address can never resurrect a stale entry — and the cache no
longer needs to pin superseded ``row_indices`` arrays alive just to keep
their ids stable.  The cache is populated and read only from the
executor's coordinator thread (morsel worker threads receive
already-gathered slices), so it needs no locking.

``hits`` counts pass reuses (a whole hashing pass skipped), ``misses``
fresh passes computed; they feed the per-op cache counters in
``ExecutionStats.op_stats``.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bloom.bloom_filter import hash_keys, key_patterns
from repro.errors import ExecutionError
from repro.storage.table import Table

#: A cached Bloom hashing pass: (splitmix64 hashes, block bit-patterns).
BloomPass = Tuple[np.ndarray, np.ndarray]


class _ArrayTokens:
    """Stable identity tokens for NumPy arrays, safe against ``id()`` reuse.

    ``token(array)`` returns the same integer for the same live array and a
    *fresh* integer for any array first seen later — even one allocated at a
    recycled address.  A weakref callback retires the mapping when the array
    dies, and tokens count monotonically upward, so a dead array's token is
    never reissued.  This is what makes it sound to key cache entries by
    array identity without holding the arrays alive.
    """

    __slots__ = ("_by_id", "_next")

    def __init__(self) -> None:
        # id(array) -> (weakref, token); the id is only a lookup accelerator,
        # the weakref decides whether the mapping still describes this array.
        self._by_id: Dict[int, Tuple[weakref.ref, int]] = {}
        self._next = 0

    def token(self, array: np.ndarray) -> int:
        key = id(array)
        entry = self._by_id.get(key)
        if entry is not None and entry[0]() is array:
            return entry[1]
        token = self._next
        self._next += 1

        def _retire(ref: weakref.ref, *, _key: int = key, _self: "_ArrayTokens" = self) -> None:
            current = _self._by_id.get(_key)
            if current is not None and current[0] is ref:
                del _self._by_id[_key]

        self._by_id[key] = (weakref.ref(array, _retire), token)
        return token

    def __len__(self) -> int:
        return len(self._by_id)


class HashCache:
    """Memoized per-column / per-selection hashing passes for one query."""

    #: Selection passes retained per column.  Relation states progress
    #: monotonically, so reuse only ever targets a recent state; keeping two
    #: covers interleaved self-join aliases while bounding memory.
    SELECTION_PASSES_PER_COLUMN = 2

    def __init__(self) -> None:
        self._tokens = _ArrayTokens()
        # (column-data token, encoding token) -> (hashes, patterns)
        self._full: Dict[Tuple[int, str], Tuple[np.ndarray, np.ndarray]] = {}
        # (column-data token, encoding token) -> most-recent-first list of
        # (row_indices token, hashes, patterns).  No strong reference to the
        # selection array: its *token* is what can never alias, so a
        # superseded ``row_indices`` is free to be collected.
        self._selection: Dict[
            Tuple[int, str], List[Tuple[int, np.ndarray, np.ndarray]]
        ] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Full-column passes
    # ------------------------------------------------------------------
    def bloom_pass(self, table: Table, column: str, encoding: str = "raw") -> BloomPass:
        """The (hashes, patterns) pass over one full base column.

        Computed on first request, replayed on every later one.
        """
        data = self._key_data(table, column)
        entry = self._full.get((self._tokens.token(data), encoding))
        if entry is not None:
            self.hits += 1
            return entry
        self.misses += 1
        hashes = hash_keys(data)
        patterns = key_patterns(hashes)
        self._full[(self._tokens.token(data), encoding)] = (hashes, patterns)
        return hashes, patterns

    def peek_bloom_pass(
        self, table: Table, column: str, encoding: str = "raw"
    ) -> Optional[BloomPass]:
        """An already-computed full-column pass, or None (never computes)."""
        data = self._key_data(table, column)
        return self._full.get((self._tokens.token(data), encoding))

    def adopt_full_pass(
        self, table: Table, column: str, bloom_pass: BloomPass, encoding: str = "raw"
    ) -> None:
        """Seed the cache with a full-column pass computed elsewhere.

        Used by the executor to replay a cross-query ``bloom_pass`` artifact
        into this query's cache; counts neither a hit nor a miss (the
        artifact cache's own counters record the reuse).
        """
        data = self._key_data(table, column)
        self._full[(self._tokens.token(data), encoding)] = (bloom_pass[0], bloom_pass[1])

    # ------------------------------------------------------------------
    # Per-selection passes
    # ------------------------------------------------------------------
    def selection_pass(
        self, table: Table, column: str, row_indices: np.ndarray, encoding: str = "raw"
    ) -> Optional[BloomPass]:
        """A cached pass over exactly this selection of the column, or None.

        The selection is identified by the ``row_indices`` array's identity
        *token* — every in-place reduction replaces the array (and a dead
        array's token is never reissued), so a stale pass can never be
        returned for a changed selection.
        """
        data = self._key_data(table, column)
        row_token = self._tokens.token(row_indices)
        for entry in self._selection.get((self._tokens.token(data), encoding), ()):
            if entry[0] == row_token:
                self.hits += 1
                return entry[1], entry[2]
        return None

    def store_selection_pass(
        self,
        table: Table,
        column: str,
        row_indices: np.ndarray,
        bloom_pass: BloomPass,
        encoding: str = "raw",
    ) -> None:
        """Cache a pass over one selection.

        Counts neither a hit nor a miss — the caller knows whether the pass
        was freshly hashed (a miss) or derived from an already-counted
        full-column reuse.  At most :data:`SELECTION_PASSES_PER_COLUMN`
        recent passes are retained per column, so superseded relation
        states do not pile up over a long transfer phase.
        """
        data = self._key_data(table, column)
        row_token = self._tokens.token(row_indices)
        entries = self._selection.setdefault((self._tokens.token(data), encoding), [])
        entries[:] = [e for e in entries if e[0] != row_token]
        entries.insert(0, (row_token, bloom_pass[0], bloom_pass[1]))
        del entries[self.SELECTION_PASSES_PER_COLUMN :]

    # ------------------------------------------------------------------
    # Internals / accounting
    # ------------------------------------------------------------------
    @staticmethod
    def _key_data(table: Table, column: str) -> np.ndarray:
        col = table.column(column)
        if not col.dtype.is_integer_backed:
            raise ExecutionError(
                f"column {column!r} of {table.name!r} is not integer-backed; "
                "only integer-backed columns can be hashed as join keys"
            )
        return col.data

    @property
    def nbytes(self) -> int:
        """Bytes held by the cached hash arrays (excluding the column data)."""
        total = 0
        for hashes, patterns in self._full.values():
            total += int(hashes.nbytes) + int(patterns.nbytes)
        for entries in self._selection.values():
            for _, hashes, patterns in entries:
                total += int(hashes.nbytes) + int(patterns.nbytes)
        return total

    def __len__(self) -> int:
        return len(self._full) + sum(len(entries) for entries in self._selection.values())
