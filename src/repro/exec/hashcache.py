"""Query-lifetime hash cache: hash every key column at most once per query.

The predicate-transfer pipeline makes many Bloom build/probe passes over the
*same* key columns: a relation inserts its join keys into a forward-pass
filter, probes backward-pass filters over the same keys, and the join phase
may hash them yet again.  Each pass historically paid a fresh splitmix64
hash (plus the block bit-pattern derivation, the bulk of the per-key work)
over a freshly gathered key array.

:class:`HashCache` eliminates the redundancy with two granularities of
memoized pass, both pure functions of the key values (so replaying them is
bit-identical to hashing directly):

* **Full-column passes** (:meth:`bloom_pass`) over *all* rows of an
  immutable base column.  Computed only when some consumer touches the
  column while its relation is unreduced — then the pass costs no gather at
  all — and afterwards served to reduced consumers through one
  ``hashes[row_indices]`` gather (:meth:`peek_bloom_pass`).
* **Per-selection passes** (:meth:`selection_pass` /
  :meth:`store_selection_pass`) keyed by the identity of a relation's
  ``row_indices`` array: a transfer step's build and probe over the same
  relation state, or two steps between which the relation was not reduced,
  share one pass with zero re-gathering.

The radix-partitioned join path is deliberately *not* cached here: its
multiplicative hash is a single 64-bit multiply, cheaper than the gather a
replay would need.  Kernel-level callers that do hold a precomputed pass
can still feed it straight to :func:`~repro.exec.kernels.radix_partition`
(``hashes=``) and :class:`~repro.exec.kernels.PartitionedHashIndex`.

Entries are keyed by the identity of the underlying NumPy buffers (strong
references are held, so ids stay stable) plus the column's *encoding
token* (``"raw"`` unless block encodings are active), which makes
self-joins — several aliases over one table — share a single pass per
column while keeping a pass recorded over raw buffers from aliasing one
recorded under an encoded representation of the same column.  The cache
is populated and read only from the executor's coordinator thread (morsel
worker threads receive already-gathered slices), so it needs no locking.

``hits`` counts pass reuses (a whole hashing pass skipped), ``misses``
fresh passes computed; they feed the per-op cache counters in
``ExecutionStats.op_stats``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bloom.bloom_filter import hash_keys, key_patterns
from repro.errors import ExecutionError
from repro.storage.table import Table

#: A cached Bloom hashing pass: (splitmix64 hashes, block bit-patterns).
BloomPass = Tuple[np.ndarray, np.ndarray]


class HashCache:
    """Memoized per-column / per-selection hashing passes for one query."""

    #: Selection passes retained per column.  Relation states progress
    #: monotonically, so reuse only ever targets a recent state; keeping two
    #: covers interleaved self-join aliases while bounding memory.
    SELECTION_PASSES_PER_COLUMN = 2

    def __init__(self) -> None:
        # (id(column data), encoding token) -> (data ref, hashes, patterns)
        self._full: Dict[Tuple[int, str], Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        # (id(column data), encoding token) -> most-recent-first list of
        # (data ref, row_indices ref, hashes, patterns); the refs keep both
        # ids stable.
        self._selection: Dict[
            Tuple[int, str], List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]
        ] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Full-column passes
    # ------------------------------------------------------------------
    def bloom_pass(self, table: Table, column: str, encoding: str = "raw") -> BloomPass:
        """The (hashes, patterns) pass over one full base column.

        Computed on first request, replayed on every later one.
        """
        data = self._key_data(table, column)
        entry = self._full.get((id(data), encoding))
        if entry is not None and entry[0] is data:
            self.hits += 1
            return entry[1], entry[2]
        self.misses += 1
        hashes = hash_keys(data)
        patterns = key_patterns(hashes)
        self._full[(id(data), encoding)] = (data, hashes, patterns)
        return hashes, patterns

    def peek_bloom_pass(
        self, table: Table, column: str, encoding: str = "raw"
    ) -> Optional[BloomPass]:
        """An already-computed full-column pass, or None (never computes)."""
        data = self._key_data(table, column)
        entry = self._full.get((id(data), encoding))
        if entry is not None and entry[0] is data:
            return entry[1], entry[2]
        return None

    def adopt_full_pass(
        self, table: Table, column: str, bloom_pass: BloomPass, encoding: str = "raw"
    ) -> None:
        """Seed the cache with a full-column pass computed elsewhere.

        Used by the executor to replay a cross-query ``bloom_pass`` artifact
        into this query's cache; counts neither a hit nor a miss (the
        artifact cache's own counters record the reuse).
        """
        data = self._key_data(table, column)
        self._full[(id(data), encoding)] = (data, bloom_pass[0], bloom_pass[1])

    # ------------------------------------------------------------------
    # Per-selection passes
    # ------------------------------------------------------------------
    def selection_pass(
        self, table: Table, column: str, row_indices: np.ndarray, encoding: str = "raw"
    ) -> Optional[BloomPass]:
        """A cached pass over exactly this selection of the column, or None.

        The selection is identified by the ``row_indices`` array *object* —
        every in-place reduction replaces it, so a stale pass can never be
        returned for a changed selection.
        """
        data = self._key_data(table, column)
        for entry in self._selection.get((id(data), encoding), ()):
            if entry[0] is data and entry[1] is row_indices:
                self.hits += 1
                return entry[2], entry[3]
        return None

    def store_selection_pass(
        self,
        table: Table,
        column: str,
        row_indices: np.ndarray,
        bloom_pass: BloomPass,
        encoding: str = "raw",
    ) -> None:
        """Cache a pass over one selection.

        Counts neither a hit nor a miss — the caller knows whether the pass
        was freshly hashed (a miss) or derived from an already-counted
        full-column reuse.  At most :data:`SELECTION_PASSES_PER_COLUMN`
        recent passes are retained per column, so superseded relation
        states do not pile up over a long transfer phase.
        """
        data = self._key_data(table, column)
        entries = self._selection.setdefault((id(data), encoding), [])
        entries[:] = [e for e in entries if e[1] is not row_indices]
        entries.insert(0, (data, row_indices, bloom_pass[0], bloom_pass[1]))
        del entries[self.SELECTION_PASSES_PER_COLUMN :]

    # ------------------------------------------------------------------
    # Internals / accounting
    # ------------------------------------------------------------------
    @staticmethod
    def _key_data(table: Table, column: str) -> np.ndarray:
        col = table.column(column)
        if not col.dtype.is_integer_backed:
            raise ExecutionError(
                f"column {column!r} of {table.name!r} is not integer-backed; "
                "only integer-backed columns can be hashed as join keys"
            )
        return col.data

    @property
    def nbytes(self) -> int:
        """Bytes held by the cached hash arrays (excluding the column data)."""
        total = 0
        for _, hashes, patterns in self._full.values():
            total += int(hashes.nbytes) + int(patterns.nbytes)
        for entries in self._selection.values():
            for _, _, hashes, patterns in entries:
                total += int(hashes.nbytes) + int(patterns.nbytes)
        return total

    def __len__(self) -> int:
        return len(self._full) + sum(len(entries) for entries in self._selection.values())
