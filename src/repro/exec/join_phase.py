"""Join-phase executor: runs a binary join plan over (reduced) relations.

The executor takes a :class:`~repro.plan.join_plan.JoinPlan` (left-deep or
bushy) plus the query's join graph and produces the final joined result,
recording per-join statistics (probe/build/output cardinalities) that the
robustness experiments consume.

Join conditions are resolved from the join graph's *attribute classes*
rather than from the raw SQL-style join conditions: two plan subtrees are
joined on every attribute class that has member columns on both sides.
This implements transitive equality inference (``R.a = S.b AND S.b = T.c``
lets ``R`` join ``T`` directly), which the paper's natural-join treatment
assumes and real optimizers such as DuckDB perform.

The executor also supports the *Bloom Join* baseline: before each hash join
the probe side is pre-filtered with a Bloom filter built on the build side
(classic sideways information passing), which reduces hash-probe work but —
unlike Predicate Transfer — cannot shrink intermediate results beyond the
current join.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.bloom.bloom_filter import DEFAULT_FPR, BloomFilter
from repro.core.join_graph import JoinGraph
from repro.errors import ExecutionError
from repro.exec.kernels import (
    bloom_probe_cost,
    combine_key_columns_pair,
    hash_probe_cost,
    match_keys,
)
from repro.exec.relation import BoundRelation, IntermediateResult
from repro.exec.statistics import ExecutionStats, JoinStepStats
from repro.plan.join_plan import JoinNode, JoinPlan, LeafNode, PlanNode
from repro.query import PostJoinPredicate, QuerySpec


@dataclass(frozen=True)
class JoinPhaseOptions:
    """Configuration of the join phase.

    Attributes
    ----------
    bloom_prefilter:
        Enable the Bloom Join baseline behaviour (per-join SIP filter).
    fpr:
        False-positive rate for the per-join Bloom filters.
    allow_cartesian_products:
        Permit join nodes whose two sides share no attribute class.  The
        random plan generators never produce such plans; this exists so
        tests can exercise the error path.
    """

    bloom_prefilter: bool = False
    fpr: float = DEFAULT_FPR
    allow_cartesian_products: bool = False


class JoinPhaseExecutor:
    """Executes a join plan and applies post-join predicates and aggregates."""

    def __init__(
        self,
        query: QuerySpec,
        graph: JoinGraph,
        relations: Dict[str, BoundRelation],
        options: Optional[JoinPhaseOptions] = None,
    ) -> None:
        self.query = query
        self.graph = graph
        self.relations = relations
        self.options = options or JoinPhaseOptions()
        self._pending_predicates: List[PostJoinPredicate] = list(query.post_join_predicates)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, plan: JoinPlan, stats: ExecutionStats) -> IntermediateResult:
        """Execute ``plan`` and return the final joined result."""
        self._pending_predicates = list(self.query.post_join_predicates)
        with stats.time_phase("join"):
            result = self._execute_node(plan.root, stats)
            # Predicates that reference a single relation of a single-table
            # query (or that were never triggered) are applied at the end.
            result = self._apply_ready_predicates(result, force_all=True)
        stats.output_rows = result.num_rows
        return result

    def aggregate(self, result: IntermediateResult, stats: ExecutionStats) -> Dict[str, float]:
        """Compute the query's aggregates over the final result."""
        values: Dict[str, float] = {}
        with stats.time_phase("aggregate"):
            for index, spec in enumerate(self.query.aggregates):
                name = spec.output_name or f"agg_{index}"
                if spec.function == "count":
                    values[name] = float(result.num_rows)
                    continue
                assert spec.alias is not None and spec.column is not None
                column_values = result.column_values(self.relations, spec.alias, spec.column)
                values[name] = _apply_aggregate(spec.function, column_values)
        return values

    # ------------------------------------------------------------------
    # Plan-tree execution
    # ------------------------------------------------------------------
    def _execute_node(self, node: PlanNode, stats: ExecutionStats) -> IntermediateResult:
        if isinstance(node, LeafNode):
            if node.alias not in self.relations:
                raise ExecutionError(f"plan references unknown relation {node.alias!r}")
            return IntermediateResult.from_relation(self.relations[node.alias])
        assert isinstance(node, JoinNode)
        left_result = self._execute_node(node.left, stats)
        right_result = self._execute_node(node.right, stats)
        joined = self._execute_join(node, left_result, right_result, stats)
        return self._apply_ready_predicates(joined)

    def _execute_join(
        self,
        node: JoinNode,
        left_result: IntermediateResult,
        right_result: IntermediateResult,
        stats: ExecutionStats,
    ) -> IntermediateResult:
        probe_result, build_result = left_result, right_result
        if node.flip_build_side:
            probe_result, build_result = build_result, probe_result

        join_attributes = self._shared_attribute_classes(probe_result.aliases, build_result.aliases)
        if not join_attributes:
            if not self.options.allow_cartesian_products:
                raise ExecutionError(
                    "join plan contains a Cartesian product between "
                    f"{sorted(probe_result.aliases)} and {sorted(build_result.aliases)}"
                )
            return self._cartesian_product(probe_result, build_result, stats)

        probe_keys, build_keys = self._resolve_keys(join_attributes, probe_result, build_result)

        bloom_prefiltered = 0
        if self.options.bloom_prefilter and build_result.num_rows > 0:
            bloom = BloomFilter(expected_keys=build_result.num_rows, fpr=self.options.fpr)
            bloom.insert(build_keys)
            hits = bloom.probe(probe_keys)
            bloom_prefiltered = int(probe_result.num_rows - hits.sum())
            keep = np.nonzero(hits)[0]
            probe_result = probe_result.take(keep)
            probe_keys = probe_keys[keep]
            stats.abstract_cost += bloom_probe_cost(int(hits.shape[0]), bloom.size_bytes)

        matches = match_keys(probe_keys, build_keys)
        joined = probe_result.merge(build_result, matches.probe_indices, matches.build_indices)

        stats.join_steps.append(
            JoinStepStats(
                left_aliases=tuple(sorted(probe_result.aliases)),
                right_aliases=tuple(sorted(build_result.aliases)),
                probe_rows=probe_result.num_rows,
                build_rows=build_result.num_rows,
                output_rows=joined.num_rows,
                bloom_prefiltered_rows=bloom_prefiltered,
            )
        )
        stats.abstract_cost += (
            hash_probe_cost(probe_result.num_rows, build_result.num_rows)
            + float(build_result.num_rows)
            + float(joined.num_rows)
        )
        return joined

    def _cartesian_product(
        self,
        left: IntermediateResult,
        right: IntermediateResult,
        stats: ExecutionStats,
    ) -> IntermediateResult:
        left_idx = np.repeat(np.arange(left.num_rows, dtype=np.int64), right.num_rows)
        right_idx = np.tile(np.arange(right.num_rows, dtype=np.int64), left.num_rows)
        joined = left.merge(right, left_idx, right_idx)
        stats.join_steps.append(
            JoinStepStats(
                left_aliases=tuple(sorted(left.aliases)),
                right_aliases=tuple(sorted(right.aliases)),
                probe_rows=left.num_rows,
                build_rows=right.num_rows,
                output_rows=joined.num_rows,
            )
        )
        stats.abstract_cost += float(joined.num_rows)
        return joined

    # ------------------------------------------------------------------
    # Key resolution
    # ------------------------------------------------------------------
    def _shared_attribute_classes(
        self, left_aliases: frozenset[str], right_aliases: frozenset[str]
    ) -> list[str]:
        """Attribute classes with member columns on both sides of the join."""
        shared: list[str] = []
        for name, attr_class in sorted(self.graph.attribute_classes.items()):
            touches_left = any(attr_class.touches(a) for a in left_aliases)
            touches_right = any(attr_class.touches(a) for a in right_aliases)
            if touches_left and touches_right:
                shared.append(name)
        return shared

    def _resolve_keys(
        self,
        attributes: list[str],
        probe_result: IntermediateResult,
        build_result: IntermediateResult,
    ) -> tuple[np.ndarray, np.ndarray]:
        probe_columns = []
        build_columns = []
        for attribute in attributes:
            attr_class = self.graph.attribute_classes[attribute]
            probe_alias = _representative_alias(attr_class, probe_result.aliases)
            build_alias = _representative_alias(attr_class, build_result.aliases)
            probe_columns.append(
                probe_result.column_values(self.relations, probe_alias, attr_class.column_of(probe_alias))
            )
            build_columns.append(
                build_result.column_values(self.relations, build_alias, attr_class.column_of(build_alias))
            )
        return combine_key_columns_pair(probe_columns, build_columns)

    # ------------------------------------------------------------------
    # Post-join predicates
    # ------------------------------------------------------------------
    def _apply_ready_predicates(
        self, result: IntermediateResult, force_all: bool = False
    ) -> IntermediateResult:
        if not self._pending_predicates:
            return result
        still_pending: List[PostJoinPredicate] = []
        for predicate in self._pending_predicates:
            ready = predicate.required_aliases() <= result.aliases
            if ready:
                result = self._apply_predicate(result, predicate)
            elif force_all:
                raise ExecutionError(
                    "post-join predicate references relations missing from the final result: "
                    f"{sorted(predicate.required_aliases() - result.aliases)}"
                )
            else:
                still_pending.append(predicate)
        self._pending_predicates = still_pending
        return result

    def _apply_predicate(
        self, result: IntermediateResult, predicate: PostJoinPredicate
    ) -> IntermediateResult:
        if result.num_rows == 0:
            return result
        overall = np.zeros(result.num_rows, dtype=bool)
        for conjunct in predicate.disjuncts:
            conjunct_mask = np.ones(result.num_rows, dtype=bool)
            for term in conjunct:
                conjunct_mask &= result.evaluate_qualified_comparison(self.relations, term)
            overall |= conjunct_mask
        return result.take(np.nonzero(overall)[0])


def _representative_alias(attr_class, aliases: frozenset[str]) -> str:
    for alias in sorted(aliases):
        if attr_class.touches(alias):
            return alias
    raise ExecutionError(
        f"attribute class {attr_class.name!r} has no member among aliases {sorted(aliases)}"
    )


def _apply_aggregate(function: str, values: np.ndarray) -> float:
    if values.size == 0:
        return 0.0
    if function == "sum":
        return float(values.sum())
    if function == "min":
        return float(values.min())
    if function == "max":
        return float(values.max())
    if function == "avg":
        return float(values.mean())
    raise ExecutionError(f"unsupported aggregate function {function!r}")
