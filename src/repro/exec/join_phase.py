"""Join-phase façade: compiles a join plan tree onto the shared op set.

The executor takes a :class:`~repro.plan.join_plan.JoinPlan` (left-deep or
bushy) plus the query's join graph, compiles it into the unified
:class:`~repro.plan.physical.PhysicalPlan` op vocabulary
(``HashBuild``/``HashProbe`` pairs, optionally preceded by join-scoped
``BloomBuild``/``BloomProbe`` pairs for the Bloom Join baseline), and runs
it on the shared :class:`~repro.exec.pipeline.PipelineExecutor`, recording
per-join statistics (probe/build/output cardinalities) that the robustness
experiments consume.

Join conditions are resolved from the join graph's *attribute classes*
rather than from the raw SQL-style join conditions: two plan subtrees are
joined on every attribute class that has member columns on both sides.
This implements transitive equality inference (``R.a = S.b AND S.b = T.c``
lets ``R`` join ``T`` directly), which the paper's natural-join treatment
assumes and real optimizers such as DuckDB perform.  Because both subtrees'
alias sets are known statically, this resolution happens at compile time.

The *Bloom Join* baseline (per-join sideways information passing) is also a
compile-time decision: before each hash join the probe side is pre-filtered
with a Bloom filter built on the build side, which reduces hash-probe work
but — unlike Predicate Transfer — cannot shrink intermediate results beyond
the current join.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bloom.bloom_filter import DEFAULT_FPR
from repro.core.join_graph import JoinGraph
from repro.exec.pipeline import (
    ExecutionBackend,
    PipelineExecutor,
    PipelineOptions,
    compute_aggregates,
)
from repro.exec.relation import BoundRelation, IntermediateResult
from repro.exec.statistics import ExecutionStats
from repro.plan.join_plan import JoinPlan
from repro.plan.physical import Operand, PhysicalOp, PhysicalPlan, compile_join_ops
from repro.query import QuerySpec


@dataclass(frozen=True)
class JoinPhaseOptions:
    """Configuration of the join phase.

    Attributes
    ----------
    bloom_prefilter:
        Enable the Bloom Join baseline behaviour (per-join SIP filter).
    fpr:
        False-positive rate for the per-join Bloom filters.
    allow_cartesian_products:
        Permit join nodes whose two sides share no attribute class.  The
        random plan generators never produce such plans; this exists so
        tests can exercise the error path.
    """

    bloom_prefilter: bool = False
    fpr: float = DEFAULT_FPR
    allow_cartesian_products: bool = False


class JoinPhaseExecutor:
    """Compiles join plans to physical ops and runs them on the pipeline."""

    def __init__(
        self,
        query: QuerySpec,
        graph: JoinGraph,
        relations: Dict[str, BoundRelation],
        options: Optional[JoinPhaseOptions] = None,
        backend: Optional[ExecutionBackend] = None,
    ) -> None:
        self.query = query
        self.graph = graph
        self.relations = relations
        self.options = options or JoinPhaseOptions()
        self.backend = backend

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def compile(self, plan: JoinPlan) -> Tuple[List[PhysicalOp], Operand, int]:
        """Compile ``plan`` onto the shared physical op set.

        Returns ``(ops, root_operand, num_slots)``.
        """
        return compile_join_ops(
            plan, self.graph, bloom_prefilter=self.options.bloom_prefilter
        )

    def run(self, plan: JoinPlan, stats: ExecutionStats) -> IntermediateResult:
        """Execute ``plan`` and return the final joined result."""
        ops, root, num_slots = self.compile(plan)
        physical = PhysicalPlan(
            query_name=self.query.name,
            mode="join",
            ops=tuple(ops),
            num_slots=num_slots,
            root=root,
        )
        executor = PipelineExecutor(
            self.query,
            self.graph,
            options=PipelineOptions(
                join_fpr=self.options.fpr,
                allow_cartesian_products=self.options.allow_cartesian_products,
            ),
            backend=self.backend,
        )
        result = executor.run(physical, stats, relations=self.relations, finalize_root=root)
        assert result.final is not None
        return result.final

    def aggregate(self, result: IntermediateResult, stats: ExecutionStats) -> Dict[str, float]:
        """Compute the query's aggregates over the final result."""
        with stats.time_phase("aggregate"):
            return compute_aggregates(self.query, self.relations, result)
