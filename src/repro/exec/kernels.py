"""Low-level vectorized kernels shared by the execution operators.

Everything here operates on plain NumPy ``int64`` arrays; higher layers are
responsible for translating logical columns (including dictionary-encoded
strings and composite keys) into these arrays.

The central kernel is :func:`match_keys`, the equi-join matcher used by the
hash-join operator.  It uses a sort + binary-search strategy, which is the
NumPy-friendly equivalent of building and probing a hash table: ``O(n log n)``
to "build" (sort) and ``O(log n)`` per probe, with every step fully
vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ExecutionError


@dataclass(frozen=True)
class JoinMatches:
    """The result of matching probe keys against build keys.

    ``probe_indices[i]`` joins with ``build_indices[i]`` for every ``i``;
    both arrays have the same length (the join output cardinality).
    """

    probe_indices: np.ndarray
    build_indices: np.ndarray

    @property
    def num_matches(self) -> int:
        """Number of output tuples produced by the join."""
        return int(self.probe_indices.shape[0])


def combine_key_columns(columns: Sequence[np.ndarray]) -> np.ndarray:
    """Combine several integer key columns into one collision-free ``int64`` key.

    The columns are densified with :func:`numpy.unique` and combined with a
    mixed-radix encoding, so equal composite keys map to equal combined keys
    and unequal ones stay distinct (no hashing, no collisions).  All columns
    must have identical length.
    """
    columns = [np.asarray(c) for c in columns]
    if not columns:
        raise ExecutionError("combine_key_columns requires at least one column")
    length = columns[0].shape[0]
    for column in columns:
        if column.shape[0] != length:
            raise ExecutionError("key columns must all have the same length")
    if len(columns) == 1:
        return columns[0].astype(np.int64, copy=False)
    combined = np.zeros(length, dtype=np.int64)
    for column in columns:
        _, codes = np.unique(column, return_inverse=True)
        radix = int(codes.max()) + 1 if length else 1
        combined = combined * np.int64(radix) + codes.astype(np.int64)
    return combined


def combine_key_columns_pair(
    left_columns: Sequence[np.ndarray],
    right_columns: Sequence[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    """Combine composite keys *consistently* across two sides of a join.

    The densification must use a shared dictionary for both sides, otherwise
    equal composite values could map to different codes.  Returns the
    combined key arrays for the left and right side.
    """
    left_columns = [np.asarray(c) for c in left_columns]
    right_columns = [np.asarray(c) for c in right_columns]
    if len(left_columns) != len(right_columns):
        raise ExecutionError("both sides of a join must have the same number of key columns")
    if len(left_columns) == 1:
        return (
            left_columns[0].astype(np.int64, copy=False),
            right_columns[0].astype(np.int64, copy=False),
        )
    n_left = left_columns[0].shape[0]
    n_right = right_columns[0].shape[0]
    left_combined = np.zeros(n_left, dtype=np.int64)
    right_combined = np.zeros(n_right, dtype=np.int64)
    for left_col, right_col in zip(left_columns, right_columns):
        both = np.concatenate([left_col, right_col])
        _, codes = np.unique(both, return_inverse=True)
        radix = int(codes.max()) + 1 if both.size else 1
        left_combined = left_combined * np.int64(radix) + codes[:n_left].astype(np.int64)
        right_combined = right_combined * np.int64(radix) + codes[n_left:].astype(np.int64)
    return left_combined, right_combined


def match_keys(probe_keys: np.ndarray, build_keys: np.ndarray) -> JoinMatches:
    """Find all (probe, build) index pairs with equal keys.

    This is the inner-join matching kernel: for every probe key, all
    positions in ``build_keys`` holding the same value are paired with it.
    """
    probe_keys = np.asarray(probe_keys)
    build_keys = np.asarray(build_keys)
    if probe_keys.size == 0 or build_keys.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return JoinMatches(probe_indices=empty, build_indices=empty)

    order = np.argsort(build_keys, kind="stable")
    sorted_build = build_keys[order]
    lo = np.searchsorted(sorted_build, probe_keys, side="left")
    hi = np.searchsorted(sorted_build, probe_keys, side="right")
    counts = hi - lo

    matched = counts > 0
    if not matched.any():
        empty = np.zeros(0, dtype=np.int64)
        return JoinMatches(probe_indices=empty, build_indices=empty)

    matched_probe = np.nonzero(matched)[0]
    matched_counts = counts[matched]
    matched_lo = lo[matched]

    total = int(matched_counts.sum())
    # Expand ranges [lo, lo+count) for every matched probe row without Python loops.
    group_starts = np.repeat(matched_lo, matched_counts)
    within_group = np.arange(total) - np.repeat(
        np.cumsum(matched_counts) - matched_counts, matched_counts
    )
    build_positions = group_starts + within_group

    probe_indices = np.repeat(matched_probe, matched_counts).astype(np.int64)
    build_indices = order[build_positions].astype(np.int64)
    return JoinMatches(probe_indices=probe_indices, build_indices=build_indices)


def semi_join_mask(keys: np.ndarray, filter_keys: np.ndarray) -> np.ndarray:
    """Exact semi-join: boolean mask of ``keys`` present in ``filter_keys``.

    This is the hash-table-based semi-join of the classic Yannakakis
    algorithm (the expensive operation Predicate Transfer replaces with
    Bloom filters).
    """
    keys = np.asarray(keys)
    filter_keys = np.asarray(filter_keys)
    if keys.size == 0:
        return np.zeros(0, dtype=bool)
    if filter_keys.size == 0:
        return np.zeros(keys.shape[0], dtype=bool)
    return np.isin(keys, filter_keys)


def estimate_join_cardinality(
    probe_rows: int,
    build_rows: int,
    probe_distinct: int,
    build_distinct: int,
) -> float:
    """Textbook join cardinality estimate ``|R||S| / max(ndv_R, ndv_S)``."""
    if probe_rows == 0 or build_rows == 0:
        return 0.0
    denominator = max(probe_distinct, build_distinct, 1)
    return probe_rows * build_rows / denominator


def hash_probe_cost(num_probes: int, build_rows: int) -> float:
    """Abstract cost of probing a hash table ``num_probes`` times.

    The per-probe constant grows slowly with the build size to model cache
    effects (the paper's Figure 16 shows hash probes degrade as the table
    outgrows the caches).  The absolute values are arbitrary cost units used
    only for *relative* comparisons in the simulated cost model.
    """
    if num_probes <= 0:
        return 0.0
    cache_penalty = 1.0 + 0.15 * max(np.log2(max(build_rows, 2)) - 10.0, 0.0)
    return float(num_probes) * cache_penalty


def bloom_probe_cost(num_probes: int, filter_bytes: int) -> float:
    """Abstract cost of probing a blocked Bloom filter ``num_probes`` times.

    Bloom probes touch a single cache line and stay several times cheaper
    than hash probes even for large filters.
    """
    if num_probes <= 0:
        return 0.0
    cache_penalty = 1.0 + 0.05 * max(np.log2(max(filter_bytes, 2)) - 15.0, 0.0)
    return 0.25 * float(num_probes) * cache_penalty
