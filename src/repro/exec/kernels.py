"""Low-level vectorized kernels shared by the execution operators.

Everything here operates on plain NumPy ``int64`` arrays; higher layers are
responsible for translating logical columns (including dictionary-encoded
strings and composite keys) into these arrays.

The central kernel is :func:`match_keys`, the equi-join matcher used by the
hash-join operator.  It uses a sort + binary-search strategy, which is the
NumPy-friendly equivalent of building and probing a hash table: ``O(n log n)``
to "build" (sort) and ``O(log n)`` per probe, with every step fully
vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple, Union

import numpy as np

from repro.errors import ExecutionError


@dataclass(frozen=True)
class JoinMatches:
    """The result of matching probe keys against build keys.

    ``probe_indices[i]`` joins with ``build_indices[i]`` for every ``i``;
    both arrays have the same length (the join output cardinality).
    """

    probe_indices: np.ndarray
    build_indices: np.ndarray

    @property
    def num_matches(self) -> int:
        """Number of output tuples produced by the join."""
        return int(self.probe_indices.shape[0])


def combine_key_columns(columns: Sequence[np.ndarray]) -> np.ndarray:
    """Combine several integer key columns into one collision-free ``int64`` key.

    The columns are densified with :func:`numpy.unique` and combined with a
    mixed-radix encoding, so equal composite keys map to equal combined keys
    and unequal ones stay distinct (no hashing, no collisions).  All columns
    must have identical length.
    """
    columns = [np.asarray(c) for c in columns]
    if not columns:
        raise ExecutionError("combine_key_columns requires at least one column")
    length = columns[0].shape[0]
    for column in columns:
        if column.shape[0] != length:
            raise ExecutionError("key columns must all have the same length")
    if len(columns) == 1:
        return columns[0].astype(np.int64, copy=False)
    combined = np.zeros(length, dtype=np.int64)
    for column in columns:
        _, codes = np.unique(column, return_inverse=True)
        radix = int(codes.max()) + 1 if length else 1
        combined = combined * np.int64(radix) + codes.astype(np.int64)
    return combined


def combine_key_columns_pair(
    left_columns: Sequence[np.ndarray],
    right_columns: Sequence[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    """Combine composite keys *consistently* across two sides of a join.

    The densification must use a shared dictionary for both sides, otherwise
    equal composite values could map to different codes.  Returns the
    combined key arrays for the left and right side.
    """
    left_columns = [np.asarray(c) for c in left_columns]
    right_columns = [np.asarray(c) for c in right_columns]
    if len(left_columns) != len(right_columns):
        raise ExecutionError("both sides of a join must have the same number of key columns")
    if len(left_columns) == 1:
        return (
            left_columns[0].astype(np.int64, copy=False),
            right_columns[0].astype(np.int64, copy=False),
        )
    n_left = left_columns[0].shape[0]
    n_right = right_columns[0].shape[0]
    left_combined = np.zeros(n_left, dtype=np.int64)
    right_combined = np.zeros(n_right, dtype=np.int64)
    for left_col, right_col in zip(left_columns, right_columns):
        both = np.concatenate([left_col, right_col])
        _, codes = np.unique(both, return_inverse=True)
        radix = int(codes.max()) + 1 if both.size else 1
        left_combined = left_combined * np.int64(radix) + codes[:n_left].astype(np.int64)
        right_combined = right_combined * np.int64(radix) + codes[n_left:].astype(np.int64)
    return left_combined, right_combined


class HashIndex:
    """A reusable membership/matching index over one side of a join.

    Building the index — the stable sort behind :func:`match_keys`, or the
    bitmap table behind fast membership — is the expensive part of both
    matching and semi-joins.  When the same build side is probed by several
    pipelines — e.g. a join-tree node that reduces multiple children during
    the backward transfer pass, or a base relation probed by the transfer
    phase and again by the join phase — wrapping it in a ``HashIndex``
    builds once and amortizes the cost across every probe.

    Both structures are built lazily: :meth:`match` needs the sort,
    :meth:`contains` prefers an O(1)-per-probe bitmap when the integer key
    domain is bounded (ids, dictionary codes) and otherwise falls back to
    ``np.isin`` / binary search, whichever is cheaper given what is already
    cached.
    """

    __slots__ = (
        "keys",
        "_order",
        "_sorted_keys",
        "_table",
        "_table_lo",
        "_table_hi",
        "_fallback_probes",
        "_probe_rows_seen",
        "_key_bounds",
    )

    #: Hard cap on the bitmap fast-path size (entries; 1 byte each).
    TABLE_MAX_ENTRIES = 1 << 26

    def __init__(self, keys: np.ndarray) -> None:
        self.keys = np.asarray(keys)
        self._order: "np.ndarray | None" = None
        self._sorted_keys: "np.ndarray | None" = None
        self._table: "np.ndarray | None" = None
        self._table_lo = 0
        self._table_hi = 0
        self._fallback_probes = 0
        self._probe_rows_seen = 0
        self._key_bounds: "tuple[int, int] | None" = None

    @property
    def num_keys(self) -> int:
        """Number of indexed build-side keys."""
        return int(self.keys.shape[0])

    @property
    def order(self) -> np.ndarray:
        """Stable sort permutation of the keys (computed lazily, then cached)."""
        if self._order is None:
            self._order = np.argsort(self.keys, kind="stable")
        return self._order

    @property
    def sorted_keys(self) -> np.ndarray:
        """The keys in sorted order (computed lazily, then cached)."""
        if self._sorted_keys is None:
            self._sorted_keys = self.keys[self.order]
        return self._sorted_keys

    def _ensure_table(self, probe_rows: int) -> bool:
        """Build (or reuse) the bitmap membership table when it pays off.

        Integer keys over a bounded domain — the common case for ids and
        dictionary codes — admit an O(1)-per-probe bitmap lookup that needs
        no sort at all and beats a binary search per probe.  The table is
        only built when its size is proportional to the work it saves —
        measured over *all* probes this index has served, so chunk-at-a-time
        probing (the morsel backend) amortizes toward the same decision a
        single whole-column probe makes — and is cached for later probes.
        """
        if self._table is not None:
            return True
        if not np.issubdtype(self.keys.dtype, np.integer):
            return False
        self._probe_rows_seen += probe_rows
        if self._key_bounds is None:
            if self._sorted_keys is not None:
                self._key_bounds = (int(self._sorted_keys[0]), int(self._sorted_keys[-1]))
            else:
                self._key_bounds = (int(self.keys.min()), int(self.keys.max()))
        lo, hi = self._key_bounds
        key_range = hi - lo + 1
        budget = max(1 << 16, 8 * (self.num_keys + self._probe_rows_seen))
        if key_range > min(budget, self.TABLE_MAX_ENTRIES):
            return False
        self._table_lo, self._table_hi = lo, hi
        table = np.zeros(key_range, dtype=bool)
        table[self.keys - lo] = True
        self._table = table
        return True

    def contains(self, probe_keys: np.ndarray) -> np.ndarray:
        """Boolean membership mask of ``probe_keys`` against the indexed keys."""
        probe_keys = np.asarray(probe_keys)
        if probe_keys.size == 0:
            return np.zeros(0, dtype=bool)
        if self.num_keys == 0:
            return np.zeros(probe_keys.shape[0], dtype=bool)
        if np.issubdtype(probe_keys.dtype, np.integer) and self._ensure_table(
            int(probe_keys.shape[0])
        ):
            in_range = (probe_keys >= self._table_lo) & (probe_keys <= self._table_hi)
            clipped = np.clip(probe_keys, self._table_lo, self._table_hi)
            assert self._table is not None
            return in_range & self._table[clipped - self._table_lo]
        probe_rows = int(probe_keys.shape[0])
        if self._sorted_keys is None:
            # Unbounded domain.  NumPy's sort-based isin beats a from-scratch
            # sort + per-probe binary search for a one-shot probe, and stays
            # ahead whenever the probe side dwarfs the key side (measured:
            # binary search costs ~100ns/probe).  Pay the sort only on a
            # *repeat* probe that is no larger than the key side — the
            # chunk-at-a-time reuse pattern — and binary-search from then on.
            self._fallback_probes += 1
            repeat = self._fallback_probes > 1
            if not (repeat and probe_rows <= self.num_keys):
                return np.isin(probe_keys, self.keys)
        sorted_keys = self.sorted_keys
        positions = np.searchsorted(sorted_keys, probe_keys, side="left")
        positions = np.minimum(positions, self.num_keys - 1)
        return sorted_keys[positions] == probe_keys

    def match(self, probe_keys: np.ndarray) -> JoinMatches:
        """All (probe, build) index pairs with equal keys (inner-join matching)."""
        probe_keys = np.asarray(probe_keys)
        if probe_keys.size == 0 or self.num_keys == 0:
            empty = np.zeros(0, dtype=np.int64)
            return JoinMatches(probe_indices=empty, build_indices=empty)

        lo = np.searchsorted(self.sorted_keys, probe_keys, side="left")
        hi = np.searchsorted(self.sorted_keys, probe_keys, side="right")
        counts = hi - lo

        matched = counts > 0
        if not matched.any():
            empty = np.zeros(0, dtype=np.int64)
            return JoinMatches(probe_indices=empty, build_indices=empty)

        matched_probe = np.nonzero(matched)[0]
        matched_counts = counts[matched]
        matched_lo = lo[matched]

        total = int(matched_counts.sum())
        # Expand ranges [lo, lo+count) for every matched probe row without Python loops.
        group_starts = np.repeat(matched_lo, matched_counts)
        within_group = np.arange(total) - np.repeat(
            np.cumsum(matched_counts) - matched_counts, matched_counts
        )
        build_positions = group_starts + within_group

        probe_indices = np.repeat(matched_probe, matched_counts).astype(np.int64)
        build_indices = self.order[build_positions].astype(np.int64)
        return JoinMatches(probe_indices=probe_indices, build_indices=build_indices)


BuildSide = Union[np.ndarray, HashIndex]


def as_hash_index(build: BuildSide) -> HashIndex:
    """Wrap a raw key array in a :class:`HashIndex` (no-op when already indexed)."""
    if isinstance(build, HashIndex):
        return build
    return HashIndex(build)


def match_keys(probe_keys: np.ndarray, build_keys: BuildSide) -> JoinMatches:
    """Find all (probe, build) index pairs with equal keys.

    This is the inner-join matching kernel: for every probe key, all
    positions in ``build_keys`` holding the same value are paired with it.
    ``build_keys`` may be a raw array or an already-built :class:`HashIndex`
    (which skips the build-side sort).
    """
    return as_hash_index(build_keys).match(probe_keys)


def semi_join_mask(keys: np.ndarray, filter_keys: BuildSide) -> np.ndarray:
    """Exact semi-join: boolean mask of ``keys`` present in ``filter_keys``.

    This is the hash-table-based semi-join of the classic Yannakakis
    algorithm (the expensive operation Predicate Transfer replaces with
    Bloom filters).  Membership is tested through :class:`HashIndex`: a
    bitmap table lookup for bounded integer key domains (the common case for
    ids and dictionary codes), falling back to a sort + ``searchsorted``
    binary search — both outperform ``np.isin`` on large inputs (see the
    semi-join kernel microbenchmark), and callers can reuse the index across
    probes.
    """
    keys = np.asarray(keys)
    if keys.size == 0:
        return np.zeros(0, dtype=bool)
    index = as_hash_index(filter_keys)
    if index.num_keys == 0:
        return np.zeros(keys.shape[0], dtype=bool)
    return index.contains(keys)


def estimate_join_cardinality(
    probe_rows: int,
    build_rows: int,
    probe_distinct: int,
    build_distinct: int,
) -> float:
    """Textbook join cardinality estimate ``|R||S| / max(ndv_R, ndv_S)``."""
    if probe_rows == 0 or build_rows == 0:
        return 0.0
    denominator = max(probe_distinct, build_distinct, 1)
    return probe_rows * build_rows / denominator


def hash_probe_cost(num_probes: int, build_rows: int) -> float:
    """Abstract cost of probing a hash table ``num_probes`` times.

    The per-probe constant grows slowly with the build size to model cache
    effects (the paper's Figure 16 shows hash probes degrade as the table
    outgrows the caches).  The absolute values are arbitrary cost units used
    only for *relative* comparisons in the simulated cost model.
    """
    if num_probes <= 0:
        return 0.0
    cache_penalty = 1.0 + 0.15 * max(np.log2(max(build_rows, 2)) - 10.0, 0.0)
    return float(num_probes) * cache_penalty


def bloom_probe_cost(num_probes: int, filter_bytes: int) -> float:
    """Abstract cost of probing a blocked Bloom filter ``num_probes`` times.

    Bloom probes touch a single cache line and stay several times cheaper
    than hash probes even for large filters.
    """
    if num_probes <= 0:
        return 0.0
    cache_penalty = 1.0 + 0.05 * max(np.log2(max(filter_bytes, 2)) - 15.0, 0.0)
    return 0.25 * float(num_probes) * cache_penalty
