"""Low-level vectorized kernels shared by the execution operators.

Everything here operates on plain NumPy ``int64`` arrays; higher layers are
responsible for translating logical columns (including dictionary-encoded
strings and composite keys) into these arrays.

The central kernel is :func:`match_keys`, the equi-join matcher used by the
hash-join operator.  It uses a sort + binary-search strategy, which is the
NumPy-friendly equivalent of building and probing a hash table: ``O(n log n)``
to "build" (sort) and ``O(log n)`` per probe, with every step fully
vectorized.

For build sides that outgrow the caches, :func:`radix_partition` and
:class:`PartitionedHashIndex` provide the radix-partitioned variant: both
join sides are split by a multiplicative key hash in O(n) (NumPy radix-sorts
the small ``uint16`` partition ids), each partition is sorted independently
(the unit of parallel work for the morsel backend), and probes binary-search
only their own cache-resident partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ExecutionError


@dataclass(frozen=True)
class JoinMatches:
    """The result of matching probe keys against build keys.

    ``probe_indices[i]`` joins with ``build_indices[i]`` for every ``i``;
    both arrays have the same length (the join output cardinality).
    """

    probe_indices: np.ndarray
    build_indices: np.ndarray

    @property
    def num_matches(self) -> int:
        """Number of output tuples produced by the join."""
        return int(self.probe_indices.shape[0])


def combine_key_columns(columns: Sequence[np.ndarray]) -> np.ndarray:
    """Combine several integer key columns into one collision-free ``int64`` key.

    The columns are densified with :func:`numpy.unique` and combined with a
    mixed-radix encoding, so equal composite keys map to equal combined keys
    and unequal ones stay distinct (no hashing, no collisions).  All columns
    must have identical length.
    """
    columns = [np.asarray(c) for c in columns]
    if not columns:
        raise ExecutionError("combine_key_columns requires at least one column")
    length = columns[0].shape[0]
    for column in columns:
        if column.shape[0] != length:
            raise ExecutionError("key columns must all have the same length")
    if len(columns) == 1:
        return columns[0].astype(np.int64, copy=False)
    combined = np.zeros(length, dtype=np.int64)
    for column in columns:
        _, codes = np.unique(column, return_inverse=True)
        radix = int(codes.max()) + 1 if length else 1
        combined = combined * np.int64(radix) + codes.astype(np.int64)
    return combined


def combine_key_columns_pair(
    left_columns: Sequence[np.ndarray],
    right_columns: Sequence[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    """Combine composite keys *consistently* across two sides of a join.

    The densification must use a shared dictionary for both sides, otherwise
    equal composite values could map to different codes.  Returns the
    combined key arrays for the left and right side.
    """
    left_columns = [np.asarray(c) for c in left_columns]
    right_columns = [np.asarray(c) for c in right_columns]
    if len(left_columns) != len(right_columns):
        raise ExecutionError("both sides of a join must have the same number of key columns")
    if len(left_columns) == 1:
        return (
            left_columns[0].astype(np.int64, copy=False),
            right_columns[0].astype(np.int64, copy=False),
        )
    n_left = left_columns[0].shape[0]
    n_right = right_columns[0].shape[0]
    left_combined = np.zeros(n_left, dtype=np.int64)
    right_combined = np.zeros(n_right, dtype=np.int64)
    for left_col, right_col in zip(left_columns, right_columns):
        both = np.concatenate([left_col, right_col])
        _, codes = np.unique(both, return_inverse=True)
        radix = int(codes.max()) + 1 if both.size else 1
        left_combined = left_combined * np.int64(radix) + codes[:n_left].astype(np.int64)
        right_combined = right_combined * np.int64(radix) + codes[n_left:].astype(np.int64)
    return left_combined, right_combined


class HashIndex:
    """A reusable membership/matching index over one side of a join.

    Building the index — the stable sort behind :func:`match_keys`, or the
    bitmap table behind fast membership — is the expensive part of both
    matching and semi-joins.  When the same build side is probed by several
    pipelines — e.g. a join-tree node that reduces multiple children during
    the backward transfer pass, or a base relation probed by the transfer
    phase and again by the join phase — wrapping it in a ``HashIndex``
    builds once and amortizes the cost across every probe.

    Both structures are built lazily: :meth:`match` needs the sort,
    :meth:`contains` prefers an O(1)-per-probe bitmap when the integer key
    domain is bounded (ids, dictionary codes) and otherwise falls back to
    ``np.isin`` / binary search, whichever is cheaper given what is already
    cached.
    """

    __slots__ = (
        "keys",
        "_order",
        "_sorted_keys",
        "_table",
        "_table_lo",
        "_table_hi",
        "_fallback_probes",
        "_probe_rows_seen",
        "_key_bounds",
        "_frozen",
    )

    #: Hard cap on the bitmap fast-path size (entries; 1 byte each).
    TABLE_MAX_ENTRIES = 1 << 26

    def __init__(self, keys: np.ndarray, order: Optional[np.ndarray] = None) -> None:
        """Index ``keys``; ``order`` is an optional precomputed stable
        argsort of them (e.g. replayed from a cached artifact over the same
        base column), which skips the build-side sort entirely."""
        self.keys = np.asarray(keys)
        self._order: "np.ndarray | None" = None if order is None else np.asarray(order)
        self._sorted_keys: "np.ndarray | None" = None
        self._table: "np.ndarray | None" = None
        self._table_lo = 0
        self._table_hi = 0
        self._fallback_probes = 0
        self._probe_rows_seen = 0
        self._key_bounds: "tuple[int, int] | None" = None
        self._frozen = False

    @property
    def num_keys(self) -> int:
        """Number of indexed build-side keys."""
        return int(self.keys.shape[0])

    @property
    def order(self) -> np.ndarray:
        """Stable sort permutation of the keys (computed lazily, then cached)."""
        if self._order is None:
            self._order = np.argsort(self.keys, kind="stable")
        return self._order

    @property
    def sorted_keys(self) -> np.ndarray:
        """The keys in sorted order (computed lazily, then cached)."""
        if self._sorted_keys is None:
            self._sorted_keys = self.keys[self.order]
        return self._sorted_keys

    def bitmap_worthwhile(self, extra_probe_rows: int = 0) -> bool:
        """True when the bitmap economics accept this index's key domain.

        The table is only worth building when its size (one byte per domain
        entry) is proportional to the work it saves — the indexed keys plus
        every probe row this index has served or is about to serve.  This is
        the single authority on the decision: :meth:`_ensure_table` consults
        it for lazily built tables, and the adaptive transfer layer consults
        it (with the step's expected probe volume) before downgrading a
        Bloom step to an exact bitmap semi-join.
        """
        if self._table is not None:
            return True
        if self.num_keys == 0 or not np.issubdtype(self.keys.dtype, np.integer):
            return False
        lo, hi = self.key_bounds()
        key_range = hi - lo + 1
        budget = max(
            1 << 16, 8 * (self.num_keys + self._probe_rows_seen + extra_probe_rows)
        )
        return key_range <= min(budget, self.TABLE_MAX_ENTRIES)

    def _ensure_table(self, probe_rows: int) -> bool:
        """Build (or reuse) the bitmap membership table when it pays off.

        Integer keys over a bounded domain — the common case for ids and
        dictionary codes — admit an O(1)-per-probe bitmap lookup that needs
        no sort at all and beats a binary search per probe.  The table is
        only built when :meth:`bitmap_worthwhile` accepts it — measured over
        *all* probes this index has served, so chunk-at-a-time probing (the
        morsel backend) amortizes toward the same decision a single
        whole-column probe makes — and is cached for later probes.
        """
        if self._table is not None:
            return True
        if not np.issubdtype(self.keys.dtype, np.integer):
            return False
        self._probe_rows_seen += probe_rows
        if not self.bitmap_worthwhile():
            return False
        lo, hi = self.key_bounds()
        self._table_lo, self._table_hi = lo, hi
        table = np.zeros(hi - lo + 1, dtype=bool)
        table[self.keys - lo] = True
        self._table = table
        return True

    def prepare(self, expected_probe_rows: int) -> None:
        """Freeze the index for concurrent read-only :meth:`contains` probes.

        The adaptive strategy choice (bitmap table vs sorted binary search vs
        one-shot ``np.isin``) normally happens lazily on the first probe and
        mutates cached state.  A morsel-parallel backend probes the same
        index from many threads at once, so it calls ``prepare`` once — with
        the *total* probe volume, so the table-vs-sort decision matches what
        a single whole-column probe would choose — and every subsequent
        ``contains`` call is a pure read.
        """
        if self._frozen:
            return
        if self.num_keys:
            if not (
                np.issubdtype(self.keys.dtype, np.integer)
                and self._ensure_table(int(expected_probe_rows))
            ):
                _ = self.sorted_keys  # force the sort so probes never mutate
        self._frozen = True

    def prepare_match(self) -> None:
        """Freeze the index for concurrent read-only :meth:`match` probes."""
        _ = self.sorted_keys
        _ = self.order

    @property
    def has_bitmap(self) -> bool:
        """True when the O(1)-per-probe bitmap membership table is built.

        The adaptive transfer layer checks this after :meth:`prepare` to
        decide whether a Bloom step can be downgraded to an exact bitmap
        semi-join (dense key domain) or must keep its Bloom filter.
        """
        return self._table is not None

    def key_bounds(self) -> "tuple[int, int]":
        """(min, max) of the indexed integer keys (computed lazily, cached)."""
        if self._key_bounds is None:
            if self._sorted_keys is not None:
                self._key_bounds = (int(self._sorted_keys[0]), int(self._sorted_keys[-1]))
            else:
                self._key_bounds = (int(self.keys.min()), int(self.keys.max()))
        return self._key_bounds

    def index_bytes(self) -> int:
        """Approximate bytes held by the index (keys + built structures).

        Used by the cross-query artifact cache to charge a frozen index
        against its byte budget.
        """
        total = int(self.keys.nbytes)
        for attr in (self._order, self._sorted_keys, self._table):
            if attr is not None:
                total += int(attr.nbytes)
        return total

    def contains(self, probe_keys: np.ndarray) -> np.ndarray:
        """Boolean membership mask of ``probe_keys`` against the indexed keys."""
        probe_keys = np.asarray(probe_keys)
        if probe_keys.size == 0:
            return np.zeros(0, dtype=bool)
        if self.num_keys == 0:
            return np.zeros(probe_keys.shape[0], dtype=bool)
        if np.issubdtype(probe_keys.dtype, np.integer) and (
            self._table is not None
            or (not self._frozen and self._ensure_table(int(probe_keys.shape[0])))
        ):
            # One subtraction + range test + clipped gather.  int64 offsets
            # can wrap for extreme probe values, but a wrapped difference is
            # always negative (the true difference lies in [2^63, 2^64)), so
            # the in-range test still rejects it.
            offsets = probe_keys - self._table_lo
            in_range = (offsets >= 0) & (offsets <= self._table_hi - self._table_lo)
            assert self._table is not None
            return in_range & self._table.take(offsets, mode="clip")
        probe_rows = int(probe_keys.shape[0])
        if self._sorted_keys is None:
            # Unbounded domain.  NumPy's sort-based isin beats a from-scratch
            # sort + per-probe binary search for a one-shot probe, and stays
            # ahead whenever the probe side dwarfs the key side (measured:
            # binary search costs ~100ns/probe).  Pay the sort only on a
            # *repeat* probe that is no larger than the key side — the
            # chunk-at-a-time reuse pattern — and binary-search from then on.
            self._fallback_probes += 1
            repeat = self._fallback_probes > 1
            if not (repeat and probe_rows <= self.num_keys):
                return np.isin(probe_keys, self.keys)
        sorted_keys = self.sorted_keys
        positions = np.searchsorted(sorted_keys, probe_keys, side="left")
        positions = np.minimum(positions, self.num_keys - 1)
        return sorted_keys[positions] == probe_keys

    def match(self, probe_keys: np.ndarray) -> JoinMatches:
        """All (probe, build) index pairs with equal keys (inner-join matching)."""
        probe_keys = np.asarray(probe_keys)
        if probe_keys.size == 0 or self.num_keys == 0:
            empty = np.zeros(0, dtype=np.int64)
            return JoinMatches(probe_indices=empty, build_indices=empty)

        lo = np.searchsorted(self.sorted_keys, probe_keys, side="left")
        hi = np.searchsorted(self.sorted_keys, probe_keys, side="right")
        counts = hi - lo

        matched = counts > 0
        if not matched.any():
            empty = np.zeros(0, dtype=np.int64)
            return JoinMatches(probe_indices=empty, build_indices=empty)

        matched_probe = np.nonzero(matched)[0]
        matched_counts = counts[matched]
        matched_lo = lo[matched]

        total = int(matched_counts.sum())
        # Expand ranges [lo, lo+count) for every matched probe row without Python loops.
        group_starts = np.repeat(matched_lo, matched_counts)
        within_group = np.arange(total) - np.repeat(
            np.cumsum(matched_counts) - matched_counts, matched_counts
        )
        build_positions = group_starts + within_group

        probe_indices = np.repeat(matched_probe, matched_counts).astype(np.int64)
        build_indices = self.order[build_positions].astype(np.int64)
        return JoinMatches(probe_indices=probe_indices, build_indices=build_indices)


# ---------------------------------------------------------------------------
# Radix partitioning
# ---------------------------------------------------------------------------
#: Fibonacci-hashing multiplier used to spread join keys across partitions.
RADIX_HASH_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)

#: Default number of radix bits (2^6 = 64 partitions).
DEFAULT_PARTITION_BITS = 6

#: Upper bound on radix bits (partition ids are materialized as ``uint16``).
MAX_PARTITION_BITS = 16


def radix_hash(keys: np.ndarray) -> np.ndarray:
    """Full 64-bit multiplicative (Fibonacci) hash of a key vector.

    The partition id of any radix width derives from these hashes by taking
    the top ``bits`` bits, so one hashing pass per key column serves every
    ``radix_partition`` call over it regardless of the partition count
    (the cacheable pass of the radix-partitioned join path).
    """
    with np.errstate(over="ignore"):
        return np.asarray(keys).astype(np.uint64, copy=False) * RADIX_HASH_MULTIPLIER


def radix_partition_ids(
    keys: np.ndarray, bits: int, hashes: Optional[np.ndarray] = None
) -> np.ndarray:
    """Partition id of every key: the top ``bits`` of a multiplicative hash.

    The multiplicative (Fibonacci) hash spreads clustered key domains —
    dense surrogate ids, dictionary codes — evenly across the ``2**bits``
    partitions; taking the *top* bits keeps the full 64-bit mix.  Both sides
    of a join use the same function, so equal keys always land in the same
    partition.  Returned as ``uint16`` so the partitioning sort below hits
    NumPy's O(n) radix sort for small integer dtypes.  ``hashes`` replays a
    precomputed :func:`radix_hash` pass (bit-identical to hashing ``keys``).
    """
    if not 1 <= bits <= MAX_PARTITION_BITS:
        raise ExecutionError(f"partition bits must be in [1, {MAX_PARTITION_BITS}], got {bits}")
    if hashes is None:
        hashes = radix_hash(keys)
    return (hashes >> np.uint64(64 - bits)).astype(np.uint16)


@dataclass(frozen=True)
class KeyPartitions:
    """One side's keys radix-partitioned: a permutation plus partition offsets.

    ``order`` is a stable permutation grouping rows by partition id (NumPy
    radix-sorts the ``uint16`` ids in O(n), so partitioning never pays a
    comparison sort), ``offsets[p] : offsets[p + 1]`` delimits partition
    ``p`` within ``keys[order]``, and ``partitioned_keys`` is that gathered
    key array.  ``order`` maps positions *within a partition segment* back
    to original row positions.
    """

    bits: int
    order: np.ndarray
    offsets: np.ndarray
    partitioned_keys: np.ndarray

    @property
    def num_partitions(self) -> int:
        """Number of radix partitions (``2**bits``)."""
        return 1 << self.bits

    @property
    def num_rows(self) -> int:
        """Total number of partitioned rows."""
        return int(self.partitioned_keys.shape[0])

    def partition_rows(self, partition: int) -> int:
        """Number of rows in one partition."""
        return int(self.offsets[partition + 1] - self.offsets[partition])

    def segment_keys(self, partition: int) -> np.ndarray:
        """The keys of one partition (a view into the gathered key array)."""
        return self.partitioned_keys[self.offsets[partition] : self.offsets[partition + 1]]

    def segment_order(self, partition: int) -> np.ndarray:
        """Original row positions of one partition's rows."""
        return self.order[self.offsets[partition] : self.offsets[partition + 1]]


def radix_partition(
    keys: np.ndarray,
    bits: int = DEFAULT_PARTITION_BITS,
    hashes: Optional[np.ndarray] = None,
) -> KeyPartitions:
    """Radix-partition a key array into ``2**bits`` hash partitions.

    Runs in O(n): partition ids are one vectorized hash, the grouping
    permutation is NumPy's radix sort over the ``uint16`` ids, and the
    offsets come from ``bincount``.  ``hashes`` is an optional precomputed
    :func:`radix_hash` pass over ``keys`` (the partitioning is then
    bit-identical but skips the hash).
    """
    keys = np.asarray(keys)
    pids = radix_partition_ids(keys, bits, hashes=hashes)
    order = np.argsort(pids, kind="stable").astype(np.int64, copy=False)
    counts = np.bincount(pids, minlength=1 << bits)
    offsets = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)])
    return KeyPartitions(bits=bits, order=order, offsets=offsets, partitioned_keys=keys[order])


#: Runs a list of thunks and returns their results in order (a backend hook:
#: the parallel backend dispatches them to its worker pool).
TaskRunner = Callable[[Sequence[Callable[[], object]]], List[object]]


def _run_serial(tasks: Sequence[Callable[[], object]]) -> List[object]:
    return [task() for task in tasks]


class PartitionedHashIndex:
    """A radix-partitioned build side: per-partition :class:`HashIndex` objects.

    Large monolithic build sides are slow to sort (O(n log n) over the whole
    array) and slow to probe (every binary-search step is a cache miss in a
    build array that outgrows the caches).  Radix-partitioning both sides by
    the same key hash fixes both: each partition is sorted independently
    (shorter sorts, and independent units of parallel work — the per-worker
    *partial* builds that a morsel-parallel pipeline breaker merges), and
    probes only search their own cache-resident partition.

    Construction only computes the O(n) partitioning; the per-partition
    indexes are built by :meth:`build` (optionally through a ``run_tasks``
    hook so a parallel backend can build partitions concurrently) or lazily
    on first probe.
    """

    __slots__ = ("partitions", "_indexes")

    def __init__(
        self,
        keys: np.ndarray,
        bits: int = DEFAULT_PARTITION_BITS,
        hashes: Optional[np.ndarray] = None,
    ) -> None:
        self.partitions = radix_partition(keys, bits, hashes=hashes)
        self._indexes: List[Optional[HashIndex]] = [None] * self.partitions.num_partitions

    @property
    def bits(self) -> int:
        """Number of radix bits."""
        return self.partitions.bits

    @property
    def num_partitions(self) -> int:
        """Number of radix partitions."""
        return self.partitions.num_partitions

    @property
    def num_keys(self) -> int:
        """Total number of indexed build-side keys."""
        return self.partitions.num_rows

    def partition_bytes(self, partition: int) -> int:
        """Approximate bytes materialized for one partition (keys + order)."""
        rows = self.partitions.partition_rows(partition)
        return rows * (self.partitions.partitioned_keys.itemsize + 8)

    def _index(self, partition: int) -> HashIndex:
        index = self._indexes[partition]
        if index is None:
            index = HashIndex(self.partitions.segment_keys(partition))
            index.prepare_match()
            self._indexes[partition] = index
        return index

    def build(self, run_tasks: Optional[TaskRunner] = None) -> int:
        """Build the index of every non-empty partition; returns the task count.

        Each partition build is an independent task (sort of that partition's
        keys); ``run_tasks`` lets the caller fan the builds out to worker
        threads and acts as the pipeline breaker that merges the partial
        builds: it returns only when every partition index exists.
        """
        run = run_tasks or _run_serial
        pending = [
            p for p in range(self.num_partitions)
            if self._indexes[p] is None and self.partitions.partition_rows(p) > 0
        ]
        run([(lambda p=p: self._index(p)) for p in pending])
        return len(pending)

    def match(
        self,
        probe_keys: np.ndarray,
        run_tasks: Optional[TaskRunner] = None,
        on_partition: Optional[Callable[[int], None]] = None,
        probe_hashes: Optional[np.ndarray] = None,
    ) -> JoinMatches:
        """All (probe, build) index pairs with equal keys, via per-partition matching.

        The probe side is radix-partitioned with the same hash, each partition
        is matched against its build counterpart (independent tasks), and the
        per-partition matches — expressed in original row positions through
        the two permutations — are concatenated in partition order, so the
        result is deterministic regardless of how ``run_tasks`` schedules the
        work.  ``on_partition`` is called (serially, before the fan-out) for
        every partition the probe will actually visit — the memory governor's
        hook for charging reloads of exactly the spilled partitions the join
        reads.  ``probe_hashes`` replays a precomputed :func:`radix_hash`
        pass over the probe keys.
        """
        probe_keys = np.asarray(probe_keys)
        if probe_keys.size == 0 or self.num_keys == 0:
            empty = np.zeros(0, dtype=np.int64)
            return JoinMatches(probe_indices=empty, build_indices=empty)
        probe_parts = radix_partition(probe_keys, self.bits, hashes=probe_hashes)
        active = [
            p for p in range(self.num_partitions)
            if probe_parts.partition_rows(p) > 0 and self.partitions.partition_rows(p) > 0
        ]
        if on_partition is not None:
            for p in active:
                on_partition(p)

        def match_partition(p: int) -> Tuple[np.ndarray, np.ndarray]:
            local = self._index(p).match(probe_parts.segment_keys(p))
            return (
                probe_parts.segment_order(p)[local.probe_indices],
                self.partitions.segment_order(p)[local.build_indices],
            )

        run = run_tasks or _run_serial
        results = run([(lambda p=p: match_partition(p)) for p in active])
        if not results:
            empty = np.zeros(0, dtype=np.int64)
            return JoinMatches(probe_indices=empty, build_indices=empty)
        return JoinMatches(
            probe_indices=np.concatenate([r[0] for r in results]),
            build_indices=np.concatenate([r[1] for r in results]),
        )

    def contains(
        self, probe_keys: np.ndarray, run_tasks: Optional[TaskRunner] = None
    ) -> np.ndarray:
        """Boolean membership mask of ``probe_keys``, via per-partition probes."""
        probe_keys = np.asarray(probe_keys)
        if probe_keys.size == 0:
            return np.zeros(0, dtype=bool)
        if self.num_keys == 0:
            return np.zeros(probe_keys.shape[0], dtype=bool)
        probe_parts = radix_partition(probe_keys, self.bits)
        mask = np.zeros(probe_keys.shape[0], dtype=bool)
        active = [p for p in range(self.num_partitions) if probe_parts.partition_rows(p) > 0]

        def probe_partition(p: int) -> Tuple[np.ndarray, np.ndarray]:
            if self.partitions.partition_rows(p) == 0:
                hits = np.zeros(probe_parts.partition_rows(p), dtype=bool)
            else:
                hits = self._index(p).contains(probe_parts.segment_keys(p))
            return probe_parts.segment_order(p), hits

        run = run_tasks or _run_serial
        for positions, hits in run([(lambda p=p: probe_partition(p)) for p in active]):
            mask[positions] = hits
        return mask


BuildSide = Union[np.ndarray, HashIndex]


def as_hash_index(build: BuildSide) -> HashIndex:
    """Wrap a raw key array in a :class:`HashIndex` (no-op when already indexed)."""
    if isinstance(build, HashIndex):
        return build
    return HashIndex(build)


def match_keys(probe_keys: np.ndarray, build_keys: BuildSide) -> JoinMatches:
    """Find all (probe, build) index pairs with equal keys.

    This is the inner-join matching kernel: for every probe key, all
    positions in ``build_keys`` holding the same value are paired with it.
    ``build_keys`` may be a raw array or an already-built :class:`HashIndex`
    (which skips the build-side sort).
    """
    return as_hash_index(build_keys).match(probe_keys)


def semi_join_mask(keys: np.ndarray, filter_keys: BuildSide) -> np.ndarray:
    """Exact semi-join: boolean mask of ``keys`` present in ``filter_keys``.

    This is the hash-table-based semi-join of the classic Yannakakis
    algorithm (the expensive operation Predicate Transfer replaces with
    Bloom filters).  Membership is tested through :class:`HashIndex`: a
    bitmap table lookup for bounded integer key domains (the common case for
    ids and dictionary codes), falling back to a sort + ``searchsorted``
    binary search — both outperform ``np.isin`` on large inputs (see the
    semi-join kernel microbenchmark), and callers can reuse the index across
    probes.
    """
    keys = np.asarray(keys)
    if keys.size == 0:
        return np.zeros(0, dtype=bool)
    index = as_hash_index(filter_keys)
    if index.num_keys == 0:
        return np.zeros(keys.shape[0], dtype=bool)
    return index.contains(keys)


def estimate_join_cardinality(
    probe_rows: int,
    build_rows: int,
    probe_distinct: int,
    build_distinct: int,
) -> float:
    """Textbook join cardinality estimate ``|R||S| / max(ndv_R, ndv_S)``."""
    if probe_rows == 0 or build_rows == 0:
        return 0.0
    denominator = max(probe_distinct, build_distinct, 1)
    return probe_rows * build_rows / denominator


def hash_probe_cost(num_probes: int, build_rows: int) -> float:
    """Abstract cost of probing a hash table ``num_probes`` times.

    The per-probe constant grows slowly with the build size to model cache
    effects (the paper's Figure 16 shows hash probes degrade as the table
    outgrows the caches).  The absolute values are arbitrary cost units used
    only for *relative* comparisons in the simulated cost model.
    """
    if num_probes <= 0:
        return 0.0
    cache_penalty = 1.0 + 0.15 * max(np.log2(max(build_rows, 2)) - 10.0, 0.0)
    return float(num_probes) * cache_penalty


def bloom_probe_cost(num_probes: int, filter_bytes: int) -> float:
    """Abstract cost of probing a blocked Bloom filter ``num_probes`` times.

    Bloom probes touch a single cache line and stay several times cheaper
    than hash probes even for large filters.
    """
    if num_probes <= 0:
        return 0.0
    cache_penalty = 1.0 + 0.05 * max(np.log2(max(filter_bytes, 2)) - 15.0, 0.0)
    return 0.25 * float(num_probes) * cache_penalty
