"""Physical operators in the DuckDB push-based style.

The engine's query executors (:mod:`repro.exec.transfer`,
:mod:`repro.exec.join_phase`) work on whole columns for speed, but the paper
integrates RPT into a *pipelined, chunk-at-a-time* engine where every
physical operator plays one of three roles: **source** (``GetData``),
**operator** (``Execute``), or **sink** (``Sink`` / ``Combine`` /
``Finalize``).  This module provides those operator classes over
:class:`~repro.exec.chunk.DataChunk`:

* :class:`TableScan` — source;
* :class:`FilterOperator` — intermediate operator applying a predicate;
* :class:`CreateBF` — sink that buffers chunks and builds Bloom filters,
  then acts as a source re-emitting the buffered chunks (exactly the dual
  role described in §4.2/§4.3);
* :class:`ProbeBF` — intermediate operator probing published Bloom filters
  and refining the chunk's selection vector;
* :class:`HashJoinBuild` / :class:`HashJoinProbe` — the sink/operator pair
  of a hash join.

They are used by the pipeline tests, the Figure 16 microbenchmark, and the
simulated multi-threaded model; results are identical to the column-at-a-time
executors (verified by integration tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.bloom.bloom_filter import DEFAULT_FPR, BloomFilter
from repro.bloom.registry import BloomFilterRegistry, FilterKey
from repro.errors import ExecutionError
from repro.exec.chunk import DEFAULT_CHUNK_SIZE, DataChunk, iter_chunks
from repro.exec.kernels import match_keys
from repro.expr.expressions import Expression
from repro.storage.table import Table


class SourceOperator:
    """Interface of a pipeline source: produces data chunks."""

    def get_data(self) -> Iterator[DataChunk]:
        """Yield the source's data chunks."""
        raise NotImplementedError


class IntermediateOperator:
    """Interface of an intermediate operator: transforms one chunk into another."""

    def execute(self, chunk: DataChunk) -> DataChunk:
        """Process one input chunk and return the output chunk."""
        raise NotImplementedError


class SinkOperator:
    """Interface of a pipeline sink (pipeline breaker)."""

    def sink(self, chunk: DataChunk) -> None:
        """Receive and buffer one chunk."""
        raise NotImplementedError

    def combine(self) -> None:
        """Per-thread combine step (no-op for single-threaded execution)."""

    def finalize(self) -> None:
        """Final computation once all input has been consumed."""


# ---------------------------------------------------------------------------
# Sources
# ---------------------------------------------------------------------------
@dataclass
class TableScan(SourceOperator):
    """Scan a base table, emitting chunks of its (qualified) columns."""

    table: Table
    alias: str
    columns: Optional[Sequence[str]] = None
    chunk_size: int = DEFAULT_CHUNK_SIZE

    def get_data(self) -> Iterator[DataChunk]:
        names = list(self.columns) if self.columns is not None else list(self.table.column_names)
        data = {f"{self.alias}.{name}": self.table.column(name).data for name in names}
        yield from iter_chunks(data, self.chunk_size)


# ---------------------------------------------------------------------------
# Intermediate operators
# ---------------------------------------------------------------------------
@dataclass
class FilterOperator(IntermediateOperator):
    """Apply a base-table predicate to each chunk (updates the selection vector)."""

    predicate: Expression
    table: Table
    alias: str

    def execute(self, chunk: DataChunk) -> DataChunk:
        # Evaluate against a temporary table view of the chunk's valid rows.
        compacted = chunk.compact()
        columns = {
            name.split(".", 1)[1]: values for name, values in compacted.columns.items()
        }
        view_columns = []
        for name, values in columns.items():
            original = self.table.column(name)
            view_columns.append(
                type(original)(name=name, dtype=original.dtype, data=values, dictionary=original.dictionary)
            )
        view = Table(name=self.table.name, columns=tuple(view_columns))
        mask = self.predicate.evaluate(view)
        return compacted.apply_mask(np.asarray(mask, dtype=bool))


@dataclass
class ProbeBF(IntermediateOperator):
    """Probe one or more published Bloom filters and refine the selection vector."""

    registry: BloomFilterRegistry
    probes: Sequence[tuple[FilterKey, str]]  # (published filter, qualified key column)

    def execute(self, chunk: DataChunk) -> DataChunk:
        result = chunk
        for key, column in self.probes:
            bloom = self.registry.lookup(key)
            hits = bloom.probe(result.column(column))
            result = result.apply_mask(hits)
        return result


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------
@dataclass
class CreateBF(SinkOperator, SourceOperator):
    """Buffer incoming chunks, build Bloom filters at Finalize, re-emit buffered data.

    Mirrors the paper's CreateBF: it is a sink at the end of one pipeline and
    the source of the next.
    """

    registry: BloomFilterRegistry
    filter_key: FilterKey
    key_column: str
    fpr: float = DEFAULT_FPR
    _buffered: List[DataChunk] = field(default_factory=list)
    _finalized: bool = False

    def sink(self, chunk: DataChunk) -> None:
        self._buffered.append(chunk.compact())

    def finalize(self) -> None:
        total = sum(c.size for c in self._buffered)
        bloom = BloomFilter(expected_keys=max(total, 1), fpr=self.fpr)
        for chunk in self._buffered:
            bloom.insert(chunk.column(self.key_column))
        self.registry.publish(self.filter_key, bloom, replace=True)
        self._finalized = True

    def get_data(self) -> Iterator[DataChunk]:
        if not self._finalized:
            raise ExecutionError("CreateBF must be finalized before acting as a source")
        yield from self._buffered

    @property
    def buffered_rows(self) -> int:
        """Total rows currently buffered."""
        return sum(c.size for c in self._buffered)


@dataclass
class HashJoinBuild(SinkOperator):
    """Build side of a hash join: buffers chunks and exposes the key/column arrays."""

    key_column: str
    _buffered: List[DataChunk] = field(default_factory=list)
    _keys: Optional[np.ndarray] = None

    def sink(self, chunk: DataChunk) -> None:
        self._buffered.append(chunk.compact())

    def finalize(self) -> None:
        if self._buffered:
            self._keys = np.concatenate([c.column(self.key_column) for c in self._buffered])
        else:
            self._keys = np.zeros(0, dtype=np.int64)

    @property
    def keys(self) -> np.ndarray:
        """The concatenated build-side key array (available after finalize)."""
        if self._keys is None:
            raise ExecutionError("HashJoinBuild must be finalized before probing")
        return self._keys

    def gather(self, column: str, indices: np.ndarray) -> np.ndarray:
        """Gather build-side values of ``column`` for the matched row indices."""
        if not self._buffered:
            return np.zeros(0, dtype=np.int64)
        values = np.concatenate([c.column(column) for c in self._buffered])
        return values[indices]


@dataclass
class HashJoinProbe(IntermediateOperator):
    """Probe side of a hash join, producing joined chunks."""

    build: HashJoinBuild
    probe_key_column: str
    build_payload_columns: Sequence[str] = ()

    def execute(self, chunk: DataChunk) -> DataChunk:
        compacted = chunk.compact()
        probe_keys = compacted.column(self.probe_key_column)
        matches = match_keys(probe_keys, self.build.keys)
        output: Dict[str, np.ndarray] = {
            name: values[matches.probe_indices] for name, values in compacted.columns.items()
        }
        for column in self.build_payload_columns:
            output[column] = self.build.gather(column, matches.build_indices)
        return DataChunk(columns=output)


# ---------------------------------------------------------------------------
# Pipelines
# ---------------------------------------------------------------------------
@dataclass
class Pipeline:
    """A source, a list of intermediate operators, and an optional sink."""

    source: SourceOperator
    operators: List[IntermediateOperator] = field(default_factory=list)
    sink: Optional[SinkOperator] = None

    def run(self) -> List[DataChunk]:
        """Execute the pipeline; returns the output chunks when there is no sink."""
        outputs: List[DataChunk] = []
        for chunk in self.source.get_data():
            current = chunk
            for operator in self.operators:
                current = operator.execute(current)
                if current.size == 0:
                    break
            if current.size == 0:
                continue
            if self.sink is not None:
                self.sink.sink(current)
            else:
                outputs.append(current)
        if self.sink is not None:
            self.sink.combine()
            self.sink.finalize()
        return outputs
