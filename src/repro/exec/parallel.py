"""Simulated multi-threaded execution cost model (Figure 14).

The paper repeats the robustness experiments with 32 threads and observes
that RPT stays robust, but the *variance* across random plans grows because
some plans place a small (heavily reduced) table on the probe side of a long
pipeline — it then has too few data chunks to keep 32 threads busy.

This module is the **deterministic figure-reproduction path** for that
effect: the measured single-threaded work of each pipeline is divided by
the *effective parallelism*, which is capped by the number of data chunks
the probe side provides.  The per-query output is a simulated parallel
execution time that exhibits exactly the under-utilization effect, free of
measurement noise.

The engine also has a *real* morsel-parallel runtime — the ``"parallel"``
backend (:class:`~repro.exec.pipeline.ParallelBackend`), a morsel scheduler
over a thread pool whose NumPy kernels release the GIL.  Its per-op morsel
counters (``OpStats.morsels``) expose the same quantity this model caps
parallelism by (morsels available per pipeline), so the simulated Figure 14
numbers and the real backend's utilization can be cross-checked over one
trace vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.exec.chunk import DEFAULT_CHUNK_SIZE, num_chunks
from repro.exec.faults import CancelToken
from repro.exec.statistics import ExecutionStats

_T = TypeVar("_T")


def gather_in_order(
    futures: Sequence["object"],
    cancel: Optional[CancelToken] = None,
    on_drain: Optional[Callable[[], None]] = None,
) -> List[_T]:
    """Gather futures in submission order, checking the cancel token between morsels.

    The in-order gather is what makes the thread and process backends
    bit-identical to serial — morsel results are concatenated in submission
    order regardless of completion order.  This shared helper adds the
    cooperative-cancellation barrier: before blocking on each result the
    token is checked, and on expiry/cancel the remaining futures are
    cancelled (started ones are drained via ``on_drain``) before the typed
    error propagates — no worker is left running against segments the owner
    is about to unlink.
    """
    results: List[_T] = []
    try:
        for future in futures:
            if cancel is not None:
                cancel.check()
            results.append(future.result())  # type: ignore[attr-defined]
    except BaseException:
        for future in futures:
            cancel_fn = getattr(future, "cancel", None)
            if cancel_fn is not None:
                try:
                    cancel_fn()
                except Exception:  # pragma: no cover - future already done
                    pass
        if on_drain is not None:
            on_drain()
        raise
    return results


@dataclass(frozen=True)
class ParallelismModel:
    """Parameters of the simulated multi-threaded execution."""

    num_threads: int = 32
    chunk_size: int = DEFAULT_CHUNK_SIZE
    #: Fixed per-pipeline startup/coordination overhead in cost units.
    pipeline_overhead: float = 64.0

    def effective_parallelism(self, probe_rows: int) -> float:
        """Threads that can actually be kept busy by ``probe_rows`` of probe input."""
        chunks = num_chunks(probe_rows, self.chunk_size)
        if chunks == 0:
            return 1.0
        return float(min(self.num_threads, chunks))


def simulate_parallel_cost(stats: ExecutionStats, model: ParallelismModel) -> float:
    """Simulated parallel execution cost of an already-measured execution.

    Every join step is treated as one probing pipeline whose work is its
    probe + output tuple count; the build side is a separate (shorter)
    pipeline whose work is the build tuple count.  The transfer phase
    parallelizes over the probed relation's rows the same way.
    """
    total = 0.0
    for step in stats.join_steps:
        probe_work = float(step.probe_rows + step.output_rows)
        build_work = float(step.build_rows)
        probe_parallelism = model.effective_parallelism(step.probe_rows)
        build_parallelism = model.effective_parallelism(step.build_rows)
        total += probe_work / probe_parallelism + build_work / build_parallelism
        total += model.pipeline_overhead
    for step in stats.transfer_steps:
        if step.skipped:
            continue
        probe_parallelism = model.effective_parallelism(step.rows_before)
        total += float(step.rows_before) / probe_parallelism
        total += model.pipeline_overhead
    return total


def simulate_parallel_costs(stats_list: List[ExecutionStats], model: ParallelismModel) -> List[float]:
    """Vectorized convenience wrapper over :func:`simulate_parallel_cost`."""
    return [simulate_parallel_cost(stats, model) for stats in stats_list]
