"""Backend-pluggable pipeline executor for compiled :class:`PhysicalPlan` ops.

This is the single runtime behind every execution mode: the engine compiles
``(QuerySpec, JoinPlan, TransferSchedule)`` into one flat op list
(:mod:`repro.plan.physical`) and the :class:`PipelineExecutor` here runs it.
Transfer-phase ops (``BloomBuild``/``BloomProbe``/``SemiJoinReduce``) reduce
:class:`~repro.exec.relation.BoundRelation` objects in place; join-phase ops
(``HashBuild``/``HashProbe``) flow through late-materialized intermediate
*slots*; ``Aggregate`` finishes the query.  Each op is timed individually,
producing the uniform per-op trace (``ExecutionStats.op_stats``) shared by
all five modes.

Three backends implement the probe/match hot loops:

* :class:`SerialBackend` — whole-column NumPy kernels (the default);
* :class:`ChunkedBackend` — morsel-driven: probe inputs are processed in
  :data:`~repro.exec.chunk.DEFAULT_CHUNK_SIZE`-row chunks and a
  :class:`~repro.exec.parallel.ParallelismModel` accrues the simulated
  multi-threaded cost of each probe pipeline
  (``ExecutionStats.simulated_parallel_cost``).  Results are bit-identical
  to the serial backend.
* :class:`ParallelBackend` — a *real* morsel-driven scheduler over a
  ``ThreadPoolExecutor``: probe inputs are cut into chunk-granularity
  morsels dispatched to worker threads (the NumPy kernels release the GIL
  on large inputs), per-partition hash builds run as concurrent partial
  builds merged at the pipeline breaker, and results are gathered in
  dispatch order so they stay bit-identical to the serial backend.

Radix-partitioned joins (``Partition`` / ``PartitionedHashBuild`` /
``PartitionedHashProbe`` ops) execute on any backend; under the parallel
backend each partition is an independent task.  A
:class:`~repro.storage.buffer.MemoryGovernor`, when configured, is consulted
*during* execution: build sides and partitions reserve budget before
materializing, over-budget reservations spill through the
:class:`~repro.exec.spill.SpillManager` callback, and probing spilled state
charges the reload — surfaced per op in ``ExecutionStats.op_stats``.

The executor also owns the cross-pipeline :class:`~repro.exec.kernels.HashIndex`
cache: a build side probed by multiple pipelines (e.g. a join-tree node that
reduces several children during the backward transfer pass) is sorted once
and the sorted index is reused until the relation is reduced again.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.bloom.bloom_filter import DEFAULT_FPR, BloomFilter
from repro.bloom.registry import BloomFilterRegistry, FilterKey
from repro.core.join_graph import JoinGraph
from repro.errors import ExecutionError
from repro.exec.chunk import DEFAULT_CHUNK_SIZE
from repro.exec.kernels import (
    HashIndex,
    JoinMatches,
    PartitionedHashIndex,
    bloom_probe_cost,
    combine_key_columns_pair,
    hash_probe_cost,
)
from repro.exec.parallel import ParallelismModel
from repro.exec.relation import BoundRelation, IntermediateResult
from repro.exec.statistics import ExecutionStats, JoinStepStats, OpStats, TransferStepStats
from repro.plan.physical import (
    SCOPE_JOIN,
    Aggregate,
    BloomBuild,
    BloomProbe,
    FilterPush,
    HashBuild,
    HashProbe,
    Operand,
    Partition,
    PartitionedHashBuild,
    PartitionedHashProbe,
    PhysicalPlan,
    Scan,
    SemiJoinReduce,
)
from repro.query import PostJoinPredicate, QuerySpec
from repro.storage.buffer import MemoryGovernor

#: Threads the parallel backend uses when not configured explicitly: one per
#: CPU, capped at the paper testbed's 32.
MAX_DEFAULT_THREADS = 32

#: Morsel granularity of the parallel backend.  Larger than the chunked
#: backend's simulation granularity: each morsel must carry enough work to
#: amortize task dispatch in pure Python.
DEFAULT_MORSEL_SIZE = 32_768


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------
class ExecutionBackend:
    """Strategy object for the probe/match hot loops of the pipeline executor.

    ``tasks_dispatched`` counts the morsels / partition tasks the backend has
    processed; the executor samples it around each op to surface per-op
    parallelism counters in ``ExecutionStats.op_stats``.
    """

    name = "backend"

    def __init__(self) -> None:
        self.tasks_dispatched = 0

    def probe_mask(self, keys: np.ndarray, probe_fn, prepare=None) -> np.ndarray:
        """Evaluate ``probe_fn`` (keys -> boolean mask) over ``keys``.

        ``prepare`` (optional thunk) freezes lazily-built probe structures for
        concurrent read-only access; only fan-out backends invoke it.
        """
        raise NotImplementedError

    def match(self, probe_keys: np.ndarray, index: HashIndex) -> JoinMatches:
        """Match probe keys against a build-side index."""
        raise NotImplementedError

    def map_tasks(self, tasks: Sequence[Callable[[], object]]) -> List[object]:
        """Run independent thunks and return their results in order."""
        self.tasks_dispatched += len(tasks)
        return [task() for task in tasks]

    def account_probe(self, probe_rows: int) -> None:
        """Accrue simulated-parallelism cost for a probe pipeline that bypasses
        :meth:`probe_mask`/:meth:`match` (the partitioned join path).  Only the
        chunked backend's Figure 14 model does anything here."""

    def close(self) -> None:
        """Release backend resources (worker pools); idempotent."""


class SerialBackend(ExecutionBackend):
    """Whole-column execution: one vectorized kernel call per probe."""

    name = "serial"

    def probe_mask(self, keys: np.ndarray, probe_fn, prepare=None) -> np.ndarray:
        return probe_fn(keys)

    def match(self, probe_keys: np.ndarray, index: HashIndex) -> JoinMatches:
        return index.match(probe_keys)


class ChunkedBackend(ExecutionBackend):
    """Morsel-driven execution: probe inputs are processed chunk at a time.

    Produces results identical to :class:`SerialBackend` while exercising the
    chunked granularity of the original push-based engine, and accrues the
    simulated multi-threaded cost of every probe pipeline through a
    :class:`~repro.exec.parallel.ParallelismModel` (the Figure 14 model: a
    probe side with few chunks cannot keep all threads busy).
    """

    name = "chunked"

    def __init__(
        self,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        parallelism: Optional[ParallelismModel] = None,
    ) -> None:
        super().__init__()
        if chunk_size <= 0:
            raise ExecutionError("chunk size must be positive")
        self.chunk_size = chunk_size
        self.parallelism = parallelism or ParallelismModel(chunk_size=chunk_size)
        self.simulated_cost = 0.0

    def _account(self, probe_rows: int) -> None:
        effective = self.parallelism.effective_parallelism(probe_rows)
        self.simulated_cost += float(probe_rows) / effective + self.parallelism.pipeline_overhead

    def account_probe(self, probe_rows: int) -> None:
        self._account(probe_rows)

    def probe_mask(self, keys: np.ndarray, probe_fn, prepare=None) -> np.ndarray:
        keys = np.asarray(keys)
        self._account(int(keys.shape[0]))
        if keys.shape[0] <= self.chunk_size:
            self.tasks_dispatched += 1
            return probe_fn(keys)
        parts = [
            probe_fn(keys[start : start + self.chunk_size])
            for start in range(0, keys.shape[0], self.chunk_size)
        ]
        self.tasks_dispatched += len(parts)
        return np.concatenate(parts)

    def match(self, probe_keys: np.ndarray, index: HashIndex) -> JoinMatches:
        probe_keys = np.asarray(probe_keys)
        self._account(int(probe_keys.shape[0]))
        if probe_keys.shape[0] <= self.chunk_size:
            self.tasks_dispatched += 1
            return index.match(probe_keys)
        probe_parts: List[np.ndarray] = []
        build_parts: List[np.ndarray] = []
        for start in range(0, probe_keys.shape[0], self.chunk_size):
            matches = index.match(probe_keys[start : start + self.chunk_size])
            probe_parts.append(matches.probe_indices + start)
            build_parts.append(matches.build_indices)
        self.tasks_dispatched += len(probe_parts)
        return JoinMatches(
            probe_indices=np.concatenate(probe_parts),
            build_indices=np.concatenate(build_parts),
        )


class ParallelBackend(ExecutionBackend):
    """Morsel-parallel execution over a real thread pool.

    Probe inputs are cut into ``morsel_size``-row morsels dispatched to a
    ``ThreadPoolExecutor``; the NumPy probe kernels (Bloom probes, bitmap /
    binary-search membership, ``searchsorted`` matching) release the GIL on
    large arrays, so morsels genuinely overlap.  Futures are gathered in
    dispatch order and concatenated, which makes every result bit-identical
    to the serial backend regardless of thread scheduling.  Lazily-built
    probe structures are frozen (``HashIndex.prepare``/``prepare_match``)
    before fan-out so worker threads only read shared state.

    The pool is created on first use and must be released with
    :meth:`close` (the engine does this per execution).
    """

    name = "parallel"

    def __init__(
        self,
        num_threads: Optional[int] = None,
        morsel_size: int = DEFAULT_MORSEL_SIZE,
    ) -> None:
        super().__init__()
        if num_threads is not None and num_threads <= 0:
            raise ExecutionError("parallel backend needs at least one thread")
        if morsel_size <= 0:
            raise ExecutionError("morsel size must be positive")
        self.num_threads = num_threads or min(MAX_DEFAULT_THREADS, os.cpu_count() or 1)
        self.morsel_size = morsel_size
        self._pool: Optional[ThreadPoolExecutor] = None

    def _pool_instance(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_threads, thread_name_prefix="repro-morsel"
            )
        return self._pool

    def map_tasks(self, tasks: Sequence[Callable[[], object]]) -> List[object]:
        tasks = list(tasks)
        self.tasks_dispatched += len(tasks)
        if len(tasks) <= 1 or self.num_threads == 1:
            return [task() for task in tasks]
        pool = self._pool_instance()
        futures = [pool.submit(task) for task in tasks]
        return [future.result() for future in futures]

    def _morsels(self, total_rows: int) -> List[Tuple[int, int]]:
        return [
            (start, min(start + self.morsel_size, total_rows))
            for start in range(0, total_rows, self.morsel_size)
        ]

    def probe_mask(self, keys: np.ndarray, probe_fn, prepare=None) -> np.ndarray:
        keys = np.asarray(keys)
        if keys.shape[0] <= self.morsel_size:
            self.tasks_dispatched += 1
            return probe_fn(keys)
        if prepare is not None:
            prepare()
        parts = self.map_tasks(
            [
                (lambda lo=lo, hi=hi: probe_fn(keys[lo:hi]))
                for lo, hi in self._morsels(int(keys.shape[0]))
            ]
        )
        return np.concatenate(parts)

    def match(self, probe_keys: np.ndarray, index: HashIndex) -> JoinMatches:
        probe_keys = np.asarray(probe_keys)
        if probe_keys.shape[0] <= self.morsel_size:
            self.tasks_dispatched += 1
            return index.match(probe_keys)
        index.prepare_match()
        morsels = self._morsels(int(probe_keys.shape[0]))
        results = self.map_tasks(
            [(lambda lo=lo, hi=hi: index.match(probe_keys[lo:hi])) for lo, hi in morsels]
        )
        probe_parts = [m.probe_indices + lo for m, (lo, _) in zip(results, morsels)]
        return JoinMatches(
            probe_indices=np.concatenate(probe_parts),
            build_indices=np.concatenate([m.build_indices for m in results]),
        )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_backend(
    name: str,
    chunk_size: Optional[int] = None,
    num_threads: Optional[int] = None,
) -> ExecutionBackend:
    """Instantiate a backend by name (``"serial"``, ``"chunked"``, or ``"parallel"``).

    ``chunk_size=None`` takes each backend's own default granularity
    (:data:`~repro.exec.chunk.DEFAULT_CHUNK_SIZE` for the chunked backend,
    the larger :data:`DEFAULT_MORSEL_SIZE` for the parallel one).
    """
    if name == "serial":
        return SerialBackend()
    if name == "chunked":
        return ChunkedBackend(
            chunk_size=DEFAULT_CHUNK_SIZE if chunk_size is None else chunk_size
        )
    if name == "parallel":
        return ParallelBackend(
            num_threads=num_threads,
            morsel_size=DEFAULT_MORSEL_SIZE if chunk_size is None else chunk_size,
        )
    raise ExecutionError(
        f"unknown pipeline backend {name!r}; expected 'serial', 'chunked', or 'parallel'"
    )


# ---------------------------------------------------------------------------
# Options / result
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PipelineOptions:
    """Runtime knobs of the pipeline executor (compiled plans carry no data params)."""

    transfer_fpr: float = DEFAULT_FPR
    join_fpr: float = DEFAULT_FPR
    prune_trivial_semijoins: bool = True
    allow_cartesian_products: bool = False


@dataclass
class PipelineResult:
    """Outcome of one :meth:`PipelineExecutor.run` call."""

    relations: Dict[str, BoundRelation]
    final: Optional[IntermediateResult] = None
    aggregates: Optional[Dict[str, float]] = None


#: Execution phase each op kind is accounted under (join-scoped Bloom ops override).
_PHASE_BY_KIND = {
    "scan": "scan_filter",
    "filter_push": "scan_filter",
    "bloom_build": "transfer",
    "bloom_probe": "transfer",
    "semi_join_reduce": "transfer",
    "hash_build": "join",
    "hash_probe": "join",
    "partition": "join",
    "partitioned_hash_build": "join",
    "partitioned_hash_probe": "join",
    "aggregate": "aggregate",
}


@dataclass
class _TransferStage:
    """Build-side state handed from a transfer ``BloomBuild`` to its ``BloomProbe``."""

    bloom: BloomFilter
    target_keys: np.ndarray
    build_rows: int


@dataclass
class _JoinBloomStage:
    """State handed from a join-scoped ``BloomBuild`` to its ``BloomProbe``."""

    bloom: BloomFilter
    probe_keys: np.ndarray
    build_keys: np.ndarray


@dataclass
class _BuildStage:
    """Materialized build side handed from ``HashBuild`` to ``HashProbe``."""

    result: IntermediateResult
    index: Optional[HashIndex] = None
    keys: Optional[np.ndarray] = None
    partitioned: Optional[PartitionedHashIndex] = None


class PipelineExecutor:
    """Runs a compiled :class:`~repro.plan.physical.PhysicalPlan` op list.

    One executor instance serves one query execution (it owns the run's
    Bloom-filter registry, hash-index cache, and pending post-join
    predicates); the backend decides how the probe hot loops run.
    """

    def __init__(
        self,
        query: QuerySpec,
        graph: JoinGraph,
        catalog=None,
        options: Optional[PipelineOptions] = None,
        backend: Optional[ExecutionBackend] = None,
        registry: Optional[BloomFilterRegistry] = None,
        governor: Optional[MemoryGovernor] = None,
    ) -> None:
        self.query = query
        self.graph = graph
        self.catalog = catalog
        self.options = options or PipelineOptions()
        self.backend = backend or SerialBackend()
        self.registry = registry or BloomFilterRegistry()
        self.governor = governor
        self._refs = {ref.alias: ref for ref in query.relations}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self,
        plan: PhysicalPlan,
        stats: ExecutionStats,
        relations: Optional[Dict[str, BoundRelation]] = None,
        masks: Optional[Mapping[str, Optional[np.ndarray]]] = None,
        finalize_root: Optional[Operand] = None,
    ) -> PipelineResult:
        """Execute every op of ``plan`` in order.

        ``relations`` supplies pre-bound relations for plan *fragments* that
        carry no ``Scan`` ops (the transfer / join compilers); ``masks``
        supplies precomputed base-filter masks so predicates evaluated during
        planning are not evaluated again by ``FilterPush``.  With
        ``finalize_root`` (fragments without an ``Aggregate`` op) the root
        operand is materialized, remaining post-join predicates are applied,
        and ``stats.output_rows`` is set.
        """
        self._relations: Dict[str, BoundRelation] = relations if relations is not None else {}
        self._masks = masks
        self._slots: Dict[int, IntermediateResult] = {}
        self._materialized: Dict[Operand, IntermediateResult] = {}
        self._transfer_stages: Dict[int, _TransferStage] = {}
        self._join_bloom_stages: Dict[int, _JoinBloomStage] = {}
        self._build_stages: Dict[int, _BuildStage] = {}
        self._skipped_steps: set[int] = set()
        self._join_bloom_eliminated: Dict[int, int] = {}
        self._join_probe_keys: Dict[int, np.ndarray] = {}
        self._index_cache: Dict[Tuple[str, Tuple[str, ...]], Tuple[int, HashIndex]] = {}
        self._filtered: Optional[set[str]] = None
        self._pending_predicates: List[PostJoinPredicate] = list(self.query.post_join_predicates)
        self._aggregates: Optional[Dict[str, float]] = None
        self._final: Optional[IntermediateResult] = None

        base_simulated = getattr(self.backend, "simulated_cost", 0.0)
        governor = self.governor
        if governor is not None:
            base_spill_events = governor.spill_events
            base_spilled = governor.spilled_bytes
            base_reloaded = governor.reloaded_bytes
        for index, op in enumerate(plan):
            phase = _PHASE_BY_KIND.get(op.kind, "join")
            if getattr(op, "scope", None) == SCOPE_JOIN:
                phase = "join"
            tasks_before = self.backend.tasks_dispatched
            spilled_before = governor.spilled_bytes if governor is not None else 0
            start = time.perf_counter()
            rows_in, rows_out, skipped = self._dispatch(op, stats)
            elapsed = time.perf_counter() - start
            setattr(stats.timings, phase, getattr(stats.timings, phase) + elapsed)
            stats.op_stats.append(
                OpStats(
                    index=index,
                    kind=op.kind,
                    detail=op.describe(),
                    rows_in=rows_in,
                    rows_out=rows_out,
                    seconds=elapsed,
                    skipped=skipped,
                    morsels=self.backend.tasks_dispatched - tasks_before,
                    spilled_bytes=(
                        governor.spilled_bytes - spilled_before if governor is not None else 0
                    ),
                )
            )

        if finalize_root is not None and self._final is None:
            with stats.time_phase("join"):
                final = self._materialize(finalize_root)
                final = self._apply_ready_predicates(final, force_all=True)
            stats.output_rows = final.num_rows
            self._final = final

        simulated = getattr(self.backend, "simulated_cost", 0.0) - base_simulated
        if simulated:
            stats.simulated_parallel_cost += simulated
        if governor is not None:
            stats.peak_memory_bytes = max(stats.peak_memory_bytes, governor.peak_reserved_bytes)
            stats.spill_events += governor.spill_events - base_spill_events
            stats.spilled_bytes += governor.spilled_bytes - base_spilled
            stats.reloaded_bytes += governor.reloaded_bytes - base_reloaded

        return PipelineResult(
            relations=self._relations,
            final=self._final,
            aggregates=self._aggregates,
        )

    # ------------------------------------------------------------------
    # Op dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, op, stats: ExecutionStats) -> Tuple[int, int, bool]:
        if isinstance(op, Scan):
            return self._exec_scan(op, stats)
        if isinstance(op, FilterPush):
            return self._exec_filter_push(op, stats)
        if isinstance(op, BloomBuild):
            if op.scope == SCOPE_JOIN:
                return self._exec_join_bloom_build(op, stats)
            return self._exec_transfer_bloom_build(op, stats)
        if isinstance(op, BloomProbe):
            if op.scope == SCOPE_JOIN:
                return self._exec_join_bloom_probe(op, stats)
            return self._exec_transfer_bloom_probe(op, stats)
        if isinstance(op, SemiJoinReduce):
            return self._exec_semi_join_reduce(op, stats)
        if isinstance(op, HashBuild):
            return self._exec_hash_build(op, stats)
        if isinstance(op, HashProbe):
            return self._exec_hash_probe(op, stats)
        if isinstance(op, Partition):
            return self._exec_partition(op, stats)
        if isinstance(op, PartitionedHashBuild):
            return self._exec_partitioned_hash_build(op, stats)
        if isinstance(op, PartitionedHashProbe):
            return self._exec_partitioned_hash_probe(op, stats)
        if isinstance(op, Aggregate):
            return self._exec_aggregate(op, stats)
        raise ExecutionError(f"pipeline executor cannot run op {op!r}")

    # -- scan / filter --------------------------------------------------
    def _exec_scan(self, op: Scan, stats: ExecutionStats) -> Tuple[int, int, bool]:
        if self.catalog is None:
            raise ExecutionError("pipeline plans with Scan ops require a catalog")
        table = self.catalog.table(op.table)
        self._relations[op.alias] = BoundRelation.from_table(op.alias, table)
        stats.base_rows[op.alias] = table.num_rows
        stats.filtered_rows[op.alias] = table.num_rows
        return table.num_rows, table.num_rows, False

    def _exec_filter_push(self, op: FilterPush, stats: ExecutionStats) -> Tuple[int, int, bool]:
        relation = self._relations[op.alias]
        rows_in = relation.num_rows
        if self._masks is not None and op.alias in self._masks and self._masks[op.alias] is not None:
            mask = np.asarray(self._masks[op.alias], dtype=bool)
        else:
            ref = self._refs.get(op.alias)
            if ref is None or ref.filter is None:
                return rows_in, rows_in, True
            mask = np.asarray(ref.filter.evaluate(relation.table), dtype=bool)
        relation.keep(mask)
        stats.filtered_rows[op.alias] = relation.num_rows
        return rows_in, relation.num_rows, False

    # -- transfer phase -------------------------------------------------
    def _exec_transfer_bloom_build(self, op: BloomBuild, stats: ExecutionStats) -> Tuple[int, int, bool]:
        source = self._relations[op.source.alias]
        target = self._relations[op.target.alias]
        if self._should_prune(op.prunable, op.source.alias):
            self._skip_transfer_step(op, target, stats)
            return source.num_rows, source.num_rows, True
        source_keys, target_keys = self._step_keys(op, source, target)
        bloom = BloomFilter(expected_keys=source.num_rows, fpr=self.options.transfer_fpr)
        bloom.insert(source_keys)
        key = FilterKey(
            relation=op.source.alias,
            attribute="+".join(op.attributes),
            pass_id=op.pass_,
        )
        self.registry.publish(key, bloom, replace=True)
        self._transfer_stages[op.step_id] = _TransferStage(
            bloom=bloom, target_keys=target_keys, build_rows=source.num_rows
        )
        return source.num_rows, source.num_rows, False

    def _exec_transfer_bloom_probe(self, op: BloomProbe, stats: ExecutionStats) -> Tuple[int, int, bool]:
        target = self._relations[op.target.alias]
        if op.step_id in self._skipped_steps:
            return target.num_rows, target.num_rows, True
        stage = self._transfer_stages.pop(op.step_id)
        rows_before = target.num_rows
        mask = self.backend.probe_mask(stage.target_keys, stage.bloom.probe)
        target.keep(mask)
        self._record_transfer_step(
            op,
            rows_before=rows_before,
            rows_after=target.num_rows,
            filter_bytes=stage.bloom.size_bytes,
            build_rows=stage.build_rows,
            stats=stats,
        )
        return rows_before, target.num_rows, False

    def _exec_semi_join_reduce(self, op: SemiJoinReduce, stats: ExecutionStats) -> Tuple[int, int, bool]:
        source = self._relations[op.source.alias]
        target = self._relations[op.target.alias]
        if self._should_prune(op.prunable, op.source.alias):
            self._skip_transfer_step(op, target, stats)
            return target.num_rows, target.num_rows, True
        if len(op.attributes) == 1:
            # Single-attribute keys are side-independent: resolve the target
            # side and check the index cache before gathering source keys —
            # a cache hit (forward + backward pass probing the same source)
            # skips the source-side gather entirely.
            attr_class = self.graph.attribute_classes[op.attributes[0]]
            target_keys = target.key_values(attr_class.column_of(op.target.alias))
            cached = self._index_cache.get((op.source.alias, op.attributes))
            if cached is not None and cached[0] == source.version:
                index = cached[1]
            else:
                source_keys = source.key_values(attr_class.column_of(op.source.alias))
                index = HashIndex(source_keys)
                self._index_cache[(op.source.alias, op.attributes)] = (source.version, index)
        else:
            source_keys, target_keys = self._step_keys(op, source, target)
            index = HashIndex(source_keys)
        rows_before = target.num_rows
        mask = self.backend.probe_mask(
            target_keys,
            index.contains,
            prepare=lambda: index.prepare(int(np.asarray(target_keys).shape[0])),
        )
        target.keep(mask)
        self._record_transfer_step(
            op,
            rows_before=rows_before,
            rows_after=target.num_rows,
            filter_bytes=int(index.keys.nbytes),
            build_rows=source.num_rows,
            stats=stats,
        )
        return rows_before, target.num_rows, False

    def _should_prune(self, prunable: bool, source_alias: str) -> bool:
        if not (self.options.prune_trivial_semijoins and prunable):
            return False
        if self._filtered is None:
            self._filtered = self._initially_filtered()
        return source_alias not in self._filtered

    def _initially_filtered(self) -> set[str]:
        """Relations whose base predicate eliminated at least one row (§4.3)."""
        filtered: set[str] = set()
        for ref in self.query.relations:
            relation = self._relations.get(ref.alias)
            if relation is None:
                continue
            if ref.filter is not None and relation.num_rows < relation.table.num_rows:
                filtered.add(ref.alias)
        return filtered

    def _skip_transfer_step(self, op, target: BoundRelation, stats: ExecutionStats) -> None:
        if op.step_id in self._skipped_steps:
            return
        self._skipped_steps.add(op.step_id)
        stats.transfer_steps.append(
            TransferStepStats(
                source=op.source.alias,
                target=op.target.alias,
                pass_=op.pass_,
                rows_before=target.num_rows,
                rows_after=target.num_rows,
                skipped=True,
            )
        )

    def _record_transfer_step(
        self,
        op,
        rows_before: int,
        rows_after: int,
        filter_bytes: int,
        build_rows: int,
        stats: ExecutionStats,
    ) -> None:
        stats.transfer_steps.append(
            TransferStepStats(
                source=op.source.alias,
                target=op.target.alias,
                pass_=op.pass_,
                rows_before=rows_before,
                rows_after=rows_after,
                filter_bytes=filter_bytes,
                build_rows=build_rows,
            )
        )
        stats.bloom_bytes += filter_bytes
        stats.abstract_cost += bloom_probe_cost(rows_before, max(filter_bytes, 1))
        if rows_after < rows_before:
            if self._filtered is None:
                self._filtered = self._initially_filtered()
            self._filtered.add(op.target.alias)

    def _step_keys(self, op, source: BoundRelation, target: BoundRelation):
        """Resolve a transfer step's attribute classes to concrete key arrays."""
        source_columns = []
        target_columns = []
        for attribute in op.attributes:
            attr_class = self.graph.attribute_classes[attribute]
            source_columns.append(source.key_values(attr_class.column_of(op.source.alias)))
            target_columns.append(target.key_values(attr_class.column_of(op.target.alias)))
        if not source_columns:
            raise ExecutionError(f"transfer op {op.describe()} has no join attributes")
        return combine_key_columns_pair(source_columns, target_columns)

    def _indexed_keys(
        self,
        alias: str,
        attributes: Tuple[str, ...],
        relation: BoundRelation,
        keys: np.ndarray,
    ) -> HashIndex:
        """Build (or reuse) the sorted index over one side's key array.

        Single-attribute keys are side-independent, so their sorted index can
        be cached per ``(alias, attributes)`` and reused until the relation
        is reduced again — the forward and backward transfer passes probing
        the same source then sort once.  Composite keys are densified jointly
        with the probe side and cannot be cached across steps.
        """
        if len(attributes) != 1:
            return HashIndex(keys)
        cache_key = (alias, attributes)
        cached = self._index_cache.get(cache_key)
        if cached is not None and cached[0] == relation.version:
            return cached[1]
        index = HashIndex(keys)
        self._index_cache[cache_key] = (relation.version, index)
        return index

    # -- join phase -----------------------------------------------------
    def _materialize(self, operand: Operand) -> IntermediateResult:
        if not operand.is_relation:
            try:
                return self._slots[operand.slot]
            except KeyError:
                raise ExecutionError(f"pipeline slot ${operand.slot} was never produced") from None
        cached = self._materialized.get(operand)
        if cached is None:
            if operand.alias not in self._relations:
                raise ExecutionError(f"plan references unknown relation {operand.alias!r}")
            cached = IntermediateResult.from_relation(self._relations[operand.alias])
            self._materialized[operand] = cached
        return cached

    def _set_operand(self, operand: Operand, result: IntermediateResult) -> None:
        if operand.is_relation:
            self._materialized[operand] = result
        else:
            self._slots[operand.slot] = result

    def _exec_join_bloom_build(self, op: BloomBuild, stats: ExecutionStats) -> Tuple[int, int, bool]:
        build = self._materialize(op.source)
        probe = self._materialize(op.target)
        if build.num_rows == 0:
            return build.num_rows, build.num_rows, True
        probe_keys, build_keys = self._pair_keys(op.attributes, probe, build)
        bloom = BloomFilter(expected_keys=build.num_rows, fpr=self.options.join_fpr)
        bloom.insert(build_keys)
        self._join_bloom_stages[op.step_id] = _JoinBloomStage(
            bloom=bloom, probe_keys=probe_keys, build_keys=build_keys
        )
        return build.num_rows, build.num_rows, False

    def _exec_join_bloom_probe(self, op: BloomProbe, stats: ExecutionStats) -> Tuple[int, int, bool]:
        probe = self._materialize(op.target)
        stage = self._join_bloom_stages.pop(op.step_id, None)
        if stage is None:
            return probe.num_rows, probe.num_rows, True
        rows_before = probe.num_rows
        hits = self.backend.probe_mask(stage.probe_keys, stage.bloom.probe)
        keep = np.nonzero(hits)[0]
        reduced = probe.take(keep)
        self._set_operand(op.target, reduced)
        self._join_bloom_eliminated[op.step_id] = rows_before - int(hits.sum())
        # Hand the already-filtered pair keys to the upcoming hash join.
        self._build_stages[op.step_id] = _BuildStage(
            result=self._materialize(op.source),
            keys=stage.build_keys,
        )
        self._join_probe_keys[op.step_id] = stage.probe_keys[keep]
        stats.abstract_cost += bloom_probe_cost(int(hits.shape[0]), stage.bloom.size_bytes)
        return rows_before, reduced.num_rows, False

    def _exec_hash_build(self, op: HashBuild, stats: ExecutionStats) -> Tuple[int, int, bool]:
        build = self._materialize(op.input)
        stage = self._build_stages.get(op.build_id)
        if stage is None:
            stage = _BuildStage(result=build)
            self._build_stages[op.build_id] = stage
        else:
            stage.result = build
        if stage.keys is None and len(op.attributes) == 1:
            # Single-attribute keys are side-independent: gather and sort now
            # so the probe op only probes.  An index cached by the transfer
            # phase over the same relation keys skips the gather entirely.
            stage.index = self._cached_relation_index(op, build)
            if stage.index is None:
                stage.keys = self._single_attribute_keys(op.attributes[0], build)
                stage.index = self._build_index(op, stage.keys)
        elif stage.keys is not None:
            stage.index = self._build_index(op, stage.keys)
        self._reserve_build(op.build_id, stage)
        return build.num_rows, build.num_rows, False

    # -- memory governance ----------------------------------------------
    def _stage_bytes(self, stage: _BuildStage) -> int:
        """Approximate bytes materialized by one build stage."""
        total = sum(int(arr.nbytes) for arr in stage.result.positions.values())
        if stage.keys is not None:
            total += int(stage.keys.nbytes)
        elif stage.index is not None:
            total += int(stage.index.keys.nbytes)
        return total

    def _reserve_build(self, build_id: int, stage: _BuildStage) -> None:
        if self.governor is not None:
            self.governor.reserve(f"build:{build_id}", self._stage_bytes(stage))

    def _touch_build(self, build_id: int) -> None:
        if self.governor is not None:
            self.governor.touch(f"build:{build_id}")

    def _release_build(self, build_id: int, stage: _BuildStage) -> None:
        if self.governor is None:
            return
        self.governor.release(f"build:{build_id}")
        if stage.partitioned is not None:
            for p in range(stage.partitioned.num_partitions):
                self.governor.release(f"partition:{build_id}:{p}")

    def _cached_relation_index(
        self, op: HashBuild, build: IntermediateResult
    ) -> Optional[HashIndex]:
        """A still-valid cached index over the build relation's keys, if any."""
        if not (op.input.is_relation and len(op.attributes) == 1):
            return None
        relation = self._relations[op.input.alias]
        if build.num_rows != relation.num_rows:
            return None
        cached = self._index_cache.get((op.input.alias, op.attributes))
        if cached is not None and cached[0] == relation.version:
            return cached[1]
        return None

    def _build_index(self, op: HashBuild, keys: np.ndarray) -> HashIndex:
        if op.input.is_relation and len(op.attributes) == 1:
            relation = self._relations[op.input.alias]
            # Publish the index for reuse when the build side is the whole
            # (un-reduced-since) relation.
            materialized = self._materialized.get(op.input)
            if materialized is None or materialized.num_rows == relation.num_rows:
                return self._indexed_keys(op.input.alias, op.attributes, relation, keys)
        return HashIndex(keys)

    def _single_attribute_keys(self, attribute: str, result: IntermediateResult) -> np.ndarray:
        attr_class = self.graph.attribute_classes[attribute]
        alias = _representative_alias(attr_class, result.aliases)
        values = result.column_values(self._relations, alias, attr_class.column_of(alias))
        return np.asarray(values).astype(np.int64, copy=False)

    def _pair_keys(
        self,
        attributes: Tuple[str, ...],
        probe: IntermediateResult,
        build: IntermediateResult,
    ) -> Tuple[np.ndarray, np.ndarray]:
        probe_columns = []
        build_columns = []
        for attribute in attributes:
            attr_class = self.graph.attribute_classes[attribute]
            probe_alias = _representative_alias(attr_class, probe.aliases)
            build_alias = _representative_alias(attr_class, build.aliases)
            probe_columns.append(
                probe.column_values(self._relations, probe_alias, attr_class.column_of(probe_alias))
            )
            build_columns.append(
                build.column_values(self._relations, build_alias, attr_class.column_of(build_alias))
            )
        return combine_key_columns_pair(probe_columns, build_columns)

    def _exec_hash_probe(self, op: HashProbe, stats: ExecutionStats) -> Tuple[int, int, bool]:
        stage = self._build_stages.pop(op.build_id)
        build = stage.result
        probe = self._materialize(op.probe)
        self._touch_build(op.build_id)

        if not op.attributes:
            joined = self._cartesian_product(probe, build, stats)
            self._slots[op.output_slot] = self._apply_ready_predicates(joined)
            self._release_build(op.build_id, stage)
            return probe.num_rows, joined.num_rows, False

        staged_probe_keys = self._join_probe_keys.pop(op.build_id, None)
        if staged_probe_keys is not None:
            probe_keys = staged_probe_keys
            index = stage.index or HashIndex(stage.keys)
        elif len(op.attributes) == 1:
            probe_keys = self._single_attribute_keys(op.attributes[0], probe)
            index = stage.index if stage.index is not None else HashIndex(
                stage.keys
                if stage.keys is not None
                else self._single_attribute_keys(op.attributes[0], build)
            )
        else:
            probe_keys, build_keys = self._pair_keys(op.attributes, probe, build)
            index = HashIndex(build_keys)

        matches = self.backend.match(probe_keys, index)
        joined = probe.merge(build, matches.probe_indices, matches.build_indices)

        stats.join_steps.append(
            JoinStepStats(
                left_aliases=tuple(sorted(probe.aliases)),
                right_aliases=tuple(sorted(build.aliases)),
                probe_rows=probe.num_rows,
                build_rows=build.num_rows,
                output_rows=joined.num_rows,
                bloom_prefiltered_rows=self._join_bloom_eliminated.pop(op.build_id, 0),
            )
        )
        stats.abstract_cost += (
            hash_probe_cost(probe.num_rows, build.num_rows)
            + float(build.num_rows)
            + float(joined.num_rows)
        )
        self._slots[op.output_slot] = self._apply_ready_predicates(joined)
        self._release_build(op.build_id, stage)
        return probe.num_rows, joined.num_rows, False

    # -- radix-partitioned join phase -----------------------------------
    def _exec_partition(self, op: Partition, stats: ExecutionStats) -> Tuple[int, int, bool]:
        build = self._materialize(op.input)
        stage = self._build_stages.get(op.build_id)
        if stage is None:
            stage = _BuildStage(result=build)
            self._build_stages[op.build_id] = stage
        else:
            # A join-scoped Bloom pair already staged the (filtered) pair keys.
            stage.result = build
        if stage.keys is None:
            stage.keys = self._single_attribute_keys(op.attributes[0], build)
        stage.partitioned = PartitionedHashIndex(stage.keys, bits=op.bits)
        # The build side's materialized rows are reserved like the monolithic
        # path's; the partitioned key/order copies are reserved per partition
        # (the granularity the governor spills at).
        self._reserve_build(op.build_id, stage)
        if self.governor is not None:
            partitioned = stage.partitioned
            for p in range(partitioned.num_partitions):
                nbytes = partitioned.partition_bytes(p)
                if nbytes:
                    self.governor.reserve(f"partition:{op.build_id}:{p}", nbytes)
        return build.num_rows, build.num_rows, False

    def _exec_partitioned_hash_build(
        self, op: PartitionedHashBuild, stats: ExecutionStats
    ) -> Tuple[int, int, bool]:
        stage = self._build_stages[op.build_id]
        assert stage.partitioned is not None, "Partition op must precede PartitionedHashBuild"
        # Per-partition index builds are independent partial builds; map_tasks
        # is the pipeline breaker that merges them (parallel backends fan out).
        stage.partitioned.build(run_tasks=self.backend.map_tasks)
        rows = stage.partitioned.num_keys
        return rows, rows, False

    def _exec_partitioned_hash_probe(
        self, op: PartitionedHashProbe, stats: ExecutionStats
    ) -> Tuple[int, int, bool]:
        stage = self._build_stages.pop(op.build_id)
        assert stage.partitioned is not None, "Partition op must precede PartitionedHashProbe"
        build = stage.result
        probe = self._materialize(op.probe)
        self._touch_build(op.build_id)

        staged_probe_keys = self._join_probe_keys.pop(op.build_id, None)
        if staged_probe_keys is not None:
            probe_keys = staged_probe_keys
        else:
            probe_keys = self._single_attribute_keys(op.attributes[0], probe)
        self.backend.account_probe(int(np.asarray(probe_keys).shape[0]))
        # Only the partitions the probe actually visits are touched, so a
        # spilled partition is charged a reload iff the join reads it.
        on_partition = None
        if self.governor is not None:
            governor = self.governor
            on_partition = lambda p: governor.touch(f"partition:{op.build_id}:{p}")  # noqa: E731
        matches = stage.partitioned.match(
            probe_keys, run_tasks=self.backend.map_tasks, on_partition=on_partition
        )
        joined = probe.merge(build, matches.probe_indices, matches.build_indices)

        stats.join_steps.append(
            JoinStepStats(
                left_aliases=tuple(sorted(probe.aliases)),
                right_aliases=tuple(sorted(build.aliases)),
                probe_rows=probe.num_rows,
                build_rows=build.num_rows,
                output_rows=joined.num_rows,
                bloom_prefiltered_rows=self._join_bloom_eliminated.pop(op.build_id, 0),
            )
        )
        # Partitioned probes search cache-resident segments: charge the hash
        # probe cost at partition granularity rather than the full build size.
        per_partition = max(build.num_rows >> stage.partitioned.bits, 1)
        stats.abstract_cost += (
            hash_probe_cost(probe.num_rows, per_partition)
            + float(build.num_rows)
            + float(joined.num_rows)
        )
        self._slots[op.output_slot] = self._apply_ready_predicates(joined)
        self._release_build(op.build_id, stage)
        return probe.num_rows, joined.num_rows, False

    def _cartesian_product(
        self,
        left: IntermediateResult,
        right: IntermediateResult,
        stats: ExecutionStats,
    ) -> IntermediateResult:
        if not self.options.allow_cartesian_products:
            raise ExecutionError(
                "join plan contains a Cartesian product between "
                f"{sorted(left.aliases)} and {sorted(right.aliases)}"
            )
        left_idx = np.repeat(np.arange(left.num_rows, dtype=np.int64), right.num_rows)
        right_idx = np.tile(np.arange(right.num_rows, dtype=np.int64), left.num_rows)
        joined = left.merge(right, left_idx, right_idx)
        stats.join_steps.append(
            JoinStepStats(
                left_aliases=tuple(sorted(left.aliases)),
                right_aliases=tuple(sorted(right.aliases)),
                probe_rows=left.num_rows,
                build_rows=right.num_rows,
                output_rows=joined.num_rows,
            )
        )
        stats.abstract_cost += float(joined.num_rows)
        return joined

    # -- aggregation ----------------------------------------------------
    def _exec_aggregate(self, op: Aggregate, stats: ExecutionStats) -> Tuple[int, int, bool]:
        final = self._materialize(op.input)
        rows_in = final.num_rows
        final = self._apply_ready_predicates(final, force_all=True)
        stats.output_rows = final.num_rows
        self._final = final
        self._aggregates = compute_aggregates(self.query, self._relations, final)
        return rows_in, final.num_rows, False

    # -- post-join predicates -------------------------------------------
    def _apply_ready_predicates(
        self, result: IntermediateResult, force_all: bool = False
    ) -> IntermediateResult:
        if not self._pending_predicates:
            return result
        still_pending: List[PostJoinPredicate] = []
        for predicate in self._pending_predicates:
            ready = predicate.required_aliases() <= result.aliases
            if ready:
                result = self._apply_predicate(result, predicate)
            elif force_all:
                raise ExecutionError(
                    "post-join predicate references relations missing from the final result: "
                    f"{sorted(predicate.required_aliases() - result.aliases)}"
                )
            else:
                still_pending.append(predicate)
        self._pending_predicates = still_pending
        return result

    def _apply_predicate(
        self, result: IntermediateResult, predicate: PostJoinPredicate
    ) -> IntermediateResult:
        if result.num_rows == 0:
            return result
        overall = np.zeros(result.num_rows, dtype=bool)
        for conjunct in predicate.disjuncts:
            conjunct_mask = np.ones(result.num_rows, dtype=bool)
            for term in conjunct:
                conjunct_mask &= result.evaluate_qualified_comparison(self._relations, term)
            overall |= conjunct_mask
        return result.take(np.nonzero(overall)[0])


# ---------------------------------------------------------------------------
# Aggregation (shared by the pipeline executor and the join-phase façade)
# ---------------------------------------------------------------------------
def compute_aggregates(
    query: QuerySpec,
    relations: Dict[str, BoundRelation],
    result: IntermediateResult,
) -> Dict[str, float]:
    """Compute a query's aggregates over the final joined result."""
    values: Dict[str, float] = {}
    for index, spec in enumerate(query.aggregates):
        name = spec.output_name or f"agg_{index}"
        if spec.function == "count":
            values[name] = float(result.num_rows)
            continue
        assert spec.alias is not None and spec.column is not None
        column_values = result.column_values(relations, spec.alias, spec.column)
        values[name] = _apply_aggregate(spec.function, column_values)
    return values


def _apply_aggregate(function: str, values: np.ndarray) -> float:
    if values.size == 0:
        return 0.0
    if function == "sum":
        return float(values.sum())
    if function == "min":
        return float(values.min())
    if function == "max":
        return float(values.max())
    if function == "avg":
        return float(values.mean())
    raise ExecutionError(f"unsupported aggregate function {function!r}")


def _representative_alias(attr_class, aliases: frozenset) -> str:
    for alias in sorted(aliases):
        if attr_class.touches(alias):
            return alias
    raise ExecutionError(
        f"attribute class {attr_class.name!r} has no member among aliases {sorted(aliases)}"
    )
