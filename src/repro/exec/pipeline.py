"""Backend-pluggable pipeline executor for compiled :class:`PhysicalPlan` ops.

This is the single runtime behind every execution mode: the engine compiles
``(QuerySpec, JoinPlan, TransferSchedule)`` into one flat op list
(:mod:`repro.plan.physical`) and the :class:`PipelineExecutor` here runs it.
Transfer-phase ops (``BloomBuild``/``BloomProbe``/``SemiJoinReduce``) reduce
:class:`~repro.exec.relation.BoundRelation` objects in place; join-phase ops
(``HashBuild``/``HashProbe``) flow through late-materialized intermediate
*slots*; ``Aggregate`` finishes the query.  Each op is timed individually,
producing the uniform per-op trace (``ExecutionStats.op_stats``) shared by
all five modes.

Three backends implement the probe/match hot loops:

* :class:`SerialBackend` — whole-column NumPy kernels (the default);
* :class:`ChunkedBackend` — morsel-driven: probe inputs are processed in
  :data:`~repro.exec.chunk.DEFAULT_CHUNK_SIZE`-row chunks and a
  :class:`~repro.exec.parallel.ParallelismModel` accrues the simulated
  multi-threaded cost of each probe pipeline
  (``ExecutionStats.simulated_parallel_cost``).  Results are bit-identical
  to the serial backend.
* :class:`ParallelBackend` — a *real* morsel-driven scheduler over a
  ``ThreadPoolExecutor``: probe inputs are cut into chunk-granularity
  morsels dispatched to worker threads (the NumPy kernels release the GIL
  on large inputs), per-partition hash builds run as concurrent partial
  builds merged at the pipeline breaker, and results are gathered in
  dispatch order so they stay bit-identical to the serial backend.

Radix-partitioned joins (``Partition`` / ``PartitionedHashBuild`` /
``PartitionedHashProbe`` ops) execute on any backend; under the parallel
backend each partition is an independent task.  A
:class:`~repro.storage.buffer.MemoryGovernor`, when configured, is consulted
*during* execution: build sides and partitions reserve budget before
materializing, over-budget reservations spill through the
:class:`~repro.exec.spill.SpillManager` callback, and probing spilled state
charges the reload — surfaced per op in ``ExecutionStats.op_stats``.

The executor also owns the cross-pipeline :class:`~repro.exec.kernels.HashIndex`
cache: a build side probed by multiple pipelines (e.g. a join-tree node that
reduces several children during the backward transfer pass) is sorted once
and the sorted index is reused until the relation is reduced again.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.bloom.bloom_filter import (
    DEFAULT_FPR,
    BloomFilter,
    filter_bytes_for,
    hash_keys,
    key_patterns,
)
from repro.bloom.registry import BloomFilterRegistry, FilterKey
from repro.core.join_graph import JoinGraph
from repro.errors import BackendUnavailable, CatalogError, ExecutionError, MemoryExhausted
from repro.exec import faults
from repro.exec.adaptive import DEFAULT_MIN_YIELD, AdaptiveTransferController
from repro.exec.chunk import DEFAULT_CHUNK_SIZE
from repro.exec.faults import CancelToken
from repro.exec.kernels import (
    HashIndex,
    JoinMatches,
    PartitionedHashIndex,
    bloom_probe_cost,
    combine_key_columns_pair,
    hash_probe_cost,
)
from repro.exec.hashcache import HashCache
from repro.exec.parallel import ParallelismModel, gather_in_order
from repro.exec.relation import BoundRelation, IntermediateResult
from repro.obs.trace import Span
from repro.exec.statistics import ExecutionStats, JoinStepStats, OpStats, TransferStepStats
from repro.plan.physical import (
    SCOPE_JOIN,
    Aggregate,
    BloomBuild,
    BloomProbe,
    FilterPush,
    HashBuild,
    HashProbe,
    Operand,
    Partition,
    PartitionedHashBuild,
    PartitionedHashProbe,
    PhysicalPlan,
    Scan,
    SemiJoinReduce,
)
from repro.optimizer.cardinality import KMVSketch
from repro.query import PostJoinPredicate, QuerySpec
from repro.storage.artifacts import (
    FINGERPRINT_COLUMN,
    KIND_BLOOM,
    KIND_BLOOM_PASS,
    KIND_HASH_INDEX,
    KIND_NDV_SKETCH,
    ArtifactCache,
    ArtifactKey,
)
from repro.storage.buffer import MemoryGovernor

#: Threads the parallel backend uses when not configured explicitly: one per
#: CPU, capped at the paper testbed's 32.
MAX_DEFAULT_THREADS = 32

#: Morsel granularity of the parallel backend.  Larger than the chunked
#: backend's simulation granularity: each morsel must carry enough work to
#: amortize task dispatch in pure Python.
DEFAULT_MORSEL_SIZE = 32_768


#: A probe input: one key array, or a tuple of equal-length per-row arrays
#: (e.g. a precomputed (hashes, patterns) pair).  Backends slice every
#: component identically when cutting morsels, so a probe function receives
#: aligned slices.
ProbeInput = Union[np.ndarray, Tuple[np.ndarray, ...]]


def _as_probe_input(keys: ProbeInput) -> ProbeInput:
    if isinstance(keys, tuple):
        return tuple(np.asarray(part) for part in keys)
    return np.asarray(keys)


def _probe_rows(keys: ProbeInput) -> int:
    if isinstance(keys, tuple):
        return int(keys[0].shape[0])
    return int(keys.shape[0])


def _slice_probe_input(keys: ProbeInput, lo: int, hi: int) -> ProbeInput:
    if isinstance(keys, tuple):
        return tuple(part[lo:hi] for part in keys)
    return keys[lo:hi]


def _probe_input_rows(keys) -> int:
    """Row count of a probe input, including the process backend's lazy
    :class:`~repro.exec.process.ShmGather` (duck-typed via ``rows`` so this
    module never imports its own subclass's module)."""
    rows = getattr(keys, "rows", None)
    if rows is not None:
        return int(rows)
    return _probe_rows(_as_probe_input(keys))


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------
class ExecutionBackend:
    """Strategy object for the probe/match hot loops of the pipeline executor.

    ``tasks_dispatched`` counts the morsels / partition tasks the backend has
    processed; the executor samples it around each op to surface per-op
    parallelism counters in ``ExecutionStats.op_stats``.
    """

    name = "backend"

    def __init__(self) -> None:
        self.tasks_dispatched = 0
        #: Cooperative cancellation token installed by the engine for the
        #: current query (None: no deadline, no cancel).  Checked at morsel
        #: gather barriers and at chunk granularity inside long kernels.
        self.cancel: Optional[CancelToken] = None

    def ensure_ready(self) -> None:
        """Bring up backend resources (worker pools) before the first op.

        Raises :class:`~repro.errors.BackendUnavailable` when the backend
        cannot start — the engine's degradation ladder catches that and
        falls back to the next backend down.  The default backend needs no
        resources.
        """

    def _check_cancel(self) -> None:
        if self.cancel is not None:
            self.cancel.check()

    def probe_mask(self, keys: ProbeInput, probe_fn, prepare=None) -> np.ndarray:
        """Evaluate ``probe_fn`` (probe input -> boolean mask) over ``keys``.

        ``keys`` is a key array or a tuple of aligned per-row arrays (a
        precomputed hash/pattern pass); morsel backends slice every component
        identically.  ``prepare`` (optional thunk) freezes lazily-built probe
        structures for concurrent read-only access; only fan-out backends
        invoke it.
        """
        raise NotImplementedError

    def match(self, probe_keys: np.ndarray, index: HashIndex) -> JoinMatches:
        """Match probe keys against a build-side index."""
        raise NotImplementedError

    def map_tasks(self, tasks: Sequence[Callable[[], object]]) -> List[object]:
        """Run independent thunks and return their results in order."""
        self.tasks_dispatched += len(tasks)
        return [task() for task in tasks]

    def account_probe(self, probe_rows: int) -> None:
        """Accrue simulated-parallelism cost for a probe pipeline that bypasses
        :meth:`probe_mask`/:meth:`match` (the partitioned join path).  Only the
        chunked backend's Figure 14 model does anything here."""

    def close(self) -> None:
        """Release backend resources (worker pools); idempotent."""


#: Rows per cancellation check inside the serial backend's kernels when a
#: cancel token is installed.  Large enough that the chunking cost is noise
#: (the probe kernels are elementwise, so results stay bit-identical), small
#: enough that a deadline is honored promptly on big columns.
SERIAL_CANCEL_CHUNK = 1 << 18


class SerialBackend(ExecutionBackend):
    """Whole-column execution: one vectorized kernel call per probe.

    With a cancel token installed, long kernels run at
    :data:`SERIAL_CANCEL_CHUNK` granularity with the token checked between
    chunks — the probe kernels are elementwise and the match chunking applies
    the chunked backend's offset correction, so results are bit-identical to
    the single-call path.
    """

    name = "serial"

    def probe_mask(self, keys: ProbeInput, probe_fn, prepare=None) -> np.ndarray:
        if self.cancel is None:
            return probe_fn(keys)
        keys = _as_probe_input(keys)
        total = _probe_rows(keys)
        self._check_cancel()
        if total <= SERIAL_CANCEL_CHUNK:
            return probe_fn(keys)
        parts = []
        for start in range(0, total, SERIAL_CANCEL_CHUNK):
            self._check_cancel()
            parts.append(probe_fn(_slice_probe_input(keys, start, start + SERIAL_CANCEL_CHUNK)))
        return np.concatenate(parts)

    def match(self, probe_keys: np.ndarray, index: HashIndex) -> JoinMatches:
        if self.cancel is None:
            return index.match(probe_keys)
        probe_keys = np.asarray(probe_keys)
        self._check_cancel()
        if probe_keys.shape[0] <= SERIAL_CANCEL_CHUNK:
            return index.match(probe_keys)
        probe_parts: List[np.ndarray] = []
        build_parts: List[np.ndarray] = []
        for start in range(0, probe_keys.shape[0], SERIAL_CANCEL_CHUNK):
            self._check_cancel()
            matches = index.match(probe_keys[start : start + SERIAL_CANCEL_CHUNK])
            probe_parts.append(matches.probe_indices + start)
            build_parts.append(matches.build_indices)
        return JoinMatches(
            probe_indices=np.concatenate(probe_parts),
            build_indices=np.concatenate(build_parts),
        )


class ChunkedBackend(ExecutionBackend):
    """Morsel-driven execution: probe inputs are processed chunk at a time.

    Produces results identical to :class:`SerialBackend` while exercising the
    chunked granularity of the original push-based engine, and accrues the
    simulated multi-threaded cost of every probe pipeline through a
    :class:`~repro.exec.parallel.ParallelismModel` (the Figure 14 model: a
    probe side with few chunks cannot keep all threads busy).
    """

    name = "chunked"

    def __init__(
        self,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        parallelism: Optional[ParallelismModel] = None,
    ) -> None:
        super().__init__()
        if chunk_size <= 0:
            raise ExecutionError("chunk size must be positive")
        self.chunk_size = chunk_size
        self.parallelism = parallelism or ParallelismModel(chunk_size=chunk_size)
        self.simulated_cost = 0.0

    def _account(self, probe_rows: int) -> None:
        effective = self.parallelism.effective_parallelism(probe_rows)
        self.simulated_cost += float(probe_rows) / effective + self.parallelism.pipeline_overhead

    def account_probe(self, probe_rows: int) -> None:
        self._account(probe_rows)

    def probe_mask(self, keys: ProbeInput, probe_fn, prepare=None) -> np.ndarray:
        keys = _as_probe_input(keys)
        total = _probe_rows(keys)
        self._account(total)
        self._check_cancel()
        if total <= self.chunk_size:
            self.tasks_dispatched += 1
            return probe_fn(keys)
        parts = []
        for start in range(0, total, self.chunk_size):
            self._check_cancel()
            parts.append(probe_fn(_slice_probe_input(keys, start, start + self.chunk_size)))
        self.tasks_dispatched += len(parts)
        return np.concatenate(parts)

    def match(self, probe_keys: np.ndarray, index: HashIndex) -> JoinMatches:
        probe_keys = np.asarray(probe_keys)
        self._account(int(probe_keys.shape[0]))
        self._check_cancel()
        if probe_keys.shape[0] <= self.chunk_size:
            self.tasks_dispatched += 1
            return index.match(probe_keys)
        probe_parts: List[np.ndarray] = []
        build_parts: List[np.ndarray] = []
        for start in range(0, probe_keys.shape[0], self.chunk_size):
            self._check_cancel()
            matches = index.match(probe_keys[start : start + self.chunk_size])
            probe_parts.append(matches.probe_indices + start)
            build_parts.append(matches.build_indices)
        self.tasks_dispatched += len(probe_parts)
        return JoinMatches(
            probe_indices=np.concatenate(probe_parts),
            build_indices=np.concatenate(build_parts),
        )


class ParallelBackend(ExecutionBackend):
    """Morsel-parallel execution over a real thread pool.

    Probe inputs are cut into ``morsel_size``-row morsels dispatched to a
    ``ThreadPoolExecutor``; the NumPy probe kernels (Bloom probes, bitmap /
    binary-search membership, ``searchsorted`` matching) release the GIL on
    large arrays, so morsels genuinely overlap.  Futures are gathered in
    dispatch order and concatenated, which makes every result bit-identical
    to the serial backend regardless of thread scheduling.  Lazily-built
    probe structures are frozen (``HashIndex.prepare``/``prepare_match``)
    before fan-out so worker threads only read shared state.

    The pool is created on first use and must be released with
    :meth:`close` (the engine does this per execution).
    """

    name = "parallel"

    def __init__(
        self,
        num_threads: Optional[int] = None,
        morsel_size: int = DEFAULT_MORSEL_SIZE,
    ) -> None:
        super().__init__()
        if num_threads is not None and num_threads <= 0:
            raise ExecutionError("parallel backend needs at least one thread")
        if morsel_size <= 0:
            raise ExecutionError("morsel size must be positive")
        self.num_threads = num_threads or min(MAX_DEFAULT_THREADS, os.cpu_count() or 1)
        self.morsel_size = morsel_size
        self._pool: Optional[ThreadPoolExecutor] = None

    def _pool_instance(self) -> ThreadPoolExecutor:
        if self._pool is None:
            faults.fire("parallel.pool", "injected thread-pool start failure")
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_threads, thread_name_prefix="repro-morsel"
            )
        return self._pool

    def ensure_ready(self) -> None:
        try:
            self._pool_instance()
        except Exception as error:
            raise BackendUnavailable(f"thread pool unavailable: {error}") from error

    def map_tasks(self, tasks: Sequence[Callable[[], object]]) -> List[object]:
        tasks = list(tasks)
        self.tasks_dispatched += len(tasks)
        if len(tasks) <= 1 or self.num_threads == 1:
            results = []
            for task in tasks:
                self._check_cancel()
                results.append(task())
            return results
        pool = self._pool_instance()
        futures = [pool.submit(task) for task in tasks]
        return gather_in_order(futures, self.cancel)

    def _morsels(self, total_rows: int) -> List[Tuple[int, int]]:
        return [
            (start, min(start + self.morsel_size, total_rows))
            for start in range(0, total_rows, self.morsel_size)
        ]

    def probe_mask(self, keys: ProbeInput, probe_fn, prepare=None) -> np.ndarray:
        keys = _as_probe_input(keys)
        total = _probe_rows(keys)
        if total <= self.morsel_size:
            self.tasks_dispatched += 1
            return probe_fn(keys)
        if prepare is not None:
            prepare()
        parts = self.map_tasks(
            [
                (lambda lo=lo, hi=hi: probe_fn(_slice_probe_input(keys, lo, hi)))
                for lo, hi in self._morsels(total)
            ]
        )
        return np.concatenate(parts)

    def match(self, probe_keys: np.ndarray, index: HashIndex) -> JoinMatches:
        probe_keys = np.asarray(probe_keys)
        if probe_keys.shape[0] <= self.morsel_size:
            self.tasks_dispatched += 1
            return index.match(probe_keys)
        index.prepare_match()
        morsels = self._morsels(int(probe_keys.shape[0]))
        results = self.map_tasks(
            [(lambda lo=lo, hi=hi: index.match(probe_keys[lo:hi])) for lo, hi in morsels]
        )
        probe_parts = [m.probe_indices + lo for m, (lo, _) in zip(results, morsels)]
        return JoinMatches(
            probe_indices=np.concatenate(probe_parts),
            build_indices=np.concatenate([m.build_indices for m in results]),
        )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class _BloomPassProbe:
    """A picklable probe callable over a precomputed (hashes, patterns) pass.

    Replaces the equivalent lambda so the process backend can ship the
    probe spec to workers (lambdas do not pickle; the filter itself does).
    """

    __slots__ = ("bloom",)

    def __init__(self, bloom: BloomFilter) -> None:
        self.bloom = bloom

    def __call__(self, hp: Tuple[np.ndarray, np.ndarray]) -> np.ndarray:
        return self.bloom.probe(hashes=hp[0], patterns=hp[1])


def make_backend(
    name: str,
    chunk_size: Optional[int] = None,
    num_threads: Optional[int] = None,
    num_workers: Optional[int] = None,
    max_task_retries: Optional[int] = None,
) -> ExecutionBackend:
    """Instantiate a backend by name (``"serial"``, ``"chunked"``, ``"parallel"``,
    or ``"process"``).

    ``chunk_size=None`` takes each backend's own default granularity
    (:data:`~repro.exec.chunk.DEFAULT_CHUNK_SIZE` for the chunked backend,
    the larger :data:`DEFAULT_MORSEL_SIZE` for the parallel one, the larger
    still :data:`~repro.exec.process.DEFAULT_PROCESS_MORSEL_SIZE` for the
    process one).  ``num_threads`` configures the thread backend,
    ``num_workers`` and ``max_task_retries`` (crash-recovery rounds before
    the inline fallback) the process backend.
    """
    if name == "serial":
        return SerialBackend()
    if name == "chunked":
        return ChunkedBackend(
            chunk_size=DEFAULT_CHUNK_SIZE if chunk_size is None else chunk_size
        )
    if name == "parallel":
        return ParallelBackend(
            num_threads=num_threads,
            morsel_size=DEFAULT_MORSEL_SIZE if chunk_size is None else chunk_size,
        )
    if name == "process":
        # Imported lazily: repro.exec.process subclasses ExecutionBackend,
        # so a top-level import here would be circular.
        from repro.exec.process import (
            DEFAULT_MAX_TASK_RETRIES,
            DEFAULT_PROCESS_MORSEL_SIZE,
            ProcessBackend,
        )

        return ProcessBackend(
            num_workers=num_workers,
            morsel_size=DEFAULT_PROCESS_MORSEL_SIZE if chunk_size is None else chunk_size,
            max_task_retries=(
                DEFAULT_MAX_TASK_RETRIES if max_task_retries is None else max_task_retries
            ),
        )
    raise ExecutionError(
        f"unknown pipeline backend {name!r}; "
        "expected 'serial', 'chunked', 'parallel', or 'process'"
    )


# ---------------------------------------------------------------------------
# Options / result
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PipelineOptions:
    """Runtime knobs of the pipeline executor (compiled plans carry no data params)."""

    transfer_fpr: float = DEFAULT_FPR
    join_fpr: float = DEFAULT_FPR
    prune_trivial_semijoins: bool = True
    allow_cartesian_products: bool = False


@dataclass
class PipelineResult:
    """Outcome of one :meth:`PipelineExecutor.run` call."""

    relations: Dict[str, BoundRelation]
    final: Optional[IntermediateResult] = None
    aggregates: Optional[Dict[str, float]] = None


#: Execution phase each op kind is accounted under (join-scoped Bloom ops override).
_PHASE_BY_KIND = {
    "scan": "scan_filter",
    "filter_push": "scan_filter",
    "bloom_build": "transfer",
    "bloom_probe": "transfer",
    "semi_join_reduce": "transfer",
    "hash_build": "join",
    "hash_probe": "join",
    "partition": "join",
    "partitioned_hash_build": "join",
    "partitioned_hash_probe": "join",
    "aggregate": "aggregate",
}


@dataclass
class _TransferStage:
    """Build-side state handed from a transfer ``BloomBuild`` to its ``BloomProbe``.

    The build side is either a Bloom filter (``bloom``) or — when the
    adaptive exact-bitmap downgrade fired — a prepared
    :class:`~repro.exec.kernels.HashIndex` whose bitmap membership table
    replaces the filter entirely (``exact_index``; no false positives).

    Exactly one probe-side representation is populated: ``target_keys``
    (an eagerly materialized key array — the historical path),
    ``target_pass`` (an eagerly gathered precomputed hash/pattern pair), or
    ``target_column`` (the selection-vector path: the probe op gathers that
    column of ``op.target`` over the immutable base table by the relation's
    current row ids, materializing nothing in between).
    """

    build_rows: int
    bloom: Optional[BloomFilter] = None
    exact_index: Optional[HashIndex] = None
    target_keys: Optional[np.ndarray] = None
    target_pass: Optional[Tuple[np.ndarray, np.ndarray]] = None
    target_column: Optional[str] = None


@dataclass
class _JoinBloomStage:
    """State handed from a join-scoped ``BloomBuild`` to its ``BloomProbe``."""

    bloom: BloomFilter
    probe_keys: np.ndarray
    build_keys: np.ndarray
    probe_pass: Optional[Tuple[np.ndarray, np.ndarray]] = None


@dataclass
class _BuildStage:
    """Materialized build side handed from ``HashBuild`` to ``HashProbe``."""

    result: IntermediateResult
    index: Optional[HashIndex] = None
    keys: Optional[np.ndarray] = None
    partitioned: Optional[PartitionedHashIndex] = None


class PipelineExecutor:
    """Runs a compiled :class:`~repro.plan.physical.PhysicalPlan` op list.

    One executor instance serves one query execution (it owns the run's
    Bloom-filter registry, hash-index cache, and pending post-join
    predicates); the backend decides how the probe hot loops run.
    """

    def __init__(
        self,
        query: QuerySpec,
        graph: JoinGraph,
        catalog=None,
        options: Optional[PipelineOptions] = None,
        backend: Optional[ExecutionBackend] = None,
        registry: Optional[BloomFilterRegistry] = None,
        governor: Optional[MemoryGovernor] = None,
        hash_cache: Optional[HashCache] = None,
        selection_vectors: bool = True,
        artifact_cache: Optional[ArtifactCache] = None,
        table_versions: Optional[Mapping[str, int]] = None,
        fingerprints: Optional[Mapping[str, str]] = None,
        adaptive_transfer: bool = False,
        adaptive_min_yield: float = DEFAULT_MIN_YIELD,
        ndv_sizing: bool = False,
        bitmap_downgrade: bool = False,
        arena=None,
        encodings: bool = False,
        tracer=None,
    ) -> None:
        self.query = query
        self.graph = graph
        self.catalog = catalog
        self.options = options or PipelineOptions()
        self.backend = backend or SerialBackend()
        self.registry = registry or BloomFilterRegistry()
        self.governor = governor
        #: Query-lifetime hash cache (None disables hash reuse).
        self.hash_cache = hash_cache
        #: Late-materialized transfer probes (bit-identical re-ordering of
        #: the same gathers; off restores eager key materialization).
        self.selection_vectors = selection_vectors
        #: Cross-query artifact cache + the identity context needed to key
        #: it (catalog table versions and base-filter fingerprints, both
        #: supplied by the engine; fragments run without them).
        self.artifact_cache = artifact_cache
        self._table_versions = dict(table_versions or {})
        self._fingerprints = dict(fingerprints or {})
        #: Adaptive transfer execution: yield-driven pass skipping
        #: (controller built per run from the compiled plan), KMV/NDV-based
        #: Bloom sizing, and the exact-bitmap downgrade.
        self.adaptive_transfer = adaptive_transfer
        self.adaptive_min_yield = adaptive_min_yield
        self.ndv_sizing = ndv_sizing
        self.bitmap_downgrade = bitmap_downgrade
        #: id(column data) -> KMVSketch, memoized for the executor lifetime
        #: (the cross-query ArtifactCache persists sketches beyond it).
        self._ndv_memo: Dict[int, Tuple[np.ndarray, KMVSketch]] = {}
        #: Shared-memory column arena (engine-owned); set together with a
        #: probe-shipping backend so transfer probes can hand workers a
        #: (column ref, selection vector) pair instead of gathered keys.
        self.arena = arena
        #: Block-encoded execution: transfer probes prefer the arena's
        #: *encoded* column segments, and every cache key (hash cache,
        #: artifact cache) carries the column's encoding token so encoded
        #: and raw artifacts never alias at the same catalog version.
        self.encodings = encodings
        #: Optional :class:`~repro.obs.trace.Tracer`: when set, the run
        #: loop records one ``op`` span per dispatched op (grouped under
        #: ``phase`` spans) with a ``batch`` child summarizing morsel
        #: fan-out.  Purely observational — results are bit-identical.
        self.tracer = tracer
        if tracer is not None and hasattr(self.backend, "trace_morsels"):
            # Process workers time their morsels locally and ship the
            # seconds back piggybacked on the morsel payload.
            self.backend.trace_morsels = True
        self._refs = {ref.alias: ref for ref in query.relations}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self,
        plan: PhysicalPlan,
        stats: ExecutionStats,
        relations: Optional[Dict[str, BoundRelation]] = None,
        masks: Optional[Mapping[str, Optional[np.ndarray]]] = None,
        finalize_root: Optional[Operand] = None,
        fused_filters: Optional[Mapping[str, int]] = None,
        zone_stats: Optional[Mapping[str, Tuple[int, int, int]]] = None,
    ) -> PipelineResult:
        """Execute every op of ``plan`` in order.

        ``relations`` supplies pre-bound relations for plan *fragments* that
        carry no ``Scan`` ops (the transfer / join compilers); ``masks``
        supplies precomputed base-filter masks so predicates evaluated during
        planning are not evaluated again by ``FilterPush``.  With
        ``finalize_root`` (fragments without an ``Aggregate`` op) the root
        operand is materialized, remaining post-join predicates are applied,
        and ``stats.output_rows`` is set.  ``fused_filters`` maps aliases
        whose pushed-down predicate was evaluated by a fused kernel to the
        rows the kernel short-circuited, for the op trace; ``zone_stats``
        maps aliases whose predicate ran with zone-map block skipping to a
        ``(blocks_skipped, blocks_total, encoded_bytes)`` triple, folded
        into the alias's ``FilterPush`` entry the same way.
        """
        self._relations: Dict[str, BoundRelation] = relations if relations is not None else {}
        self._masks = masks
        self._fused_filters = dict(fused_filters or {})
        self._zone_stats = dict(zone_stats or {})
        self._slots: Dict[int, IntermediateResult] = {}
        self._materialized: Dict[Operand, IntermediateResult] = {}
        self._transfer_stages: Dict[int, _TransferStage] = {}
        self._join_bloom_stages: Dict[int, _JoinBloomStage] = {}
        self._build_stages: Dict[int, _BuildStage] = {}
        self._skipped_steps: set[int] = set()
        self._join_bloom_eliminated: Dict[int, int] = {}
        self._join_probe_keys: Dict[int, np.ndarray] = {}
        self._index_cache: Dict[Tuple[str, Tuple[str, ...]], Tuple[int, HashIndex]] = {}
        self._filtered: Optional[set[str]] = None
        self._pending_predicates: List[PostJoinPredicate] = list(self.query.post_join_predicates)
        self._aggregates: Optional[Dict[str, float]] = None
        self._final: Optional[IntermediateResult] = None
        # Artifact eligibility: a relation's artifacts are keyed by its
        # *base* state (scan + pushed-down filter, before any transfer
        # reduction), identified by the version snapshot taken here and
        # refreshed by Scan / FilterPush ops.
        self._base_versions: Dict[str, int] = {
            alias: relation.version for alias, relation in self._relations.items()
        }
        self._artifact_reserved: List[str] = []
        self._artifact_hits = 0
        self._artifact_misses = 0
        self._selvec_rows = 0
        # Shared-memory accounting: arena columns charged this run (for the
        # governor + stats) plus whatever the backend itself placed in
        # transient segments.
        self._shm_reserved: List[str] = []
        self._shm_charged: set[str] = set()
        self._shm_bytes = 0
        # Adaptive transfer: one controller per run, built over this plan's
        # op list.  Per-op decision fields are reset before each dispatch and
        # folded into the op's stats entry after it.
        self._adaptive: Optional[AdaptiveTransferController] = (
            AdaptiveTransferController(plan, self.adaptive_min_yield)
            if self.adaptive_transfer
            else None
        )
        self._adaptive_skipped_steps: set[int] = set()
        self._op_index = -1
        self._op_adaptive_skip = False
        self._op_bytes_saved = 0
        self._op_downgraded = False
        self._op_blocks_skipped = 0
        self._op_blocks_total = 0
        self._op_encoded_bytes = 0
        self._op_degraded = ""
        self._stats = stats

        base_simulated = getattr(self.backend, "simulated_cost", 0.0)
        base_shm = getattr(self.backend, "shm_bytes_mapped", 0)
        base_hash_hits = self.hash_cache.hits if self.hash_cache is not None else 0
        base_hash_misses = self.hash_cache.misses if self.hash_cache is not None else 0
        governor = self.governor
        if governor is not None:
            base_spill_events = governor.spill_events
            base_spilled = governor.spilled_bytes
            base_reloaded = governor.reloaded_bytes
            base_spill_failures = governor.spill_failures
        cancel = getattr(self.backend, "cancel", None)
        tracer = self.tracer
        trace_phase_span = None
        trace_phase_name = None
        try:
            for index, op in enumerate(plan):
                if cancel is not None:
                    cancel.check()
                delay = faults.injected_latency()
                if delay:
                    # Injected operator latency: deterministic wall-time
                    # inflation, the lever the timeout tests pull.
                    time.sleep(delay)
                phase = _PHASE_BY_KIND.get(op.kind, "join")
                if getattr(op, "scope", None) == SCOPE_JOIN:
                    phase = "join"
                tasks_before = self.backend.tasks_dispatched
                spilled_before = governor.spilled_bytes if governor is not None else 0
                hash_hits_before = self.hash_cache.hits if self.hash_cache is not None else 0
                hash_misses_before = self.hash_cache.misses if self.hash_cache is not None else 0
                selvec_before = self._selvec_rows
                artifact_hits_before = self._artifact_hits
                artifact_misses_before = self._artifact_misses
                shm_before = self._shm_bytes + getattr(self.backend, "shm_bytes_mapped", 0)
                crashes_before = getattr(self.backend, "worker_crashes", 0)
                retries_before = getattr(self.backend, "tasks_retried", 0)
                inline_before = getattr(self.backend, "inline_morsels", 0)
                self._op_index = index
                self._op_adaptive_skip = False
                self._op_bytes_saved = 0
                self._op_downgraded = False
                self._op_fused_rows = -1
                self._op_blocks_skipped = 0
                self._op_blocks_total = 0
                self._op_encoded_bytes = 0
                self._op_degraded = ""
                if tracer is not None:
                    if phase != trace_phase_name:
                        if trace_phase_span is not None:
                            tracer.finish(trace_phase_span)
                        trace_phase_span = tracer.start(phase, "phase")
                        trace_phase_name = phase
                    op_span = tracer.start(op.kind, "op", index=index)
                    batch_sec_before = getattr(self.backend, "traced_worker_seconds", 0.0)
                    batches_before = getattr(self.backend, "traced_batches", 0)
                start = time.perf_counter()
                rows_in, rows_out, skipped = self._dispatch(op, stats)
                elapsed = time.perf_counter() - start
                setattr(stats.timings, phase, getattr(stats.timings, phase) + elapsed)
                if governor is not None and self.hash_cache is not None:
                    # The cached hash/pattern arrays are real memory; keep their
                    # reservation current — inside this op's spill-sampling
                    # window, so spills it forces are attributed to the op that
                    # grew the cache.  Non-evictable: the cache cannot be
                    # spilled, only released at the end of the run.
                    self._governed_reserve("hash_cache", self.hash_cache.nbytes, evictable=False)
                op_crashes = getattr(self.backend, "worker_crashes", 0) - crashes_before
                op_retries = getattr(self.backend, "tasks_retried", 0) - retries_before
                op_inline = getattr(self.backend, "inline_morsels", 0) - inline_before
                if op_inline and not self._op_degraded:
                    self._op_degraded = "process:inline-fallback"
                if op_inline:
                    stats.record_degradation("process:inline-fallback")
                stats.op_stats.append(
                    OpStats(
                        index=index,
                        kind=op.kind,
                        detail=op.describe(),
                        rows_in=rows_in,
                        rows_out=rows_out,
                        seconds=elapsed,
                        skipped=skipped,
                        morsels=self.backend.tasks_dispatched - tasks_before,
                        spilled_bytes=(
                            governor.spilled_bytes - spilled_before if governor is not None else 0
                        ),
                        hash_hits=(
                            self.hash_cache.hits - hash_hits_before
                            if self.hash_cache is not None
                            else 0
                        ),
                        hash_misses=(
                            self.hash_cache.misses - hash_misses_before
                            if self.hash_cache is not None
                            else 0
                        ),
                        selvec_rows=self._selvec_rows - selvec_before,
                        artifact_hits=self._artifact_hits - artifact_hits_before,
                        artifact_misses=self._artifact_misses - artifact_misses_before,
                        adaptive_skipped=self._op_adaptive_skip,
                        filter_bytes_saved=self._op_bytes_saved,
                        downgraded_exact=self._op_downgraded,
                        fused_expr=self._op_fused_rows >= 0,
                        fused_rows_short_circuited=max(self._op_fused_rows, 0),
                        blocks_skipped=self._op_blocks_skipped,
                        blocks_total=self._op_blocks_total,
                        encoded_bytes=self._op_encoded_bytes,
                        shm_bytes=(
                            self._shm_bytes
                            + getattr(self.backend, "shm_bytes_mapped", 0)
                            - shm_before
                        ),
                        degraded=self._op_degraded,
                        worker_crashes=op_crashes,
                        tasks_retried=op_retries,
                        inline_morsels=op_inline,
                    )
                )
                if self._op_bytes_saved:
                    stats.adaptive_filter_bytes_saved += self._op_bytes_saved
                if self._op_blocks_total:
                    stats.zone_blocks_skipped += self._op_blocks_skipped
                    stats.zone_blocks_total += self._op_blocks_total
                if self._op_encoded_bytes:
                    stats.encoded_bytes_touched += self._op_encoded_bytes
                if op_crashes:
                    stats.worker_crashes += op_crashes
                if op_retries:
                    stats.tasks_retried += op_retries
                if op_inline:
                    stats.inline_fallback_morsels += op_inline
                if tracer is not None:
                    entry = stats.op_stats[-1]
                    if entry.morsels:
                        # One summary child per fanned-out op: morsel count
                        # plus (process backend only) the worker-side
                        # seconds shipped back with the morsel payloads.
                        batch_seconds = (
                            getattr(self.backend, "traced_worker_seconds", 0.0)
                            - batch_sec_before
                        )
                        batch_count = (
                            getattr(self.backend, "traced_batches", 0) - batches_before
                        )
                        batch = Span(
                            name="morsels",
                            kind="batch",
                            start=op_span.start,
                            end=op_span.start
                            + (batch_seconds if batch_count else elapsed),
                            attrs={
                                "count": entry.morsels,
                                "worker_batches": batch_count,
                            },
                        )
                        op_span.children.append(batch)
                    if entry.adaptive_skipped:
                        tracer.event("adaptive:skip")
                    if entry.downgraded_exact:
                        tracer.event("adaptive:exact-bitmap")
                    if entry.spilled_bytes:
                        tracer.event("governor:spill", bytes=entry.spilled_bytes)
                    if op_crashes:
                        tracer.event(
                            "process:crash-recovery",
                            crashes=op_crashes,
                            retries=op_retries,
                        )
                    if op_inline:
                        tracer.event("process:inline-fallback", morsels=op_inline)
                    if entry.degraded:
                        tracer.event("degraded", rung=entry.degraded)
                    tracer.finish(
                        op_span,
                        rows_in=rows_in,
                        rows_out=rows_out,
                        skipped=skipped,
                        detail=entry.detail,
                    )

            if tracer is not None and trace_phase_span is not None:
                tracer.finish(trace_phase_span)
                trace_phase_span = None
            if finalize_root is not None and self._final is None:
                if cancel is not None:
                    cancel.check()
                finalize_span = (
                    tracer.start("finalize", "phase") if tracer is not None else None
                )
                with stats.time_phase("join"):
                    final = self._materialize(finalize_root)
                    final = self._apply_ready_predicates(final, force_all=True)
                if finalize_span is not None:
                    tracer.finish(finalize_span, rows=final.num_rows)
                stats.output_rows = final.num_rows
                self._final = final
        except BaseException:
            # Any exit path — injected fault, timeout, cancellation, genuine
            # error — must leave zero outstanding reservations: the governor
            # outlives this run only inside Database.execute's accounting,
            # and the leak guard asserts it is empty afterwards.
            if governor is not None:
                stats.peak_memory_bytes = max(
                    stats.peak_memory_bytes, governor.peak_reserved_bytes
                )
                governor.release_all()
            self._artifact_reserved.clear()
            self._shm_reserved.clear()
            raise

        simulated = getattr(self.backend, "simulated_cost", 0.0) - base_simulated
        if simulated:
            stats.simulated_parallel_cost += simulated
        if governor is not None:
            stats.peak_memory_bytes = max(stats.peak_memory_bytes, governor.peak_reserved_bytes)
            stats.spill_events += governor.spill_events - base_spill_events
            stats.spilled_bytes += governor.spilled_bytes - base_spilled
            stats.reloaded_bytes += governor.reloaded_bytes - base_reloaded
            stats.spill_failures += governor.spill_failures - base_spill_failures
        if self.hash_cache is not None:
            stats.hash_reuse_hits += self.hash_cache.hits - base_hash_hits
            stats.hash_reuse_misses += self.hash_cache.misses - base_hash_misses
        stats.selection_vector_rows += self._selvec_rows
        stats.artifact_cache_hits += self._artifact_hits
        stats.artifact_cache_misses += self._artifact_misses
        stats.shm_bytes_mapped += self._shm_bytes + (
            getattr(self.backend, "shm_bytes_mapped", 0) - base_shm
        )
        # Artifact residency was charged for this run's accounting only; the
        # artifacts themselves stay alive in the cross-query cache.  The
        # query-lifetime hash cache dies with the executor, so its
        # reservation is released the same way — and so are arena-column
        # reservations (the segments stay published by the engine's arena).
        if governor is not None:
            for reservation in self._artifact_reserved:
                governor.release(reservation)
            for reservation in self._shm_reserved:
                governor.release(reservation)
            governor.release("hash_cache")
        self._artifact_reserved.clear()
        self._shm_reserved.clear()

        return PipelineResult(
            relations=self._relations,
            final=self._final,
            aggregates=self._aggregates,
        )

    # ------------------------------------------------------------------
    # Op dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, op, stats: ExecutionStats) -> Tuple[int, int, bool]:
        if isinstance(op, Scan):
            return self._exec_scan(op, stats)
        if isinstance(op, FilterPush):
            return self._exec_filter_push(op, stats)
        if isinstance(op, BloomBuild):
            if op.scope == SCOPE_JOIN:
                return self._exec_join_bloom_build(op, stats)
            return self._exec_transfer_bloom_build(op, stats)
        if isinstance(op, BloomProbe):
            if op.scope == SCOPE_JOIN:
                return self._exec_join_bloom_probe(op, stats)
            return self._exec_transfer_bloom_probe(op, stats)
        if isinstance(op, SemiJoinReduce):
            return self._exec_semi_join_reduce(op, stats)
        if isinstance(op, HashBuild):
            return self._exec_hash_build(op, stats)
        if isinstance(op, HashProbe):
            return self._exec_hash_probe(op, stats)
        if isinstance(op, Partition):
            return self._exec_partition(op, stats)
        if isinstance(op, PartitionedHashBuild):
            return self._exec_partitioned_hash_build(op, stats)
        if isinstance(op, PartitionedHashProbe):
            return self._exec_partitioned_hash_probe(op, stats)
        if isinstance(op, Aggregate):
            return self._exec_aggregate(op, stats)
        raise ExecutionError(f"pipeline executor cannot run op {op!r}")

    # -- scan / filter --------------------------------------------------
    def _exec_scan(self, op: Scan, stats: ExecutionStats) -> Tuple[int, int, bool]:
        if self.catalog is None:
            raise ExecutionError("pipeline plans with Scan ops require a catalog")
        table = self.catalog.table(op.table)
        self._relations[op.alias] = BoundRelation.from_table(op.alias, table)
        self._base_versions[op.alias] = self._relations[op.alias].version
        stats.base_rows[op.alias] = table.num_rows
        stats.filtered_rows[op.alias] = table.num_rows
        return table.num_rows, table.num_rows, False

    def _exec_filter_push(self, op: FilterPush, stats: ExecutionStats) -> Tuple[int, int, bool]:
        relation = self._relations[op.alias]
        rows_in = relation.num_rows
        if self._masks is not None and op.alias in self._masks and self._masks[op.alias] is not None:
            mask = np.asarray(self._masks[op.alias], dtype=bool)
            if op.alias in self._fused_filters:
                self._op_fused_rows = int(self._fused_filters[op.alias])
            zone = self._zone_stats.get(op.alias)
            if zone is not None:
                self._op_blocks_skipped, self._op_blocks_total, self._op_encoded_bytes = zone
        else:
            ref = self._refs.get(op.alias)
            if ref is None or ref.filter is None:
                return rows_in, rows_in, True
            mask = np.asarray(ref.filter.evaluate(relation.table), dtype=bool)
        relation.keep(mask)
        self._base_versions[op.alias] = relation.version
        stats.filtered_rows[op.alias] = relation.num_rows
        return rows_in, relation.num_rows, False

    # -- transfer phase -------------------------------------------------
    def _exec_transfer_bloom_build(self, op: BloomBuild, stats: ExecutionStats) -> Tuple[int, int, bool]:
        source = self._relations[op.source.alias]
        target = self._relations[op.target.alias]
        if self._should_prune(op.prunable, op.source.alias):
            self._skip_transfer_step(op, target, stats)
            return source.num_rows, source.num_rows, True
        if self._adaptive is not None and self._adaptive.should_skip(self._op_index, op):
            self._skip_transfer_step(op, target, stats, adaptive=True)
            self._op_adaptive_skip = True
            return source.num_rows, source.num_rows, True

        bloom: Optional[BloomFilter] = None
        if len(op.attributes) == 1:
            attr_class = self.graph.attribute_classes[op.attributes[0]]
            source_column = attr_class.column_of(op.source.alias)
            target_column = attr_class.column_of(op.target.alias)
            exact_index = None
            if self.bitmap_downgrade:
                exact_index = self._bitmap_downgrade_index(op, source, source_column, target)
            if exact_index is None:
                bloom = self._transfer_bloom(op, source, source_column)
            else:
                self._op_downgraded = True
            if self.selection_vectors or (exact_index is not None and self.hash_cache is not None):
                # Late materialization: the probe op gathers over the
                # immutable base column by the target's row ids; nothing is
                # staged for the probe side here.  (Exact probes consume raw
                # keys, so a downgraded step never stages a hash pass.)
                stage = _TransferStage(
                    bloom=bloom,
                    exact_index=exact_index,
                    build_rows=source.num_rows,
                    target_column=target_column,
                )
            elif bloom is not None and self.hash_cache is not None:
                stage = _TransferStage(
                    bloom=bloom,
                    build_rows=source.num_rows,
                    target_pass=self._bloom_pass_for_relation(target, target_column),
                )
            else:
                stage = _TransferStage(
                    bloom=bloom,
                    exact_index=exact_index,
                    build_rows=source.num_rows,
                    target_keys=target.key_values(target_column),
                )
        else:
            # Composite keys are densified jointly with the probe side, so
            # neither hashing pass nor gather can be cached or deferred.
            source_keys, target_keys = self._step_keys(op, source, target)
            bloom = BloomFilter(expected_keys=source.num_rows, fpr=self.options.transfer_fpr)
            bloom.insert(source_keys)
            stage = _TransferStage(
                bloom=bloom, build_rows=source.num_rows, target_keys=target_keys
            )

        if bloom is not None:
            key = FilterKey(
                relation=op.source.alias,
                attribute="+".join(op.attributes),
                pass_id=op.pass_,
            )
            self.registry.publish(key, bloom, replace=True)
        self._transfer_stages[op.step_id] = stage
        return source.num_rows, source.num_rows, False

    def _transfer_bloom(self, op: BloomBuild, source: BoundRelation, column: str) -> BloomFilter:
        """Build (or fetch from the artifact cache) one transfer-phase filter."""
        param = f"fpr={self.options.transfer_fpr}"
        if self.ndv_sizing:
            # NDV-sized filters differ in geometry from row-count-sized
            # ones, so they must never share an artifact slot.
            param += ",ndv"
        artifact_key = self._artifact_key(op.source.alias, column, kind=KIND_BLOOM, param=param)
        if artifact_key is not None:
            cached = self.artifact_cache.get(artifact_key)
            if cached is not None:
                self._artifact_hits += 1
                self._charge_artifact(artifact_key, cached.size_bytes)
                return cached
            self._artifact_misses += 1
        expected = self._bloom_expected_keys(source, column)
        bloom = BloomFilter(expected_keys=expected, fpr=self.options.transfer_fpr)
        if expected < source.num_rows:
            self._op_bytes_saved += max(
                filter_bytes_for(source.num_rows, self.options.transfer_fpr)
                - bloom.size_bytes,
                0,
            )
        if self.hash_cache is not None:
            hashes, patterns = self._bloom_pass_for_relation(source, column)
            bloom.insert(hashes=hashes, patterns=patterns)
        else:
            bloom.insert(source.key_values(column))
        if artifact_key is not None:
            self.artifact_cache.put(artifact_key, bloom, bloom.size_bytes)
            self._charge_artifact(artifact_key, bloom.size_bytes)
        return bloom

    def _bloom_expected_keys(self, source: BoundRelation, column: str) -> int:
        """Keys to size a transfer filter for: rows, tightened by NDV sizing.

        The build side's distinct-key count can never exceed either its
        surviving row count or the full column's distinct count, so with
        ``ndv_sizing`` the filter is sized by the smaller of the two — a
        KMV-sketch estimate per ``(table version, column)``, memoized for
        the query and persisted in the cross-query artifact cache.  An
        undersized filter only raises the false-positive rate (never false
        negatives), so results are unchanged — the join phase eliminates
        whatever extra rows slip through.
        """
        expected = source.num_rows
        if not self.ndv_sizing or expected == 0:
            return expected
        sketch = self._column_ndv_sketch(source, column)
        if sketch is None:
            return expected
        # The estimator's ~1/sqrt(k) relative error cuts both ways; a small
        # headroom factor keeps the realized FPR near the configured one.
        estimate = int(math.ceil(sketch.estimate * 1.1))
        return max(min(expected, estimate), 1)

    def _column_ndv_sketch(self, relation: BoundRelation, column: str) -> Optional[KMVSketch]:
        """The KMV distinct-count sketch of one full base column.

        Lookup order: the executor-lifetime memo, then the cross-query
        artifact cache (keyed by table version only — like full-column hash
        passes, the sketch depends solely on the immutable column data), and
        finally one vectorized build whose result feeds both caches.
        """
        table = relation.table
        col = table.column(column)
        if not col.dtype.is_integer_backed:
            return None
        data = col.data
        memo = self._ndv_memo.get(id(data))
        if memo is not None and memo[0] is data:
            return memo[1]
        artifact_key = None
        if self.artifact_cache is not None:
            table_version = self._snapshot_version(relation.alias, table.name)
            if table_version is not None:
                artifact_key = ArtifactKey(
                    table=table.name,
                    table_version=table_version,
                    column=column,
                    fingerprint=FINGERPRINT_COLUMN,
                    kind=KIND_NDV_SKETCH,
                    encoding=self._encoding_token(table, column),
                )
                artifact = self.artifact_cache.get(artifact_key)
                if artifact is not None:
                    self._artifact_hits += 1
                    self._ndv_memo[id(data)] = (data, artifact)
                    return artifact
                self._artifact_misses += 1
        # A cached full-column hashing pass (computed for the Bloom inserts
        # anyway) lets the sketch skip its own hashing pass entirely.
        cached_pass = (
            self.hash_cache.peek_bloom_pass(
                table, column, encoding=self._encoding_token(table, column)
            )
            if self.hash_cache is not None
            else None
        )
        if cached_pass is not None:
            sketch = KMVSketch.from_hashes(cached_pass[0])
        else:
            sketch = KMVSketch.from_values(data)
        self._ndv_memo[id(data)] = (data, sketch)
        if artifact_key is not None:
            self.artifact_cache.put(artifact_key, sketch, sketch.nbytes)
        return sketch

    def _bitmap_downgrade_index(
        self,
        op: BloomBuild,
        source: BoundRelation,
        column: str,
        target: BoundRelation,
    ) -> Optional[HashIndex]:
        """Exact-bitmap downgrade: a prepared bitmap index, or None to keep Bloom.

        When the build side's observed key domain is dense enough that a
        boolean membership table costs no more than the probe work it saves
        (the same economics as :meth:`HashIndex._ensure_table`), the step is
        executed as an exact bitmap semi-join: probes become one in-range
        test plus one table gather, and — unlike a Bloom filter — zero false
        positives survive into the downstream passes and the join phase.
        """
        if source.num_rows == 0:
            return None
        probe_rows = target.num_rows
        index = self._relation_index(
            op.source.alias,
            op.attributes,
            source,
            lambda: source.key_values(column),
            expected_probe_rows=probe_rows,
        )
        if not index.bitmap_worthwhile(probe_rows):
            return None
        index.prepare(probe_rows)
        return index if index.has_bitmap else None

    def _exec_transfer_bloom_probe(self, op: BloomProbe, stats: ExecutionStats) -> Tuple[int, int, bool]:
        target = self._relations[op.target.alias]
        if self._adaptive is not None and self._adaptive.should_skip(self._op_index, op):
            # Cancelled after its build already ran (or alongside it);
            # discard any staged state and record the skip once per step.
            self._transfer_stages.pop(op.step_id, None)
            self._skip_transfer_step(op, target, stats, adaptive=True)
            self._op_adaptive_skip = True
            return target.num_rows, target.num_rows, True
        if op.step_id in self._skipped_steps:
            if op.step_id in self._adaptive_skipped_steps:
                self._op_adaptive_skip = True
            return target.num_rows, target.num_rows, True
        stage = self._transfer_stages.pop(op.step_id)
        rows_before = target.num_rows
        bloom = stage.bloom
        if stage.exact_index is not None:
            # Adaptive exact-bitmap downgrade: one in-range test + table
            # gather per probe key, and no false positives downstream.
            index = stage.exact_index
            self._op_downgraded = True
            if stage.target_keys is not None:
                probe_keys = stage.target_keys
            else:
                if self.selection_vectors:
                    self._selvec_rows += target.num_rows
                probe_keys = self._transfer_probe_input(target, stage.target_column)
            probe_rows = _probe_input_rows(probe_keys)
            mask = self.backend.probe_mask(
                probe_keys,
                index.contains,
                prepare=lambda: index.prepare(probe_rows),
            )
            filter_bytes = index.index_bytes()
        elif stage.target_keys is not None:
            mask = self.backend.probe_mask(stage.target_keys, bloom.probe)
            filter_bytes = bloom.size_bytes
        elif stage.target_pass is not None:
            mask = self.backend.probe_mask(stage.target_pass, _BloomPassProbe(bloom))
            filter_bytes = bloom.size_bytes
        elif self.hash_cache is not None:
            self._selvec_rows += target.num_rows
            probe_pass = self._bloom_pass_for_relation(target, stage.target_column)
            mask = self.backend.probe_mask(probe_pass, _BloomPassProbe(bloom))
            filter_bytes = bloom.size_bytes
        else:
            self._selvec_rows += target.num_rows
            mask = self.backend.probe_mask(
                self._transfer_probe_input(target, stage.target_column), bloom.probe
            )
            filter_bytes = bloom.size_bytes
        target.keep(mask)
        self._record_transfer_step(
            op,
            rows_before=rows_before,
            rows_after=target.num_rows,
            filter_bytes=filter_bytes,
            build_rows=stage.build_rows,
            stats=stats,
            downgraded_exact=stage.exact_index is not None,
        )
        if self._adaptive is not None:
            self._adaptive.observe(self._op_index, op, rows_before, target.num_rows)
        return rows_before, target.num_rows, False

    def _exec_semi_join_reduce(self, op: SemiJoinReduce, stats: ExecutionStats) -> Tuple[int, int, bool]:
        source = self._relations[op.source.alias]
        target = self._relations[op.target.alias]
        if self._should_prune(op.prunable, op.source.alias):
            self._skip_transfer_step(op, target, stats)
            return target.num_rows, target.num_rows, True
        if self._adaptive is not None and self._adaptive.should_skip(self._op_index, op):
            self._skip_transfer_step(op, target, stats, adaptive=True)
            self._op_adaptive_skip = True
            return target.num_rows, target.num_rows, True
        if len(op.attributes) == 1:
            # Single-attribute keys are side-independent: resolve the target
            # side and check the index caches before gathering source keys —
            # a hit (forward + backward pass probing the same source, or a
            # prior query's frozen artifact) skips the source-side gather
            # and sort entirely.
            attr_class = self.graph.attribute_classes[op.attributes[0]]
            target_keys = self._transfer_probe_input(
                target, attr_class.column_of(op.target.alias)
            )
            source_column = attr_class.column_of(op.source.alias)
            index = self._relation_index(
                op.source.alias,
                op.attributes,
                source,
                lambda: source.key_values(source_column),
                expected_probe_rows=_probe_input_rows(target_keys),
            )
        else:
            source_keys, target_keys = self._step_keys(op, source, target)
            index = HashIndex(source_keys)
        rows_before = target.num_rows
        probe_rows = _probe_input_rows(target_keys)
        mask = self.backend.probe_mask(
            target_keys,
            index.contains,
            prepare=lambda: index.prepare(probe_rows),
        )
        target.keep(mask)
        self._record_transfer_step(
            op,
            rows_before=rows_before,
            rows_after=target.num_rows,
            filter_bytes=int(index.keys.nbytes),
            build_rows=source.num_rows,
            stats=stats,
        )
        if self._adaptive is not None:
            self._adaptive.observe(self._op_index, op, rows_before, target.num_rows)
        return rows_before, target.num_rows, False

    def _should_prune(self, prunable: bool, source_alias: str) -> bool:
        if not (self.options.prune_trivial_semijoins and prunable):
            return False
        if self._filtered is None:
            self._filtered = self._initially_filtered()
        return source_alias not in self._filtered

    def _initially_filtered(self) -> set[str]:
        """Relations whose base predicate eliminated at least one row (§4.3)."""
        filtered: set[str] = set()
        for ref in self.query.relations:
            relation = self._relations.get(ref.alias)
            if relation is None:
                continue
            if ref.filter is not None and relation.num_rows < relation.table.num_rows:
                filtered.add(ref.alias)
        return filtered

    def _skip_transfer_step(
        self, op, target: BoundRelation, stats: ExecutionStats, adaptive: bool = False
    ) -> None:
        if op.step_id in self._skipped_steps:
            return
        self._skipped_steps.add(op.step_id)
        if adaptive:
            self._adaptive_skipped_steps.add(op.step_id)
            stats.adaptive_steps_skipped += 1
        stats.transfer_steps.append(
            TransferStepStats(
                source=op.source.alias,
                target=op.target.alias,
                pass_=op.pass_,
                rows_before=target.num_rows,
                rows_after=target.num_rows,
                skipped=True,
                adaptive_skipped=adaptive,
            )
        )

    def _record_transfer_step(
        self,
        op,
        rows_before: int,
        rows_after: int,
        filter_bytes: int,
        build_rows: int,
        stats: ExecutionStats,
        downgraded_exact: bool = False,
    ) -> None:
        if downgraded_exact:
            stats.adaptive_exact_downgrades += 1
        stats.transfer_steps.append(
            TransferStepStats(
                source=op.source.alias,
                target=op.target.alias,
                pass_=op.pass_,
                rows_before=rows_before,
                rows_after=rows_after,
                filter_bytes=filter_bytes,
                build_rows=build_rows,
                downgraded_exact=downgraded_exact,
            )
        )
        stats.bloom_bytes += filter_bytes
        stats.abstract_cost += bloom_probe_cost(rows_before, max(filter_bytes, 1))
        if rows_after < rows_before:
            if self._filtered is None:
                self._filtered = self._initially_filtered()
            self._filtered.add(op.target.alias)

    def _step_keys(self, op, source: BoundRelation, target: BoundRelation):
        """Resolve a transfer step's attribute classes to concrete key arrays."""
        source_columns = []
        target_columns = []
        for attribute in op.attributes:
            attr_class = self.graph.attribute_classes[attribute]
            source_columns.append(source.key_values(attr_class.column_of(op.source.alias)))
            target_columns.append(target.key_values(attr_class.column_of(op.target.alias)))
        if not source_columns:
            raise ExecutionError(f"transfer op {op.describe()} has no join attributes")
        return combine_key_columns_pair(source_columns, target_columns)

    # -- hash reuse / artifact caching ----------------------------------
    def _bloom_pass_for_relation(
        self, relation: BoundRelation, column: str
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The relation's surviving rows of a (cached) column hashing pass.

        Strategy, cheapest first: an unreduced relation computes/reuses the
        zero-gather full-column pass; a reduced one reuses the pass cached
        for exactly its current selection (a build and probe over the same
        relation state share one pass); failing that it gathers from an
        already-paid full-column pass; and only as a last resort hashes its
        gathered keys — caching the result for the next step over the same
        state.  Every branch is bit-identical to hashing the gathered keys
        directly.
        """
        cache = self.hash_cache
        table = relation.table
        token = self._encoding_token(table, column)
        if relation.num_rows == table.num_rows:
            return self._full_bloom_pass(relation, column, compute=True)
        cached = cache.selection_pass(table, column, relation.row_indices, encoding=token)
        if cached is not None:
            return cached
        # With the cross-query artifact cache on, a selection covering a
        # sizable fraction of the column promotes to the full-column pass:
        # one-time extra hashing that every later query replays for free.
        promote = (
            self.artifact_cache is not None
            and relation.alias in self._table_versions
            and relation.num_rows * 4 >= table.num_rows
        )
        full = self._full_bloom_pass(relation, column, compute=promote)
        if full is not None:
            selection = relation.row_indices
            result = (full[0][selection], full[1][selection])
            cache.store_selection_pass(table, column, selection, result, encoding=token)
            return result
        cache.misses += 1
        hashes = hash_keys(relation.key_values(column))
        result = (hashes, key_patterns(hashes))
        cache.store_selection_pass(table, column, relation.row_indices, result, encoding=token)
        return result

    def _full_bloom_pass(
        self, relation: BoundRelation, column: str, compute: bool
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """A full-column hashing pass, through both the query and artifact caches.

        The pass depends only on the immutable column data, so — unlike
        Bloom filters and hash indexes — its artifact is keyed purely by
        table version, never by a filter fingerprint.  With ``compute=False``
        only already-paid passes (this query's or a prior query's artifact)
        are returned.
        """
        cache = self.hash_cache
        table = relation.table
        token = self._encoding_token(table, column)
        existing = cache.peek_bloom_pass(table, column, encoding=token)
        if existing is not None:
            cache.hits += 1
            return existing
        artifact_key = None
        table_version = (
            self._snapshot_version(relation.alias, table.name)
            if self.artifact_cache is not None
            else None
        )
        if table_version is not None:
            artifact_key = ArtifactKey(
                table=table.name,
                table_version=table_version,
                column=column,
                fingerprint=FINGERPRINT_COLUMN,
                kind=KIND_BLOOM_PASS,
                encoding=token,
            )
            artifact = self.artifact_cache.get(artifact_key)
            if artifact is not None:
                self._artifact_hits += 1
                self._charge_artifact(
                    artifact_key, int(artifact[0].nbytes + artifact[1].nbytes)
                )
                cache.adopt_full_pass(table, column, artifact, encoding=token)
                return artifact
        if not compute:
            return None
        full = cache.bloom_pass(table, column, encoding=token)
        if artifact_key is not None:
            self._artifact_misses += 1
            nbytes = int(full[0].nbytes + full[1].nbytes)
            self.artifact_cache.put(artifact_key, full, nbytes)
            self._charge_artifact(artifact_key, nbytes)
        return full

    def _artifact_key(
        self, alias: str, column: str, kind: str, param: str = ""
    ) -> Optional[ArtifactKey]:
        """Cross-query cache key for an artifact over ``alias``'s base state.

        ``None`` (no caching) unless the artifact cache is configured, the
        engine supplied this alias's catalog version and filter fingerprint,
        and the relation is still in its base (scan + pushed-down filter)
        state — an artifact over a transfer-reduced relation would depend on
        this query's other predicates and must not be shared.
        """
        if self.artifact_cache is None:
            return None
        relation = self._relations.get(alias)
        fingerprint = self._fingerprints.get(alias)
        if relation is None or fingerprint is None:
            return None
        table_version = self._snapshot_version(alias, relation.table.name)
        if table_version is None:
            return None
        if relation.version != self._base_versions.get(alias, -1):
            return None
        return ArtifactKey(
            table=relation.table.name,
            table_version=table_version,
            column=column,
            fingerprint=fingerprint,
            kind=kind,
            param=param,
            encoding=self._encoding_token(relation.table, column),
        )

    def _encoding_token(self, table, column: str) -> str:
        """The column's encoding identity for cache keys.

        ``"raw"`` whenever block encodings are off — every key is then
        byte-identical to the pre-encoding ones, so artifacts persist
        across the flag being toggled off.  With encodings on, the token
        (e.g. ``"pack:u16:b0"``) keeps artifacts recorded over an encoded
        representation from aliasing raw ones at the same catalog version.
        """
        if not self.encodings or self.catalog is None:
            return "raw"
        store = getattr(self.catalog, "encodings", None)
        if store is None:
            return "raw"
        return store.token(table, column)

    def _snapshot_version(self, alias: str, table_name: str) -> Optional[int]:
        """The engine's table-version snapshot — only while it is still live.

        Guards the race between the snapshot (taken at ``Database.execute``
        start) and a concurrent table replace: once the live catalog version
        moves past the snapshot, this execution may be reading the *new*
        table's data, so caching anything under the snapshot key could
        poison the cache.  Artifact use is simply disabled for that alias.
        """
        version = self._table_versions.get(alias)
        if version is None:
            return None
        if self.catalog is not None:
            try:
                if self.catalog.version(table_name) != version:
                    return None
            except CatalogError:
                return None
        return version

    def _governed_reserve(self, key: str, size_bytes: int, evictable: bool = True) -> None:
        """Reserve through the governor with the spill-then-retry rung.

        A failed reservation (:class:`~repro.errors.MemoryExhausted`, genuine
        or injected) no longer aborts the op: every evictable reservation is
        synchronously spilled and the reservation retried once — recorded as
        the ``governor:spill-retry`` degradation.  Only a retry failure
        propagates.
        """
        if self.governor is None:
            return
        try:
            self.governor.reserve(key, size_bytes, evictable=evictable)
        except MemoryExhausted:
            self.governor.spill_evictables()
            self.governor.reserve(key, size_bytes, evictable=evictable, inject=False)
            if not self._op_degraded:
                self._op_degraded = "governor:spill-retry"
            stats = getattr(self, "_stats", None)
            if stats is not None:
                stats.record_degradation("governor:spill-retry")
            if self.tracer is not None:
                self.tracer.event("governor:spill-retry", key=key)

    def _charge_artifact(self, key: ArtifactKey, size_bytes: int) -> None:
        """Account a touched artifact's residency against the run's governor."""
        if self.governor is None:
            return
        reservation = f"artifact:{key.kind}:{key.table}:{key.column}:{key.fingerprint[:12]}"
        if reservation not in self._artifact_reserved:
            self._governed_reserve(reservation, size_bytes, evictable=False)
            self._artifact_reserved.append(reservation)

    # -- shared-memory probe inputs -------------------------------------
    def _transfer_probe_input(self, relation: BoundRelation, column: str):
        """The probe input for a transfer semi-join over ``relation[column]``.

        Normally the eager gather ``relation.key_values(column)``.  When the
        backend ships probes to worker processes and the arena can publish
        the base column, returns a lazy (column ref, selection vector) pair
        instead — workers gather their own morsel from shared memory, so the
        parent never materializes the keys.  Either way the resulting mask
        is bit-identical.
        """
        if (
            self.arena is not None
            and getattr(self.backend, "ships_probes", False)
            and relation.num_rows > getattr(self.backend, "morsel_size", 0)
        ):
            try:
                ref = self.arena.column_ref(relation.table, column, encoded=self.encodings)
            except ExecutionError:
                # Publishing failed (e.g. an injected shm.share fault): fall
                # back to the eager gather — same mask, no shared memory.
                ref = None
            if ref is not None:
                self._charge_shm(ref)
                if hasattr(ref, "codes"):
                    # An encoded segment pair: record the (smaller) mapped
                    # footprint in the op trace's ``[enc ..B]`` marker.
                    self._op_encoded_bytes += int(ref.nbytes)
                from repro.exec.process import ShmGather

                return ShmGather(ref, relation.row_indices, relation.table.column(column).data)
        return relation.key_values(column)

    def _charge_shm(self, ref) -> None:
        """Account a published arena column against the run's governor/stats."""
        if ref.name in self._shm_charged:
            return
        self._shm_charged.add(ref.name)
        self._shm_bytes += ref.nbytes
        if self.governor is not None:
            reservation = f"shm:{ref.name}"
            self._governed_reserve(reservation, ref.nbytes, evictable=False)
            self._shm_reserved.append(reservation)

    def _indexed_keys(
        self,
        alias: str,
        attributes: Tuple[str, ...],
        relation: BoundRelation,
        keys: np.ndarray,
    ) -> HashIndex:
        """Build (or reuse) the sorted index over one side's key array.

        Single-attribute keys are side-independent, so their sorted index can
        be cached per ``(alias, attributes)`` and reused until the relation
        is reduced again — the forward and backward transfer passes probing
        the same source then sort once.  Composite keys are densified jointly
        with the probe side and cannot be cached across steps.
        """
        if len(attributes) != 1:
            return HashIndex(keys)
        return self._relation_index(alias, attributes, relation, lambda: keys)

    def _relation_index(
        self,
        alias: str,
        attributes: Tuple[str, ...],
        relation: BoundRelation,
        gather_keys: Callable[[], np.ndarray],
        expected_probe_rows: int = 0,
    ) -> HashIndex:
        """The index over a relation's single-attribute keys, through both caches.

        Lookup order: the query-lifetime index cache (keyed by relation
        version — the forward/backward pass and join-phase reuse), then the
        cross-query artifact cache (keyed by table version + filter
        fingerprint; only consulted while the relation is in its base
        state).  A freshly built index headed for the artifact cache is
        frozen first so later queries — possibly on morsel worker threads —
        only ever read it.
        """
        cache_key = (alias, attributes)
        cached = self._index_cache.get(cache_key)
        if cached is not None and cached[0] == relation.version:
            return cached[1]
        # Artifacts are keyed by the physical column, not the query-local
        # attribute-class name, so different queries share them.
        column = self.graph.attribute_classes[attributes[0]].column_of(alias)
        artifact_key = self._artifact_key(alias, column, kind=KIND_HASH_INDEX)
        index: Optional[HashIndex] = None
        if artifact_key is not None:
            artifact = self.artifact_cache.get(artifact_key)
            if artifact is not None:
                self._artifact_hits += 1
                self._charge_artifact(artifact_key, artifact.index_bytes())
                index = artifact
            else:
                self._artifact_misses += 1
        if index is None:
            index = HashIndex(gather_keys())
            if artifact_key is not None:
                index.prepare(expected_probe_rows or index.num_keys)
                index.prepare_match()
                self.artifact_cache.put(artifact_key, index, index.index_bytes())
                self._charge_artifact(artifact_key, index.index_bytes())
        self._index_cache[cache_key] = (relation.version, index)
        return index

    # -- join phase -----------------------------------------------------
    def _materialize(self, operand: Operand) -> IntermediateResult:
        if not operand.is_relation:
            try:
                return self._slots[operand.slot]
            except KeyError:
                raise ExecutionError(f"pipeline slot ${operand.slot} was never produced") from None
        cached = self._materialized.get(operand)
        if cached is None:
            if operand.alias not in self._relations:
                raise ExecutionError(f"plan references unknown relation {operand.alias!r}")
            cached = IntermediateResult.from_relation(self._relations[operand.alias])
            self._materialized[operand] = cached
        return cached

    def _set_operand(self, operand: Operand, result: IntermediateResult) -> None:
        if operand.is_relation:
            self._materialized[operand] = result
        else:
            self._slots[operand.slot] = result

    def _exec_join_bloom_build(self, op: BloomBuild, stats: ExecutionStats) -> Tuple[int, int, bool]:
        build = self._materialize(op.source)
        probe = self._materialize(op.target)
        if build.num_rows == 0:
            return build.num_rows, build.num_rows, True
        # The raw pair keys are needed either way — the upcoming hash join
        # consumes them — but with a hash cache the SIP filter's insert and
        # probe replay the cached column pass instead of re-hashing them.
        probe_keys, build_keys = self._pair_keys(op.attributes, probe, build)
        expected = build.num_rows
        if self.ndv_sizing and len(op.attributes) == 1:
            attr_class = self.graph.attribute_classes[op.attributes[0]]
            alias = _representative_alias(attr_class, build.aliases)
            sketch = self._column_ndv_sketch(self._relations[alias], attr_class.column_of(alias))
            if sketch is not None:
                expected = max(min(expected, int(math.ceil(sketch.estimate * 1.1))), 1)
        bloom = BloomFilter(expected_keys=expected, fpr=self.options.join_fpr)
        if expected < build.num_rows:
            self._op_bytes_saved += max(
                filter_bytes_for(build.num_rows, self.options.join_fpr) - bloom.size_bytes, 0
            )
        probe_pass = None
        if self.hash_cache is not None and len(op.attributes) == 1:
            build_hashes, build_patterns = self._result_bloom_pass(
                op.attributes[0], build, build_keys
            )
            bloom.insert(hashes=build_hashes, patterns=build_patterns)
            probe_pass = self._result_bloom_pass(op.attributes[0], probe, probe_keys)
        else:
            bloom.insert(build_keys)
        self._join_bloom_stages[op.step_id] = _JoinBloomStage(
            bloom=bloom, probe_keys=probe_keys, build_keys=build_keys, probe_pass=probe_pass
        )
        return build.num_rows, build.num_rows, False

    def _exec_join_bloom_probe(self, op: BloomProbe, stats: ExecutionStats) -> Tuple[int, int, bool]:
        probe = self._materialize(op.target)
        stage = self._join_bloom_stages.pop(op.step_id, None)
        if stage is None:
            return probe.num_rows, probe.num_rows, True
        rows_before = probe.num_rows
        if stage.probe_pass is not None:
            hits = self.backend.probe_mask(stage.probe_pass, _BloomPassProbe(stage.bloom))
        else:
            hits = self.backend.probe_mask(stage.probe_keys, stage.bloom.probe)
        keep = np.nonzero(hits)[0]
        reduced = probe.take(keep)
        self._set_operand(op.target, reduced)
        self._join_bloom_eliminated[op.step_id] = rows_before - int(hits.sum())
        # Hand the already-filtered pair keys to the upcoming hash join.
        self._build_stages[op.step_id] = _BuildStage(
            result=self._materialize(op.source),
            keys=stage.build_keys,
        )
        self._join_probe_keys[op.step_id] = stage.probe_keys[keep]
        stats.abstract_cost += bloom_probe_cost(int(hits.shape[0]), stage.bloom.size_bytes)
        return rows_before, reduced.num_rows, False

    def _exec_hash_build(self, op: HashBuild, stats: ExecutionStats) -> Tuple[int, int, bool]:
        build = self._materialize(op.input)
        stage = self._build_stages.get(op.build_id)
        if stage is None:
            stage = _BuildStage(result=build)
            self._build_stages[op.build_id] = stage
        else:
            stage.result = build
        if stage.keys is None and len(op.attributes) == 1:
            # Single-attribute keys are side-independent: gather and sort now
            # so the probe op only probes.  When the build side is the whole
            # (un-reduced-since) relation, the lookup goes through both index
            # caches — an index built by the transfer phase, or a prior
            # query's frozen artifact, skips the gather and sort entirely
            # (the gather thunk only runs on a full miss).
            if op.input.is_relation and build.num_rows == self._relations[op.input.alias].num_rows:
                stage.index = self._relation_index(
                    op.input.alias,
                    op.attributes,
                    self._relations[op.input.alias],
                    lambda: self._single_attribute_keys(op.attributes[0], build),
                )
            else:
                stage.keys = self._single_attribute_keys(op.attributes[0], build)
                stage.index = self._build_index(op, stage.keys)
        elif stage.keys is not None:
            stage.index = self._build_index(op, stage.keys)
        self._reserve_build(op.build_id, stage)
        return build.num_rows, build.num_rows, False

    # -- memory governance ----------------------------------------------
    def _stage_bytes(self, stage: _BuildStage) -> int:
        """Approximate bytes materialized by one build stage."""
        total = sum(int(arr.nbytes) for arr in stage.result.positions.values())
        if stage.keys is not None:
            total += int(stage.keys.nbytes)
        elif stage.index is not None:
            total += int(stage.index.keys.nbytes)
        return total

    def _reserve_build(self, build_id: int, stage: _BuildStage) -> None:
        if self.governor is not None:
            self._governed_reserve(f"build:{build_id}", self._stage_bytes(stage))

    def _touch_build(self, build_id: int) -> None:
        if self.governor is not None:
            self.governor.touch(f"build:{build_id}")

    def _release_build(self, build_id: int, stage: _BuildStage) -> None:
        if self.governor is None:
            return
        self.governor.release(f"build:{build_id}")
        if stage.partitioned is not None:
            for p in range(stage.partitioned.num_partitions):
                self.governor.release(f"partition:{build_id}:{p}")

    def _build_index(self, op: HashBuild, keys: np.ndarray) -> HashIndex:
        if op.input.is_relation and len(op.attributes) == 1:
            relation = self._relations[op.input.alias]
            # Publish the index for reuse when the build side is the whole
            # (un-reduced-since) relation.
            materialized = self._materialized.get(op.input)
            if materialized is None or materialized.num_rows == relation.num_rows:
                return self._indexed_keys(op.input.alias, op.attributes, relation, keys)
        return HashIndex(keys)

    def _single_attribute_keys(self, attribute: str, result: IntermediateResult) -> np.ndarray:
        attr_class = self.graph.attribute_classes[attribute]
        alias = _representative_alias(attr_class, result.aliases)
        values = result.column_values(self._relations, alias, attr_class.column_of(alias))
        return np.asarray(values).astype(np.int64, copy=False)

    def _result_bloom_pass(
        self, attribute: str, result: IntermediateResult, keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """An intermediate result's rows of a (cached) column hashing pass.

        When a full-column pass is available — some earlier step already
        paid for it, or the backing relation is unreduced and the result
        covers a sizable fraction of it (so the one-time full pass is near
        the work a direct hash would do anyway, and later steps reuse it) —
        the pass is gathered by the result's composed row ids instead of
        re-hashing.  Otherwise the already-gathered ``keys`` are hashed
        directly (no worse than the uncached path).
        """
        attr_class = self.graph.attribute_classes[attribute]
        alias = _representative_alias(attr_class, result.aliases)
        relation = self._relations[alias]
        cache = self.hash_cache
        column = attr_class.column_of(alias)
        unreduced = relation.num_rows == relation.table.num_rows
        compute = unreduced and result.num_rows * 4 >= relation.table.num_rows
        full = self._full_bloom_pass(relation, column, compute=compute)
        if full is not None:
            positions = result.positions[alias]
            row_ids = positions if unreduced else relation.row_indices[positions]
            return full[0][row_ids], full[1][row_ids]
        cache.misses += 1
        hashes = hash_keys(keys)
        return hashes, key_patterns(hashes)

    def _pair_keys(
        self,
        attributes: Tuple[str, ...],
        probe: IntermediateResult,
        build: IntermediateResult,
    ) -> Tuple[np.ndarray, np.ndarray]:
        probe_columns = []
        build_columns = []
        for attribute in attributes:
            attr_class = self.graph.attribute_classes[attribute]
            probe_alias = _representative_alias(attr_class, probe.aliases)
            build_alias = _representative_alias(attr_class, build.aliases)
            probe_columns.append(
                probe.column_values(self._relations, probe_alias, attr_class.column_of(probe_alias))
            )
            build_columns.append(
                build.column_values(self._relations, build_alias, attr_class.column_of(build_alias))
            )
        return combine_key_columns_pair(probe_columns, build_columns)

    def _exec_hash_probe(self, op: HashProbe, stats: ExecutionStats) -> Tuple[int, int, bool]:
        stage = self._build_stages.pop(op.build_id)
        build = stage.result
        probe = self._materialize(op.probe)
        self._touch_build(op.build_id)

        if not op.attributes:
            joined = self._cartesian_product(probe, build, stats)
            self._slots[op.output_slot] = self._apply_ready_predicates(joined)
            self._release_build(op.build_id, stage)
            return probe.num_rows, joined.num_rows, False

        staged_probe_keys = self._join_probe_keys.pop(op.build_id, None)
        if staged_probe_keys is not None:
            probe_keys = staged_probe_keys
            index = stage.index or HashIndex(stage.keys)
        elif len(op.attributes) == 1:
            probe_keys = self._single_attribute_keys(op.attributes[0], probe)
            index = stage.index if stage.index is not None else HashIndex(
                stage.keys
                if stage.keys is not None
                else self._single_attribute_keys(op.attributes[0], build)
            )
        else:
            probe_keys, build_keys = self._pair_keys(op.attributes, probe, build)
            index = HashIndex(build_keys)

        matches = self.backend.match(probe_keys, index)
        joined = probe.merge(build, matches.probe_indices, matches.build_indices)

        stats.join_steps.append(
            JoinStepStats(
                left_aliases=tuple(sorted(probe.aliases)),
                right_aliases=tuple(sorted(build.aliases)),
                probe_rows=probe.num_rows,
                build_rows=build.num_rows,
                output_rows=joined.num_rows,
                bloom_prefiltered_rows=self._join_bloom_eliminated.pop(op.build_id, 0),
            )
        )
        stats.abstract_cost += (
            hash_probe_cost(probe.num_rows, build.num_rows)
            + float(build.num_rows)
            + float(joined.num_rows)
        )
        self._slots[op.output_slot] = self._apply_ready_predicates(joined)
        self._release_build(op.build_id, stage)
        return probe.num_rows, joined.num_rows, False

    # -- radix-partitioned join phase -----------------------------------
    def _exec_partition(self, op: Partition, stats: ExecutionStats) -> Tuple[int, int, bool]:
        build = self._materialize(op.input)
        stage = self._build_stages.get(op.build_id)
        if stage is None:
            stage = _BuildStage(result=build)
            self._build_stages[op.build_id] = stage
        else:
            # A join-scoped Bloom pair already staged the (filtered) pair keys.
            stage.result = build
        if stage.keys is None:
            stage.keys = self._single_attribute_keys(op.attributes[0], build)
        stage.partitioned = PartitionedHashIndex(stage.keys, bits=op.bits)
        # The build side's materialized rows are reserved like the monolithic
        # path's; the partitioned key/order copies are reserved per partition
        # (the granularity the governor spills at).
        self._reserve_build(op.build_id, stage)
        if self.governor is not None:
            partitioned = stage.partitioned
            for p in range(partitioned.num_partitions):
                nbytes = partitioned.partition_bytes(p)
                if nbytes:
                    self._governed_reserve(f"partition:{op.build_id}:{p}", nbytes)
        return build.num_rows, build.num_rows, False

    def _exec_partitioned_hash_build(
        self, op: PartitionedHashBuild, stats: ExecutionStats
    ) -> Tuple[int, int, bool]:
        stage = self._build_stages[op.build_id]
        assert stage.partitioned is not None, "Partition op must precede PartitionedHashBuild"
        # Per-partition index builds are independent partial builds; map_tasks
        # is the pipeline breaker that merges them (parallel backends fan out).
        stage.partitioned.build(run_tasks=self.backend.map_tasks)
        rows = stage.partitioned.num_keys
        return rows, rows, False

    def _exec_partitioned_hash_probe(
        self, op: PartitionedHashProbe, stats: ExecutionStats
    ) -> Tuple[int, int, bool]:
        stage = self._build_stages.pop(op.build_id)
        assert stage.partitioned is not None, "Partition op must precede PartitionedHashProbe"
        build = stage.result
        probe = self._materialize(op.probe)
        self._touch_build(op.build_id)

        staged_probe_keys = self._join_probe_keys.pop(op.build_id, None)
        if staged_probe_keys is not None:
            probe_keys = staged_probe_keys
        else:
            probe_keys = self._single_attribute_keys(op.attributes[0], probe)
        self.backend.account_probe(int(np.asarray(probe_keys).shape[0]))
        # Only the partitions the probe actually visits are touched, so a
        # spilled partition is charged a reload iff the join reads it.
        on_partition = None
        if self.governor is not None:
            governor = self.governor
            on_partition = lambda p: governor.touch(f"partition:{op.build_id}:{p}")  # noqa: E731
        matches = stage.partitioned.match(
            probe_keys, run_tasks=self.backend.map_tasks, on_partition=on_partition
        )
        joined = probe.merge(build, matches.probe_indices, matches.build_indices)

        stats.join_steps.append(
            JoinStepStats(
                left_aliases=tuple(sorted(probe.aliases)),
                right_aliases=tuple(sorted(build.aliases)),
                probe_rows=probe.num_rows,
                build_rows=build.num_rows,
                output_rows=joined.num_rows,
                bloom_prefiltered_rows=self._join_bloom_eliminated.pop(op.build_id, 0),
            )
        )
        # Partitioned probes search cache-resident segments: charge the hash
        # probe cost at partition granularity rather than the full build size.
        per_partition = max(build.num_rows >> stage.partitioned.bits, 1)
        stats.abstract_cost += (
            hash_probe_cost(probe.num_rows, per_partition)
            + float(build.num_rows)
            + float(joined.num_rows)
        )
        self._slots[op.output_slot] = self._apply_ready_predicates(joined)
        self._release_build(op.build_id, stage)
        return probe.num_rows, joined.num_rows, False

    def _cartesian_product(
        self,
        left: IntermediateResult,
        right: IntermediateResult,
        stats: ExecutionStats,
    ) -> IntermediateResult:
        if not self.options.allow_cartesian_products:
            raise ExecutionError(
                "join plan contains a Cartesian product between "
                f"{sorted(left.aliases)} and {sorted(right.aliases)}"
            )
        left_idx = np.repeat(np.arange(left.num_rows, dtype=np.int64), right.num_rows)
        right_idx = np.tile(np.arange(right.num_rows, dtype=np.int64), left.num_rows)
        joined = left.merge(right, left_idx, right_idx)
        stats.join_steps.append(
            JoinStepStats(
                left_aliases=tuple(sorted(left.aliases)),
                right_aliases=tuple(sorted(right.aliases)),
                probe_rows=left.num_rows,
                build_rows=right.num_rows,
                output_rows=joined.num_rows,
            )
        )
        stats.abstract_cost += float(joined.num_rows)
        return joined

    # -- aggregation ----------------------------------------------------
    def _exec_aggregate(self, op: Aggregate, stats: ExecutionStats) -> Tuple[int, int, bool]:
        final = self._materialize(op.input)
        rows_in = final.num_rows
        final = self._apply_ready_predicates(final, force_all=True)
        stats.output_rows = final.num_rows
        self._final = final
        self._aggregates = compute_aggregates(self.query, self._relations, final)
        return rows_in, final.num_rows, False

    # -- post-join predicates -------------------------------------------
    def _apply_ready_predicates(
        self, result: IntermediateResult, force_all: bool = False
    ) -> IntermediateResult:
        if not self._pending_predicates:
            return result
        still_pending: List[PostJoinPredicate] = []
        for predicate in self._pending_predicates:
            ready = predicate.required_aliases() <= result.aliases
            if ready:
                result = self._apply_predicate(result, predicate)
            elif force_all:
                raise ExecutionError(
                    "post-join predicate references relations missing from the final result: "
                    f"{sorted(predicate.required_aliases() - result.aliases)}"
                )
            else:
                still_pending.append(predicate)
        self._pending_predicates = still_pending
        return result

    def _apply_predicate(
        self, result: IntermediateResult, predicate: PostJoinPredicate
    ) -> IntermediateResult:
        if result.num_rows == 0:
            return result
        overall = np.zeros(result.num_rows, dtype=bool)
        for conjunct in predicate.disjuncts:
            conjunct_mask = np.ones(result.num_rows, dtype=bool)
            for term in conjunct:
                conjunct_mask &= result.evaluate_qualified_comparison(self._relations, term)
            overall |= conjunct_mask
        return result.take(np.nonzero(overall)[0])


# ---------------------------------------------------------------------------
# Aggregation (shared by the pipeline executor and the join-phase façade)
# ---------------------------------------------------------------------------
def compute_aggregates(
    query: QuerySpec,
    relations: Dict[str, BoundRelation],
    result: IntermediateResult,
) -> Dict[str, float]:
    """Compute a query's aggregates over the final joined result."""
    values: Dict[str, float] = {}
    for index, spec in enumerate(query.aggregates):
        name = spec.output_name or f"agg_{index}"
        if spec.function == "count":
            values[name] = float(result.num_rows)
            continue
        assert spec.alias is not None and spec.column is not None
        column_values = result.column_values(relations, spec.alias, spec.column)
        values[name] = _apply_aggregate(spec.function, column_values)
    return values


def _apply_aggregate(function: str, values: np.ndarray) -> float:
    if values.size == 0:
        return 0.0
    if function == "sum":
        return float(values.sum())
    if function == "min":
        return float(values.min())
    if function == "max":
        return float(values.max())
    if function == "avg":
        return float(values.mean())
    raise ExecutionError(f"unsupported aggregate function {function!r}")


def _representative_alias(attr_class, aliases: frozenset) -> str:
    for alias in sorted(aliases):
        if attr_class.touches(alias):
            return alias
    raise ExecutionError(
        f"attribute class {attr_class.name!r} has no member among aliases {sorted(aliases)}"
    )
