"""Process-parallel morsel execution over shared-memory columns.

:class:`ProcessBackend` is the GIL-free sibling of
:class:`~repro.exec.pipeline.ParallelBackend`: probe inputs are cut into
morsels and dispatched to a pool of worker *processes*.  Two things make
this profitable in pure Python:

* **Shared-memory inputs.**  Probe key columns are never pickled through
  the task pipe.  Base-table columns are published once per
  ``(table, catalog version, column)`` by the engine's
  :class:`~repro.storage.shm.SharedColumnArena`; derived arrays (selection
  vectors, hash/pattern passes) are copied into transient segments for the
  duration of one probe call.  A task message carries only (spec ref,
  input refs, morsel range).
* **Shipped-once probe specs.**  The probe callable (a Bloom filter's
  bound ``probe``, a :class:`~repro.exec.kernels.HashIndex`'s ``contains``
  or ``match``) is pickled *once* per call into a shared segment; workers
  unpickle it on first touch and cache it by segment name.

Results are gathered in submit order and concatenated, so every mask and
match is bit-identical to :class:`~repro.exec.pipeline.SerialBackend`
regardless of worker scheduling.  Probe structures are frozen (``prepare``
runs before the spec is pickled) so the shipped copy is complete.

**Crash recovery.**  A worker death no longer kills the query.  The pool is
a ``concurrent.futures.ProcessPoolExecutor`` — unlike ``multiprocessing.Pool``
it *detects* a lost task (``BrokenProcessPool`` surfaces on every pending
future instead of hanging) — and the morsel gather runs a bounded retry
loop: on a crash (or a transient worker-side error such as an injected
``shm.attach`` fault) the pool is respawned with exponential backoff, any
arena segment the dead workers held attachments to is re-verified /
re-published, and the unfinished morsels are resubmitted.  After
``max_task_retries`` rounds the remaining morsels execute *inline* in the
parent over the same spec and the same slices — bit-identical, just slower.
The cooperative :class:`~repro.exec.faults.CancelToken` is checked before
each morsel result; on expiry the in-flight tasks are drained and the
transient segments unlinked before the typed error propagates.

Worker pools are expensive to start, so one module-level pool is shared by
every :class:`ProcessBackend` instance with the same (start method, worker
count, fault plan); the engine's per-query ``backend.close()`` is a no-op
here and the pool dies with the interpreter (:func:`shutdown_workers` +
``atexit``).  The ``fork`` start method is preferred (no interpreter
re-exec per worker); ``spawn`` is the fallback on platforms without fork.

Caveat: Bloom-filter probe *statistics* incremented inside workers stay in
the workers — the parent's counters only reflect morsels probed inline.
Adaptive-transfer decisions use relation cardinalities, not Bloom
counters, so adaptivity is unaffected.

All transient segments are unlinked in ``finally`` blocks: a crashing
worker, a timeout, or an injected fault still leaves the segment registry
empty.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import threading
import time
from concurrent.futures import (
    BrokenExecutor,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import BackendUnavailable, ExecutionError
from repro.exec import faults
from repro.exec.kernels import HashIndex, JoinMatches
from repro.exec.pipeline import (
    MAX_DEFAULT_THREADS,
    ExecutionBackend,
    ProbeInput,
    _as_probe_input,
    _probe_rows,
    _slice_probe_input,
)
from repro.storage import shm
from repro.storage.shm import EncodedColumnRef, ShmArrayRef

#: Process morsels are coarser than thread morsels: each task additionally
#: pays a pipe round-trip and (once per worker) a segment attach, so it must
#: carry more rows to amortize.
DEFAULT_PROCESS_MORSEL_SIZE = 65_536

#: Pool-respawn rounds per fan-out before the remaining morsels run inline.
DEFAULT_MAX_TASK_RETRIES = 2

#: Exponential-backoff schedule for pool respawns: ``0.05 * 2**round``
#: seconds, capped here.
_RESPAWN_BACKOFF_CAP = 0.5

#: How long a timed-out / cancelled gather waits for still-running tasks
#: before unlinking transient segments (running workers hold their own
#: mapping, so an unlink under them is safe on POSIX; the wait just avoids
#: churning workers that are about to finish anyway).
_DRAIN_SECONDS = 1.0


# ---------------------------------------------------------------------------
# Task input descriptors (picklable, tiny)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _ArraysInput:
    """Probe input shipped as whole shared arrays; workers slice [lo:hi]."""

    refs: Tuple[ShmArrayRef, ...]
    is_tuple: bool


@dataclass(frozen=True)
class _GatherInput:
    """A base-column gather ``column[selection[lo:hi]]`` done worker-side.

    ``column`` is either a raw :class:`ShmArrayRef` or an
    :class:`~repro.storage.shm.EncodedColumnRef`; encoded refs are decoded
    after the gather, so workers see the exact physical values either way.
    """

    column: Union[ShmArrayRef, EncodedColumnRef]
    selection: ShmArrayRef


_TaskInput = Union[_ArraysInput, _GatherInput]


class ShmGather:
    """A lazy probe input: base column (shareable) + selection vector.

    Built by the pipeline executor instead of eagerly gathering
    ``column.data[row_indices]`` when the active backend ships probes to
    worker processes — workers gather their own morsel from the shared
    base column, so the parent never materializes the probe keys at all.
    Backends that do not understand it receive the materialized array.
    """

    __slots__ = ("column_ref", "selection", "column_data")

    def __init__(
        self, column_ref: ShmArrayRef, selection: np.ndarray, column_data: np.ndarray
    ) -> None:
        self.column_ref = column_ref
        self.selection = np.asarray(selection)
        self.column_data = column_data

    @property
    def rows(self) -> int:
        return int(self.selection.shape[0])

    def materialize(self) -> np.ndarray:
        """The equivalent eager probe-key array (used for inline fallbacks)."""
        return self.column_data[self.selection]

    def materialize_slice(self, lo: int, hi: int) -> np.ndarray:
        """One morsel of the eager gather (the inline crash-recovery path)."""
        return self.column_data[self.selection[lo:hi]]


def probe_input_rows(keys: object) -> int:
    """Row count of any probe input, including :class:`ShmGather`."""
    if isinstance(keys, ShmGather):
        return keys.rows
    return _probe_rows(_as_probe_input(keys))


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------
#: Worker-local cache of unpickled probe specs keyed by segment name (names
#: are never reused, so entries can never alias different callables).
_SPEC_CACHE: Dict[str, object] = {}
_SPEC_CACHE_LIMIT = 32


def _worker_init(start_method: str, fault_spec: Optional[str] = None) -> None:
    # Forked workers inherit the parent's owned-segment registry; drop it so
    # a worker can never unlink segments it does not own, and start with a
    # clean attach cache.
    shm._LIVE.clear()
    shm._ATTACHED.clear()
    _SPEC_CACHE.clear()
    # Forked workers also share the parent's resource-tracker process: the
    # attach-time registration is an idempotent no-op there, but an
    # unregister would strip the parent's own entry (tracker KeyError noise
    # at unlink).  Spawned workers have their own tracker and must
    # unregister, or that tracker unlinks live segments on worker exit.
    shm._UNREGISTER_ON_ATTACH = start_method != "fork"
    # The fault plan is shipped through the initializer so worker-side sites
    # (process.task crashes, shm.attach failures) fire deterministically in
    # fresh workers too — forked workers would otherwise inherit the parent's
    # already-advanced counters.
    faults.configure(fault_spec)


def _resolve_spec(spec_ref: ShmArrayRef) -> object:
    spec = _SPEC_CACHE.get(spec_ref.name)
    if spec is None:
        payload = shm.attach_array(spec_ref)
        spec = pickle.loads(payload.tobytes())
        if len(_SPEC_CACHE) >= _SPEC_CACHE_LIMIT:
            _SPEC_CACHE.pop(next(iter(_SPEC_CACHE)))
        _SPEC_CACHE[spec_ref.name] = spec
    return spec


def _materialize_input(task_input: _TaskInput, lo: int, hi: int) -> ProbeInput:
    if isinstance(task_input, _GatherInput):
        selection = shm.attach_array(task_input.selection)
        if isinstance(task_input.column, EncodedColumnRef):
            return shm.gather_encoded(task_input.column, selection[lo:hi])
        column = shm.attach_array(task_input.column)
        return column[selection[lo:hi]]
    arrays = tuple(shm.attach_array(ref)[lo:hi] for ref in task_input.refs)
    if task_input.is_tuple:
        return arrays
    return arrays[0]


def _maybe_crash() -> None:
    """The ``process.task`` fault site: this worker process dies, hard.

    ``os._exit`` models a segfault / OOM-kill — no exception propagates, no
    cleanup runs, the pool just loses the process mid-task.
    """
    if faults.should_fire("process.task"):
        os._exit(1)


def _probe_task(
    spec_ref: ShmArrayRef, task_input: _TaskInput, lo: int, hi: int, timed: bool = False
) -> object:
    # With ``timed`` (tracing on) the worker measures its own morsel and
    # ships ``(payload, seconds)`` back with the result — span summaries
    # aggregate in the parent with zero extra cross-process messages.
    _maybe_crash()
    start = time.perf_counter() if timed else 0.0
    probe_fn = _resolve_spec(spec_ref)
    payload = probe_fn(_materialize_input(task_input, lo, hi))
    if timed:
        return payload, time.perf_counter() - start
    return payload


def _match_task(
    spec_ref: ShmArrayRef, task_input: _TaskInput, lo: int, hi: int, timed: bool = False
) -> object:
    _maybe_crash()
    start = time.perf_counter() if timed else 0.0
    index = _resolve_spec(spec_ref)
    matches = index.match(_materialize_input(task_input, lo, hi))
    payload = (matches.probe_indices, matches.build_indices)
    if timed:
        return payload, time.perf_counter() - start
    return payload


# ---------------------------------------------------------------------------
# Shared pool management
# ---------------------------------------------------------------------------
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_KEY: Optional[Tuple[str, int, Optional[str]]] = None

#: Guards the shared pool globals: concurrent server queries acquire the
#: pool (and respawn it after crashes) from many threads at once.
_POOL_LOCK = threading.RLock()


def _start_method() -> str:
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def _current_fault_spec() -> Optional[str]:
    """The parent's active fault plan, serialized for worker initializers."""
    injector = faults.active_injector()
    return injector.plan.spec() if injector is not None else None


def _shared_pool(num_workers: int) -> ProcessPoolExecutor:
    global _POOL, _POOL_KEY
    with _POOL_LOCK:
        key = (_start_method(), num_workers, _current_fault_spec())
        if _POOL is not None and _POOL_KEY == key:
            return _POOL
        shutdown_workers()
        faults.fire("process.pool", "injected worker-pool start failure")
        context = multiprocessing.get_context(key[0])
        _POOL = ProcessPoolExecutor(
            max_workers=num_workers,
            mp_context=context,
            initializer=_worker_init,
            initargs=(key[0], key[2]),
        )
        _POOL_KEY = key
        return _POOL


def _respawn_pool() -> None:
    """Tear the (broken) shared pool down so the next acquisition is fresh."""
    shutdown_workers()


def shutdown_workers() -> None:
    """Shut the shared worker pool down (tests / interpreter shutdown).

    Concurrent queries that raced a submit into the dying pool see
    ``RuntimeError``/``CancelledError`` from it; ``_run_morsels`` treats
    both as retryable, so their morsels re-run on the next pool (or fall
    back inline) bit-identically.
    """
    global _POOL, _POOL_KEY
    with _POOL_LOCK:
        pool = _POOL
        _POOL = None
        _POOL_KEY = None
    if pool is not None:
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_workers)


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------
class ProcessBackend(ExecutionBackend):
    """Morsel-parallel execution over a pool of worker processes.

    Inputs travel through shared memory (see module docstring); small
    inputs (one morsel or less) run inline in the parent, exactly like the
    thread backend, so short probes never pay process-dispatch overhead.
    ``map_tasks`` (opaque closures from the partitioned-join path) falls
    back to serial execution — closures do not pickle, and partitioned
    builds mutate shared state.

    ``shm_bytes_mapped`` accumulates the bytes this backend placed in (or
    resolved from) shared segments; ``worker_crashes`` / ``tasks_retried``
    / ``inline_morsels`` count the crash-recovery activity.  The executor
    samples all of them per op.
    """

    name = "process"
    #: The pipeline executor checks this to hand over lazy ShmGather inputs.
    ships_probes = True

    def __init__(
        self,
        num_workers: Optional[int] = None,
        morsel_size: int = DEFAULT_PROCESS_MORSEL_SIZE,
        max_task_retries: int = DEFAULT_MAX_TASK_RETRIES,
    ) -> None:
        super().__init__()
        if num_workers is not None and num_workers <= 0:
            raise ExecutionError("process backend needs at least one worker")
        if morsel_size <= 0:
            raise ExecutionError("morsel size must be positive")
        if max_task_retries < 0:
            raise ExecutionError("max_task_retries must be non-negative")
        self.num_workers = num_workers or min(MAX_DEFAULT_THREADS, os.cpu_count() or 1)
        self.morsel_size = morsel_size
        self.max_task_retries = max_task_retries
        self.shm_bytes_mapped = 0
        #: Crash-recovery counters (sampled per op by the executor).
        self.worker_crashes = 0
        self.tasks_retried = 0
        self.inline_morsels = 0
        #: Tracing: when the executor flips ``trace_morsels`` on, workers
        #: time each morsel locally and the parent accumulates the counts
        #: and seconds here (sampled per op for the ``batch`` span).
        self.trace_morsels = False
        self.traced_batches = 0
        self.traced_worker_seconds = 0.0
        #: The engine's SharedColumnArena, when one is active: after a pool
        #: respawn, segments the dead workers held attachments to are
        #: re-verified (and dropped for re-publication if the OS object is
        #: gone) before morsels are retried.
        self.arena = None

    # -- internals ----------------------------------------------------------
    def ensure_ready(self) -> None:
        """Bring the shared worker pool up; ladder-degradable on failure."""
        try:
            _shared_pool(self.num_workers)
        except Exception as error:
            raise BackendUnavailable(f"worker pool unavailable: {error}") from error

    def _morsels(self, total_rows: int) -> List[Tuple[int, int]]:
        return [
            (start, min(start + self.morsel_size, total_rows))
            for start in range(0, total_rows, self.morsel_size)
        ]

    def _ship_spec(self, spec: object):
        """Pickle ``spec`` into a transient segment; None when unpicklable."""
        try:
            payload = pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return None
        try:
            segment, ref = shm.share_array(np.frombuffer(payload, dtype=np.uint8))
        except ExecutionError:
            # Publishing failed (e.g. an injected shm.share fault): the
            # caller probes inline instead.
            return None
        self.shm_bytes_mapped += ref.nbytes
        return segment, ref

    def _ship_input(self, keys):
        """Place a probe input in shared memory.

        Returns ``(transient_segments, task_input)``; only the transient
        segments (selection vectors, derived arrays) are unlinked after the
        call — arena-published base columns outlive it.
        """
        segments = []
        if isinstance(keys, ShmGather):
            selection_segment, selection_ref = shm.share_array(keys.selection)
            segments.append(selection_segment)
            self.shm_bytes_mapped += selection_ref.nbytes + keys.column_ref.nbytes
            return segments, _GatherInput(column=keys.column_ref, selection=selection_ref)
        parts = keys if isinstance(keys, tuple) else (keys,)
        refs = []
        for part in parts:
            segment, ref = shm.share_array(part)
            segments.append(segment)
            refs.append(ref)
            self.shm_bytes_mapped += ref.nbytes
        return segments, _ArraysInput(refs=tuple(refs), is_tuple=isinstance(keys, tuple))

    def _inline_task(self, task_fn, spec, keys, lo: int, hi: int):
        """Run one morsel in the parent, matching the worker task's output shape."""
        if isinstance(keys, ShmGather):
            morsel_input: ProbeInput = keys.materialize_slice(lo, hi)
        else:
            morsel_input = _slice_probe_input(_as_probe_input(keys), lo, hi)
        if task_fn is _match_task:
            matches = spec.match(morsel_input)
            return matches.probe_indices, matches.build_indices
        return spec(morsel_input)

    def _drain(self, futures: Sequence[Future]) -> None:
        """Cancel pending tasks and briefly wait out running ones."""
        for future in futures:
            future.cancel()
        try:
            wait(list(futures), timeout=_DRAIN_SECONDS)
        except Exception:  # pragma: no cover - drain is best-effort
            pass

    def _run_morsels(self, task_fn, spec_ref, task_input, morsels, spec, keys) -> List[object]:
        """Dispatch every morsel, recovering from worker deaths.

        The gather is in submission order (bit-identity); the cancel token
        is checked before each result.  Worker crashes (``BrokenExecutor``)
        and transient worker-side failures (``ExecutionError`` subclasses,
        e.g. an injected ``shm.attach`` fault) trigger a pool respawn with
        backoff and a retry of the unfinished morsels; after
        ``max_task_retries`` rounds the remainder runs inline in the parent.
        """
        results: List[Optional[object]] = [None] * len(morsels)
        done = [False] * len(morsels)
        remaining = list(range(len(morsels)))
        rounds = 0
        while remaining:
            try:
                pool = _shared_pool(self.num_workers)
            except Exception:
                # Pool unavailable mid-query (e.g. injected process.pool
                # fault on respawn): finish inline rather than failing.
                break
            submitted = []
            retryable = False
            timed = self.trace_morsels
            try:
                for i in remaining:
                    submitted.append(
                        (i, pool.submit(task_fn, spec_ref, task_input, *morsels[i], timed))
                    )
            except (BrokenExecutor, RuntimeError):
                # A worker died while this round was still being submitted —
                # or another thread shut this pool down under us
                # (RuntimeError: "cannot schedule new futures after
                # shutdown"); gather what did get in, then retry the rest.
                retryable = True
                self.worker_crashes += 1
            try:
                for i, future in submitted:
                    self._check_cancel()
                    try:
                        payload = future.result()
                        if timed:
                            payload, seconds = payload
                            self.traced_batches += 1
                            self.traced_worker_seconds += seconds
                        results[i] = payload
                        done[i] = True
                    except CancelledError:
                        # Another thread's shutdown/respawn cancelled our
                        # queued future before a worker picked it up; the
                        # morsel simply re-runs next round.
                        retryable = True
                        break
                    except (BrokenExecutor, ExecutionError, OSError) as error:
                        # A dead worker (all pending futures now fail) or a
                        # transient worker-side error: stop gathering this
                        # round and retry what is left.
                        retryable = True
                        self.worker_crashes += isinstance(error, (BrokenExecutor, OSError))
                        break
            except BaseException:
                # Timeout / cancellation / unexpected error: drain in-flight
                # tasks so no worker outlives the caller's segment cleanup.
                self._drain([future for _, future in submitted])
                raise
            remaining = [i for i in remaining if not done[i]]
            if not remaining:
                break
            if not retryable:  # pragma: no cover - defensive; result() raised
                break
            rounds += 1
            if rounds > self.max_task_retries:
                break
            self.tasks_retried += len(remaining)
            time.sleep(min(0.05 * (2 ** (rounds - 1)), _RESPAWN_BACKOFF_CAP))
            _respawn_pool()
            if self.arena is not None:
                # Dead workers held attachments to published base columns;
                # verify the OS objects survived and drop any that did not
                # so the next publication recreates them.
                try:
                    self.arena.republish_missing()
                except Exception:  # pragma: no cover - verification is best-effort
                    pass
        if remaining:
            # Bounded retries exhausted (or no pool): bit-identical inline
            # fallback over the same spec and the same morsel slices.
            for i in remaining:
                self._check_cancel()
                lo, hi = morsels[i]
                if self.trace_morsels:
                    start = time.perf_counter()
                    results[i] = self._inline_task(task_fn, spec, keys, lo, hi)
                    self.traced_batches += 1
                    self.traced_worker_seconds += time.perf_counter() - start
                else:
                    results[i] = self._inline_task(task_fn, spec, keys, lo, hi)
                self.inline_morsels += 1
        return results  # type: ignore[return-value]

    def _fan_out(self, task_fn, spec, keys, total: int):
        """Ship spec + input, run one task per morsel, gather in order.

        Returns the ordered list of worker results, or ``None`` when the
        spec (or input) cannot be shipped (caller runs inline instead).
        Transient segments are always unlinked — crash, timeout, or fault.
        """
        shipped = self._ship_spec(spec)
        if shipped is None:
            return None
        spec_segment, spec_ref = shipped
        segments = [spec_segment]
        try:
            try:
                input_segments, task_input = self._ship_input(keys)
                segments.extend(input_segments)
            except ExecutionError:
                # Publishing the input failed (e.g. injected shm.share
                # fault): recover by probing inline.
                return None
            morsels = self._morsels(total)
            self.tasks_dispatched += len(morsels)
            return morsels, self._run_morsels(task_fn, spec_ref, task_input, morsels, spec, keys)
        finally:
            for segment in segments:
                shm.unlink_segment(segment)

    @staticmethod
    def _inline_keys(keys) -> ProbeInput:
        if isinstance(keys, ShmGather):
            return keys.materialize()
        return _as_probe_input(keys)

    # -- ExecutionBackend API ----------------------------------------------
    def probe_mask(self, keys, probe_fn, prepare=None) -> np.ndarray:
        total = probe_input_rows(keys)
        if total <= self.morsel_size or self.num_workers == 1:
            self.tasks_dispatched += 1
            self._check_cancel()
            return probe_fn(self._inline_keys(keys))
        # Freeze lazy probe structures BEFORE pickling so the shipped copy
        # is complete and workers only read.
        if prepare is not None:
            prepare()
        fanned = self._fan_out(_probe_task, probe_fn, keys, total)
        if fanned is None:
            self.tasks_dispatched += 1
            return probe_fn(self._inline_keys(keys))
        _, parts = fanned
        return np.concatenate(parts)

    def match(self, probe_keys: np.ndarray, index: HashIndex) -> JoinMatches:
        probe_keys = np.asarray(probe_keys)
        total = int(probe_keys.shape[0])
        if total <= self.morsel_size or self.num_workers == 1:
            self.tasks_dispatched += 1
            self._check_cancel()
            return index.match(probe_keys)
        index.prepare_match()
        fanned = self._fan_out(_match_task, index, probe_keys, total)
        if fanned is None:
            self.tasks_dispatched += 1
            return index.match(probe_keys)
        morsels, results = fanned
        probe_parts = [probe + lo for (probe, _), (lo, _) in zip(results, morsels)]
        return JoinMatches(
            probe_indices=np.concatenate(probe_parts),
            build_indices=np.concatenate([build for _, build in results]),
        )

    def close(self) -> None:
        """Per-query no-op: the worker pool is module-shared (see above)."""
