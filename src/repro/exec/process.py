"""Process-parallel morsel execution over shared-memory columns.

:class:`ProcessBackend` is the GIL-free sibling of
:class:`~repro.exec.pipeline.ParallelBackend`: probe inputs are cut into
morsels and dispatched to a pool of worker *processes*.  Two things make
this profitable in pure Python:

* **Shared-memory inputs.**  Probe key columns are never pickled through
  the task pipe.  Base-table columns are published once per
  ``(table, catalog version, column)`` by the engine's
  :class:`~repro.storage.shm.SharedColumnArena`; derived arrays (selection
  vectors, hash/pattern passes) are copied into transient segments for the
  duration of one probe call.  A task message carries only (spec ref,
  input refs, morsel range).
* **Shipped-once probe specs.**  The probe callable (a Bloom filter's
  bound ``probe``, a :class:`~repro.exec.kernels.HashIndex`'s ``contains``
  or ``match``) is pickled *once* per call into a shared segment; workers
  unpickle it on first touch and cache it by segment name.

Results are gathered in submit order and concatenated, so every mask and
match is bit-identical to :class:`~repro.exec.pipeline.SerialBackend`
regardless of worker scheduling.  Probe structures are frozen (``prepare``
runs before the spec is pickled) so the shipped copy is complete.

Worker pools are expensive to start, so one module-level pool is shared by
every :class:`ProcessBackend` instance with the same (start method, worker
count); the engine's per-query ``backend.close()`` is a no-op here and the
pool dies with the interpreter (:func:`shutdown_workers` + ``atexit``).
The ``fork`` start method is preferred (no interpreter re-exec per
worker); ``spawn`` is the fallback on platforms without fork.

Caveat: Bloom-filter probe *statistics* incremented inside workers stay in
the workers — the parent's counters only reflect morsels probed inline.
Adaptive-transfer decisions use relation cardinalities, not Bloom
counters, so adaptivity is unaffected.

All transient segments are unlinked in ``finally`` blocks: a crashing
worker propagates its exception to the caller and still leaves the
segment registry empty.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ExecutionError
from repro.exec.kernels import HashIndex, JoinMatches
from repro.exec.pipeline import (
    MAX_DEFAULT_THREADS,
    ExecutionBackend,
    ProbeInput,
    _as_probe_input,
    _probe_rows,
    _slice_probe_input,
)
from repro.storage import shm
from repro.storage.shm import EncodedColumnRef, ShmArrayRef

#: Process morsels are coarser than thread morsels: each task additionally
#: pays a pipe round-trip and (once per worker) a segment attach, so it must
#: carry more rows to amortize.
DEFAULT_PROCESS_MORSEL_SIZE = 65_536


# ---------------------------------------------------------------------------
# Task input descriptors (picklable, tiny)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _ArraysInput:
    """Probe input shipped as whole shared arrays; workers slice [lo:hi]."""

    refs: Tuple[ShmArrayRef, ...]
    is_tuple: bool


@dataclass(frozen=True)
class _GatherInput:
    """A base-column gather ``column[selection[lo:hi]]`` done worker-side.

    ``column`` is either a raw :class:`ShmArrayRef` or an
    :class:`~repro.storage.shm.EncodedColumnRef`; encoded refs are decoded
    after the gather, so workers see the exact physical values either way.
    """

    column: Union[ShmArrayRef, EncodedColumnRef]
    selection: ShmArrayRef


_TaskInput = Union[_ArraysInput, _GatherInput]


class ShmGather:
    """A lazy probe input: base column (shareable) + selection vector.

    Built by the pipeline executor instead of eagerly gathering
    ``column.data[row_indices]`` when the active backend ships probes to
    worker processes — workers gather their own morsel from the shared
    base column, so the parent never materializes the probe keys at all.
    Backends that do not understand it receive the materialized array.
    """

    __slots__ = ("column_ref", "selection", "column_data")

    def __init__(
        self, column_ref: ShmArrayRef, selection: np.ndarray, column_data: np.ndarray
    ) -> None:
        self.column_ref = column_ref
        self.selection = np.asarray(selection)
        self.column_data = column_data

    @property
    def rows(self) -> int:
        return int(self.selection.shape[0])

    def materialize(self) -> np.ndarray:
        """The equivalent eager probe-key array (used for inline fallbacks)."""
        return self.column_data[self.selection]


def probe_input_rows(keys: object) -> int:
    """Row count of any probe input, including :class:`ShmGather`."""
    if isinstance(keys, ShmGather):
        return keys.rows
    return _probe_rows(_as_probe_input(keys))


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------
#: Worker-local cache of unpickled probe specs keyed by segment name (names
#: are never reused, so entries can never alias different callables).
_SPEC_CACHE: Dict[str, object] = {}
_SPEC_CACHE_LIMIT = 32


def _worker_init(start_method: str) -> None:
    # Forked workers inherit the parent's owned-segment registry; drop it so
    # a worker can never unlink segments it does not own, and start with a
    # clean attach cache.
    shm._LIVE.clear()
    shm._ATTACHED.clear()
    _SPEC_CACHE.clear()
    # Forked workers also share the parent's resource-tracker process: the
    # attach-time registration is an idempotent no-op there, but an
    # unregister would strip the parent's own entry (tracker KeyError noise
    # at unlink).  Spawned workers have their own tracker and must
    # unregister, or that tracker unlinks live segments on worker exit.
    shm._UNREGISTER_ON_ATTACH = start_method != "fork"


def _resolve_spec(spec_ref: ShmArrayRef) -> object:
    spec = _SPEC_CACHE.get(spec_ref.name)
    if spec is None:
        payload = shm.attach_array(spec_ref)
        spec = pickle.loads(payload.tobytes())
        if len(_SPEC_CACHE) >= _SPEC_CACHE_LIMIT:
            _SPEC_CACHE.pop(next(iter(_SPEC_CACHE)))
        _SPEC_CACHE[spec_ref.name] = spec
    return spec


def _materialize_input(task_input: _TaskInput, lo: int, hi: int) -> ProbeInput:
    if isinstance(task_input, _GatherInput):
        selection = shm.attach_array(task_input.selection)
        if isinstance(task_input.column, EncodedColumnRef):
            return shm.gather_encoded(task_input.column, selection[lo:hi])
        column = shm.attach_array(task_input.column)
        return column[selection[lo:hi]]
    arrays = tuple(shm.attach_array(ref)[lo:hi] for ref in task_input.refs)
    if task_input.is_tuple:
        return arrays
    return arrays[0]


def _probe_task(
    spec_ref: ShmArrayRef, task_input: _TaskInput, lo: int, hi: int
) -> np.ndarray:
    probe_fn = _resolve_spec(spec_ref)
    return probe_fn(_materialize_input(task_input, lo, hi))


def _match_task(
    spec_ref: ShmArrayRef, task_input: _TaskInput, lo: int, hi: int
) -> Tuple[np.ndarray, np.ndarray]:
    index = _resolve_spec(spec_ref)
    matches = index.match(_materialize_input(task_input, lo, hi))
    return matches.probe_indices, matches.build_indices


# ---------------------------------------------------------------------------
# Shared pool management
# ---------------------------------------------------------------------------
_POOL: Optional[multiprocessing.pool.Pool] = None
_POOL_KEY: Optional[Tuple[str, int]] = None


def _start_method() -> str:
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def _shared_pool(num_workers: int) -> multiprocessing.pool.Pool:
    global _POOL, _POOL_KEY
    key = (_start_method(), num_workers)
    if _POOL is not None and _POOL_KEY == key:
        return _POOL
    shutdown_workers()
    context = multiprocessing.get_context(key[0])
    _POOL = context.Pool(
        processes=num_workers, initializer=_worker_init, initargs=(key[0],)
    )
    _POOL_KEY = key
    return _POOL


def shutdown_workers() -> None:
    """Terminate the shared worker pool (tests / interpreter shutdown)."""
    global _POOL, _POOL_KEY
    if _POOL is not None:
        _POOL.terminate()
        _POOL.join()
        _POOL = None
        _POOL_KEY = None


atexit.register(shutdown_workers)


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------
class ProcessBackend(ExecutionBackend):
    """Morsel-parallel execution over a pool of worker processes.

    Inputs travel through shared memory (see module docstring); small
    inputs (one morsel or less) run inline in the parent, exactly like the
    thread backend, so short probes never pay process-dispatch overhead.
    ``map_tasks`` (opaque closures from the partitioned-join path) falls
    back to serial execution — closures do not pickle, and partitioned
    builds mutate shared state.

    ``shm_bytes_mapped`` accumulates the bytes this backend placed in (or
    resolved from) shared segments; the executor samples it per op.
    """

    name = "process"
    #: The pipeline executor checks this to hand over lazy ShmGather inputs.
    ships_probes = True

    def __init__(
        self,
        num_workers: Optional[int] = None,
        morsel_size: int = DEFAULT_PROCESS_MORSEL_SIZE,
    ) -> None:
        super().__init__()
        if num_workers is not None and num_workers <= 0:
            raise ExecutionError("process backend needs at least one worker")
        if morsel_size <= 0:
            raise ExecutionError("morsel size must be positive")
        self.num_workers = num_workers or min(MAX_DEFAULT_THREADS, os.cpu_count() or 1)
        self.morsel_size = morsel_size
        self.shm_bytes_mapped = 0

    # -- internals ----------------------------------------------------------
    def _morsels(self, total_rows: int) -> List[Tuple[int, int]]:
        return [
            (start, min(start + self.morsel_size, total_rows))
            for start in range(0, total_rows, self.morsel_size)
        ]

    def _ship_spec(self, spec: object):
        """Pickle ``spec`` into a transient segment; None when unpicklable."""
        try:
            payload = pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return None
        segment, ref = shm.share_array(np.frombuffer(payload, dtype=np.uint8))
        self.shm_bytes_mapped += ref.nbytes
        return segment, ref

    def _ship_input(self, keys):
        """Place a probe input in shared memory.

        Returns ``(transient_segments, task_input)``; only the transient
        segments (selection vectors, derived arrays) are unlinked after the
        call — arena-published base columns outlive it.
        """
        segments = []
        if isinstance(keys, ShmGather):
            selection_segment, selection_ref = shm.share_array(keys.selection)
            segments.append(selection_segment)
            self.shm_bytes_mapped += selection_ref.nbytes + keys.column_ref.nbytes
            return segments, _GatherInput(column=keys.column_ref, selection=selection_ref)
        parts = keys if isinstance(keys, tuple) else (keys,)
        refs = []
        for part in parts:
            segment, ref = shm.share_array(part)
            segments.append(segment)
            refs.append(ref)
            self.shm_bytes_mapped += ref.nbytes
        return segments, _ArraysInput(refs=tuple(refs), is_tuple=isinstance(keys, tuple))

    def _fan_out(self, task_fn, spec, keys, total: int):
        """Ship spec + input, run one task per morsel, gather in order.

        Returns the ordered list of worker results, or ``None`` when the
        spec cannot be pickled (caller runs inline instead).  Transient
        segments are always unlinked, even when a worker raises.
        """
        shipped = self._ship_spec(spec)
        if shipped is None:
            return None
        spec_segment, spec_ref = shipped
        segments = [spec_segment]
        try:
            input_segments, task_input = self._ship_input(keys)
            segments.extend(input_segments)
            pool = _shared_pool(self.num_workers)
            morsels = self._morsels(total)
            self.tasks_dispatched += len(morsels)
            pending = [
                pool.apply_async(task_fn, (spec_ref, task_input, lo, hi))
                for lo, hi in morsels
            ]
            return morsels, [result.get() for result in pending]
        finally:
            for segment in segments:
                shm.unlink_segment(segment)

    @staticmethod
    def _inline_keys(keys) -> ProbeInput:
        if isinstance(keys, ShmGather):
            return keys.materialize()
        return _as_probe_input(keys)

    # -- ExecutionBackend API ----------------------------------------------
    def probe_mask(self, keys, probe_fn, prepare=None) -> np.ndarray:
        total = probe_input_rows(keys)
        if total <= self.morsel_size or self.num_workers == 1:
            self.tasks_dispatched += 1
            return probe_fn(self._inline_keys(keys))
        # Freeze lazy probe structures BEFORE pickling so the shipped copy
        # is complete and workers only read.
        if prepare is not None:
            prepare()
        fanned = self._fan_out(_probe_task, probe_fn, keys, total)
        if fanned is None:
            self.tasks_dispatched += 1
            return probe_fn(self._inline_keys(keys))
        _, parts = fanned
        return np.concatenate(parts)

    def match(self, probe_keys: np.ndarray, index: HashIndex) -> JoinMatches:
        probe_keys = np.asarray(probe_keys)
        total = int(probe_keys.shape[0])
        if total <= self.morsel_size or self.num_workers == 1:
            self.tasks_dispatched += 1
            return index.match(probe_keys)
        index.prepare_match()
        fanned = self._fan_out(_match_task, index, probe_keys, total)
        if fanned is None:
            self.tasks_dispatched += 1
            return index.match(probe_keys)
        morsels, results = fanned
        probe_parts = [probe + lo for (probe, _), (lo, _) in zip(results, morsels)]
        return JoinMatches(
            probe_indices=np.concatenate(probe_parts),
            build_indices=np.concatenate([build for _, build in results]),
        )

    def close(self) -> None:
        """Per-query no-op: the worker pool is module-shared (see above)."""
