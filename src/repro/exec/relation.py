"""Runtime relation representations used by the transfer and join phases.

Two representations are used:

* :class:`BoundRelation` — a base-table occurrence after base-filter
  application and (possibly) semi-join reduction.  It keeps the underlying
  :class:`~repro.storage.table.Table` plus a row-index array, so reductions
  are cheap (index filtering) and columns are gathered lazily.

* :class:`IntermediateResult` — the output of the join phase so far,
  represented *late-materialized*: for every participating relation alias it
  stores an array of row positions into that relation's BoundRelation.  A
  binary join therefore only produces index vectors; real column values are
  only gathered when a join key or the final aggregate needs them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

import numpy as np

from repro.errors import ExecutionError
from repro.query import QualifiedComparison
from repro.storage.datatypes import DataType
from repro.storage.table import Table


@dataclass
class BoundRelation:
    """A base-table occurrence bound into a query execution.

    Attributes
    ----------
    alias:
        The relation alias within the query.
    table:
        The underlying catalog table.
    row_indices:
        Positions of the surviving rows within ``table`` (after base filters
        and any semi-join reductions applied so far).
    version:
        Monotonic counter bumped by every in-place reduction.  Executors use
        it to invalidate cached :class:`~repro.exec.kernels.HashIndex`
        objects built over this relation's key columns.
    """

    alias: str
    table: Table
    row_indices: np.ndarray
    version: int = 0

    @classmethod
    def from_table(cls, alias: str, table: Table, mask: Optional[np.ndarray] = None) -> "BoundRelation":
        """Bind a table, optionally pre-filtered by a boolean mask."""
        if mask is None:
            indices = np.arange(table.num_rows, dtype=np.int64)
        else:
            indices = np.nonzero(np.asarray(mask, dtype=bool))[0].astype(np.int64)
        return cls(alias=alias, table=table, row_indices=indices)

    @property
    def num_rows(self) -> int:
        """Number of surviving rows."""
        return int(self.row_indices.shape[0])

    def key_values(self, column: str) -> np.ndarray:
        """Physical (integer-encoded) values of ``column`` for the surviving rows."""
        col = self.table.column(column)
        if not col.dtype.is_integer_backed:
            raise ExecutionError(
                f"column {column!r} of {self.table.name!r} is not integer-backed; "
                "only integer-backed columns can be join keys"
            )
        return col.data[self.row_indices]

    def column_values(self, column: str) -> np.ndarray:
        """Physical values of any column for the surviving rows."""
        return self.table.column(column).data[self.row_indices]

    def decoded_column_values(self, column: str) -> np.ndarray:
        """Decoded (original-domain) values of ``column`` for the surviving rows."""
        return self.table.column(column).decode()[self.row_indices]

    def keep(self, mask: np.ndarray) -> None:
        """Reduce the relation in place: keep rows where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != self.num_rows:
            raise ExecutionError(
                f"semi-join mask length {mask.shape[0]} does not match relation size {self.num_rows}"
            )
        self.row_indices = self.row_indices[mask]
        self.version += 1

    def snapshot(self) -> "BoundRelation":
        """An independent copy (used to rerun the join phase with multiple orders)."""
        return BoundRelation(
            alias=self.alias,
            table=self.table,
            row_indices=self.row_indices.copy(),
            version=self.version,
        )

    def estimated_bytes(self) -> int:
        """Approximate size of the surviving rows in bytes (for spill accounting)."""
        if self.table.num_rows == 0:
            return 0
        bytes_per_row = self.table.memory_bytes() / self.table.num_rows
        return int(bytes_per_row * self.num_rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BoundRelation({self.alias!r}, rows={self.num_rows})"


@dataclass
class IntermediateResult:
    """Late-materialized join result: per-alias row positions of equal length."""

    positions: Dict[str, np.ndarray] = field(default_factory=dict)

    @classmethod
    def from_relation(cls, relation: BoundRelation) -> "IntermediateResult":
        """Start an intermediate result from a single (reduced) relation."""
        return cls(positions={relation.alias: np.arange(relation.num_rows, dtype=np.int64)})

    @property
    def num_rows(self) -> int:
        """Number of joined tuples represented."""
        if not self.positions:
            return 0
        return int(next(iter(self.positions.values())).shape[0])

    @property
    def aliases(self) -> frozenset[str]:
        """Relations already joined into this result."""
        return frozenset(self.positions)

    def column_values(self, relations: Dict[str, BoundRelation], alias: str, column: str) -> np.ndarray:
        """Gather the physical values of ``alias.column`` for every joined tuple."""
        if alias not in self.positions:
            raise ExecutionError(f"intermediate result does not contain relation {alias!r}")
        relation = relations[alias]
        return relation.column_values(column)[self.positions[alias]]

    def take(self, row_selector: np.ndarray) -> "IntermediateResult":
        """Gather a subset / reordering of the joined tuples."""
        return IntermediateResult(
            positions={alias: pos[row_selector] for alias, pos in self.positions.items()}
        )

    def merge(
        self,
        other: "IntermediateResult",
        self_selector: np.ndarray,
        other_selector: np.ndarray,
    ) -> "IntermediateResult":
        """Combine two results after a join matched ``self_selector`` with ``other_selector``."""
        overlap = self.aliases & other.aliases
        if overlap:
            raise ExecutionError(f"cannot merge intermediate results sharing relations {sorted(overlap)}")
        merged: Dict[str, np.ndarray] = {}
        for alias, pos in self.positions.items():
            merged[alias] = pos[self_selector]
        for alias, pos in other.positions.items():
            merged[alias] = pos[other_selector]
        return IntermediateResult(positions=merged)

    def evaluate_qualified_comparison(
        self,
        relations: Dict[str, BoundRelation],
        term: QualifiedComparison,
    ) -> np.ndarray:
        """Evaluate one qualified comparison over the joined tuples."""
        relation = relations[term.alias]
        column = relation.table.column(term.column)
        values = self.column_values(relations, term.alias, term.column)
        rhs = column.encode_literal(term.value)
        if column.dtype is DataType.STRING and term.op not in ("==", "!="):
            decoded = column.decode()[relation.row_indices][self.positions[term.alias]].astype(str)
            return _compare(decoded, term.op, str(term.value))
        return _compare(values, term.op, rhs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IntermediateResult(aliases={sorted(self.positions)}, rows={self.num_rows})"


def _compare(values: np.ndarray, op: str, rhs) -> np.ndarray:
    if op == "==":
        return values == rhs
    if op == "!=":
        return values != rhs
    if op == "<":
        return values < rhs
    if op == "<=":
        return values <= rhs
    if op == ">":
        return values > rhs
    if op == ">=":
        return values >= rhs
    raise ExecutionError(f"unsupported comparison operator {op!r}")


def bind_relations(
    query_relations: Iterable,
    catalog,
    masks: Optional[Dict[str, Optional[np.ndarray]]] = None,
) -> Dict[str, BoundRelation]:
    """Bind every relation occurrence of a query against the catalog.

    Base-table filter predicates are evaluated here (this is the
    "scan + filter pushdown" part of execution) unless the caller supplies
    ``masks`` — precomputed boolean filter masks keyed by alias — in which
    case each predicate is *not* re-evaluated.  The engine uses this to
    evaluate every base filter exactly once per query (the same masks feed
    the join-graph cardinalities and the scan).
    """
    bound: Dict[str, BoundRelation] = {}
    for ref in query_relations:
        table = catalog.table(ref.table)
        if masks is not None and ref.alias in masks:
            mask = masks[ref.alias]
        elif ref.filter is not None:
            mask = ref.filter.evaluate(table)
        else:
            mask = None
        bound[ref.alias] = BoundRelation.from_table(ref.alias, table, mask)
    return bound
