"""Simulated on-disk / spill accounting for the Figure 15 experiment.

The paper's "on-disk" configuration reads base tables from disk; the
"+spill" configuration additionally limits memory to ≈50% of RPT's peak so
that the chunks materialized after the forward pass must be partially
spilled and re-read by the backward pass and join phase.

This module charges those I/O volumes against a
:class:`~repro.storage.buffer.BufferManager` given an already-measured
execution, and converts them into simulated seconds that are added to the
execution's timings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.exec.relation import BoundRelation
from repro.exec.statistics import ExecutionStats
from repro.storage.buffer import BufferManager


@dataclass(frozen=True)
class SpillConfig:
    """Configuration of the simulated disk experiment.

    Attributes
    ----------
    base_tables_on_disk:
        Charge an initial read of every base table (the "on-disk" setting).
    memory_budget_fraction:
        Memory budget as a fraction of the execution's peak materialized
        footprint; ``None`` disables spilling (pure "on-disk" run).
    """

    base_tables_on_disk: bool = True
    memory_budget_fraction: float | None = 0.5


def peak_materialized_bytes(
    stats: ExecutionStats, relations: Dict[str, BoundRelation]
) -> int:
    """Approximate peak footprint: reduced relations + largest join output."""
    reduced = sum(relation.estimated_bytes() for relation in relations.values())
    widest_join = 0
    for step in stats.join_steps:
        # Assume ~16 bytes per tuple per participating relation (row indices).
        width = 16 * (len(step.left_aliases) + len(step.right_aliases))
        widest_join = max(widest_join, step.output_rows * width)
    return reduced + widest_join


def simulate_spill(
    stats: ExecutionStats,
    relations: Dict[str, BoundRelation],
    config: SpillConfig,
) -> float:
    """Charge simulated I/O for an execution and return the added seconds.

    The returned value is also accumulated into ``stats.timings.simulated_io``.
    """
    peak = max(peak_materialized_bytes(stats, relations), 1)
    budget = None
    if config.memory_budget_fraction is not None:
        budget = int(peak * config.memory_budget_fraction)
    buffer = BufferManager(memory_budget_bytes=budget)

    if config.base_tables_on_disk:
        seen_tables: set[str] = set()
        for relation in relations.values():
            if relation.table.name in seen_tables:
                continue
            seen_tables.add(relation.table.name)
            buffer.register_on_disk(relation.table.name, relation.table.memory_bytes())
            buffer.read(relation.table.name, relation.table.memory_bytes())

    # Forward pass materializes the surviving chunks of each reduced relation.
    for alias, relation in relations.items():
        buffer.write(f"reduced:{alias}", relation.estimated_bytes())

    # The backward pass and the join phase re-read every reduced relation.
    for alias, relation in relations.items():
        buffer.read(f"reduced:{alias}", relation.estimated_bytes())

    seconds = buffer.stats.simulated_seconds()
    stats.timings.simulated_io += seconds
    return seconds
