"""Spilling: the executor's live spill callback and the Figure 15 model.

Two layers:

* :class:`SpillManager` — the **executor callback** invoked by the
  :class:`~repro.storage.buffer.MemoryGovernor` *while the query runs*.
  When a reservation is evicted, the manager charges the write against its
  :class:`~repro.storage.buffer.IoStatistics`; when a spilled reservation is
  touched again, it charges the read.  The charges happen at the moment the
  executor crosses the budget — not as an after-the-run accounting pass —
  and the executor folds the resulting simulated I/O seconds into the run's
  timings and surfaces per-op spill counters in ``ExecutionStats.op_stats``.

* :func:`simulate_spill` — the original deterministic figure-reproduction
  model for the paper's "on-disk"/"+spill" configurations (Figure 15),
  which charges I/O volumes against a
  :class:`~repro.storage.buffer.BufferManager` given an already-measured
  execution trace.  It stays the reproducible path for regenerating the
  figure, now expressed over the same trace quantities the live path
  records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.exec import faults
from repro.exec.relation import BoundRelation
from repro.exec.statistics import ExecutionStats
from repro.storage.buffer import BufferManager, IoStatistics


@dataclass
class SpillManager:
    """Charges spill writes and reloads as the memory governor orders them.

    This is the :class:`~repro.storage.buffer.SpillHandler` the engine wires
    between the governor and the executor.  The data itself stays reachable
    (reductions in this engine are index arrays; "spilling" them means
    charging the disk round-trip they would cost), so execution results are
    bit-identical with or without a budget — exactly the property the
    memory-governor tests assert.
    """

    stats: IoStatistics = field(default_factory=IoStatistics)

    def spill(self, key: str, size_bytes: int) -> None:
        """Evict ``key``: charge the spill write.

        An injected ``spill.write`` fault raises here; the governor treats a
        failed write as "victim stays resident" and tries the next victim.
        """
        faults.fire("spill.write", f"injected spill-write failure for {key!r}")
        self.stats.bytes_written_to_disk += size_bytes
        self.stats.evictions += 1

    def reload(self, key: str, size_bytes: int) -> None:
        """Reload a spilled ``key``: charge the read."""
        faults.fire("spill.read", f"injected spill-read failure for {key!r}")
        self.stats.bytes_read_from_disk += size_bytes

    @property
    def spilled_bytes(self) -> int:
        """Total bytes written by governor-ordered spills."""
        return self.stats.bytes_written_to_disk

    @property
    def reloaded_bytes(self) -> int:
        """Total bytes re-read because they had been spilled."""
        return self.stats.bytes_read_from_disk

    def simulated_seconds(self) -> float:
        """Simulated elapsed I/O seconds of all spill traffic so far."""
        return self.stats.simulated_seconds()


@dataclass(frozen=True)
class SpillConfig:
    """Configuration of the simulated disk experiment.

    Attributes
    ----------
    base_tables_on_disk:
        Charge an initial read of every base table (the "on-disk" setting).
    memory_budget_fraction:
        Memory budget as a fraction of the execution's peak materialized
        footprint; ``None`` disables spilling (pure "on-disk" run).
    """

    base_tables_on_disk: bool = True
    memory_budget_fraction: float | None = 0.5


def peak_materialized_bytes(
    stats: ExecutionStats, relations: Dict[str, BoundRelation]
) -> int:
    """Approximate peak footprint: reduced relations + largest join output."""
    reduced = sum(relation.estimated_bytes() for relation in relations.values())
    widest_join = 0
    for step in stats.join_steps:
        # Assume ~16 bytes per tuple per participating relation (row indices).
        width = 16 * (len(step.left_aliases) + len(step.right_aliases))
        widest_join = max(widest_join, step.output_rows * width)
    return reduced + widest_join


def simulate_spill(
    stats: ExecutionStats,
    relations: Dict[str, BoundRelation],
    config: SpillConfig,
) -> float:
    """Charge simulated I/O for an execution and return the added seconds.

    The returned value is also accumulated into ``stats.timings.simulated_io``.
    """
    peak = max(peak_materialized_bytes(stats, relations), 1)
    budget = None
    if config.memory_budget_fraction is not None:
        budget = int(peak * config.memory_budget_fraction)
    buffer = BufferManager(memory_budget_bytes=budget)

    if config.base_tables_on_disk:
        seen_tables: set[str] = set()
        for relation in relations.values():
            if relation.table.name in seen_tables:
                continue
            seen_tables.add(relation.table.name)
            buffer.register_on_disk(relation.table.name, relation.table.memory_bytes())
            buffer.read(relation.table.name, relation.table.memory_bytes())

    # Forward pass materializes the surviving chunks of each reduced relation.
    for alias, relation in relations.items():
        buffer.write(f"reduced:{alias}", relation.estimated_bytes())

    # The backward pass and the join phase re-read every reduced relation.
    for alias, relation in relations.items():
        buffer.read(f"reduced:{alias}", relation.estimated_bytes())

    seconds = buffer.stats.simulated_seconds()
    stats.timings.simulated_io += seconds
    return seconds
