"""Execution statistics: the measurement substrate of every experiment.

The paper's evaluation reports two kinds of quantities:

* wall-clock execution time (Figures 6-10, 13-15, Tables 1-3), and
* intermediate-result sizes (Figure 11's case study, the theory in §3).

At reproduction scale, wall-clock alone is noisy, so every executor in this
library records both: timers per phase *and* exact tuple counts for every
semi-join step and every binary join.  The robustness metrics
(:mod:`repro.core.robustness`) can therefore be computed over wall time, over
a deterministic cost model, or over raw intermediate tuple counts.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class TransferStepStats:
    """Statistics for one semi-join (Bloom) step of the transfer phase."""

    source: str
    target: str
    pass_: str
    rows_before: int
    rows_after: int
    filter_bytes: int = 0
    build_rows: int = 0
    skipped: bool = False
    #: True when the skip was an adaptive-controller decision (as opposed to
    #: the static §4.3 PK-FK triviality pruning).
    adaptive_skipped: bool = False
    #: True when the step ran as an exact bitmap semi-join instead of a
    #: Bloom filter (the adaptive exact-bitmap downgrade).
    downgraded_exact: bool = False

    @property
    def rows_eliminated(self) -> int:
        """Tuples removed from the target by this step."""
        return self.rows_before - self.rows_after

    @property
    def selectivity(self) -> float:
        """Fraction of target tuples surviving the step."""
        if self.rows_before == 0:
            return 1.0
        return self.rows_after / self.rows_before


@dataclass
class OpStats:
    """Statistics for one op of a compiled :class:`~repro.plan.physical.PhysicalPlan`.

    Every execution mode compiles to the same typed op set, so this is the
    *uniform trace*: the bench harness can compare a baseline hash-join run
    against an RPT run op by op (kind, cardinalities, wall time) without
    mode-specific bookkeeping.
    """

    index: int
    kind: str
    detail: str = ""
    rows_in: int = 0
    rows_out: int = 0
    seconds: float = 0.0
    skipped: bool = False
    #: Morsels / partition tasks the backend dispatched for this op (0 when
    #: the op ran as one whole-column kernel call).
    morsels: int = 0
    #: Bytes the memory governor spilled while this op was reserving budget.
    spilled_bytes: int = 0
    #: Hash-cache column passes this op reused / had to compute.
    hash_hits: int = 0
    hash_misses: int = 0
    #: Rows this op carried through row-id selection vectors instead of a
    #: materialized filtered key array.
    selvec_rows: int = 0
    #: Cross-query artifact-cache hits (prebuilt Bloom filter / hash index
    #: reused) and misses this op observed.
    artifact_hits: int = 0
    artifact_misses: int = 0
    #: True when the adaptive transfer controller cancelled this op (yield
    #: below threshold, dead build, or wholesale backward-pass skip).
    adaptive_skipped: bool = False
    #: Filter bytes NDV-based sizing saved against row-count sizing.
    filter_bytes_saved: int = 0
    #: True when this step ran as an exact bitmap semi-join instead of a
    #: Bloom build/probe (the adaptive exact-bitmap downgrade).
    downgraded_exact: bool = False
    #: True when this op's predicate ran as a single fused kernel instead of
    #: one materialized mask per expression node.
    fused_expr: bool = False
    #: Rows the fused kernel never evaluated later conjuncts on (the
    #: progressive selection vectors' saving over naive per-node masks).
    fused_rows_short_circuited: int = 0
    #: Bytes this op placed in (or resolved from) shared-memory segments for
    #: process-parallel probing.
    shm_bytes: int = 0
    #: Zone-map block skipping for this op's predicate: blocks proven empty
    #: of matches (skipped wholesale) out of the blocks covering the column.
    blocks_skipped: int = 0
    blocks_total: int = 0
    #: Encoded bytes behind this op's column accesses (dictionary / RLE /
    #: bit-packed buffers instead of flat ``int64`` arrays).
    encoded_bytes: int = 0
    #: Non-empty when this op took a degradation rung (e.g.
    #: ``"governor:spill-retry"`` after a failed reservation, or
    #: ``"process:inline-fallback"`` after exhausting task retries).
    degraded: str = ""
    #: Worker-process deaths observed while this op's morsels ran, and the
    #: pool respawn + retry rounds they triggered.
    worker_crashes: int = 0
    tasks_retried: int = 0
    #: Morsels executed inline in the parent after ``max_task_retries``.
    inline_morsels: int = 0

    @property
    def rows_eliminated(self) -> int:
        """Rows removed by this op (0 for build/scan ops)."""
        return max(self.rows_in - self.rows_out, 0)


@dataclass
class JoinStepStats:
    """Statistics for one binary join of the join phase."""

    left_aliases: tuple[str, ...]
    right_aliases: tuple[str, ...]
    probe_rows: int
    build_rows: int
    output_rows: int
    bloom_prefiltered_rows: int = 0

    @property
    def amplification(self) -> float:
        """Output rows per probe row (> 1 indicates a fan-out join)."""
        if self.probe_rows == 0:
            return 0.0
        return self.output_rows / self.probe_rows


@dataclass
class PhaseTimings:
    """Wall-clock seconds spent in each execution phase."""

    scan_filter: float = 0.0
    transfer: float = 0.0
    join: float = 0.0
    aggregate: float = 0.0
    simulated_io: float = 0.0

    @property
    def total(self) -> float:
        """Total wall-clock + simulated I/O time."""
        return self.scan_filter + self.transfer + self.join + self.aggregate + self.simulated_io


@dataclass
class ExecutionStats:
    """Complete measurement record for one query execution."""

    query_name: str = ""
    mode: str = ""
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    transfer_steps: List[TransferStepStats] = field(default_factory=list)
    join_steps: List[JoinStepStats] = field(default_factory=list)
    op_stats: List[OpStats] = field(default_factory=list)
    base_rows: Dict[str, int] = field(default_factory=dict)
    filtered_rows: Dict[str, int] = field(default_factory=dict)
    reduced_rows: Dict[str, int] = field(default_factory=dict)
    output_rows: int = 0
    bloom_bytes: int = 0
    abstract_cost: float = 0.0
    #: Simulated multi-threaded cost accumulated by the chunked backend.
    simulated_parallel_cost: float = 0.0
    #: High-water mark of memory reserved with the MemoryGovernor (bytes).
    peak_memory_bytes: int = 0
    #: Governor-ordered spills during execution (count / bytes written).
    spill_events: int = 0
    spilled_bytes: int = 0
    #: Bytes re-read because a probed reservation had been spilled.
    reloaded_bytes: int = 0
    #: Query-lifetime hash-cache column passes reused / computed.
    hash_reuse_hits: int = 0
    hash_reuse_misses: int = 0
    #: Rows carried through selection vectors instead of materialized keys.
    selection_vector_rows: int = 0
    #: Cross-query artifact-cache hits / misses during this execution.
    artifact_cache_hits: int = 0
    artifact_cache_misses: int = 0
    #: Transfer steps the adaptive controller cancelled this execution.
    adaptive_steps_skipped: int = 0
    #: Filter bytes NDV-based sizing saved against row-count sizing.
    adaptive_filter_bytes_saved: int = 0
    #: Transfer steps downgraded to exact bitmap semi-joins.
    adaptive_exact_downgrades: int = 0
    #: Base-filter predicates evaluated by a fused conjunction kernel, and
    #: the rows those kernels short-circuited past later conjuncts.
    fused_exprs: int = 0
    fused_rows_short_circuited: int = 0
    #: Bytes placed in (or resolved from) shared-memory segments by the
    #: process backend during this execution.
    shm_bytes_mapped: int = 0
    #: Zone-map blocks skipped / covered across every base filter this
    #: execution evaluated with encodings enabled.
    zone_blocks_skipped: int = 0
    zone_blocks_total: int = 0
    #: Encoded bytes behind the columns execution touched through the
    #: encoding layer (what the MemoryGovernor and shm arena were charged
    #: instead of the flat ``int64`` bytes).
    encoded_bytes_touched: int = 0
    #: Degradation-ladder rungs this execution took, in first-occurrence
    #: order — e.g. ``"backend:process->parallel"`` (pool unavailable),
    #: ``"column.decode:title.production_year->raw"`` (decode fault),
    #: ``"governor:spill-retry"`` (reservation retried after spilling),
    #: ``"process:inline-fallback"`` (morsels finished in the parent).
    #: Each distinct rung appears once; per-op repeats bump
    #: ``degradation_counts`` instead (see :meth:`record_degradation`).
    degradations: List[str] = field(default_factory=list)
    #: Occurrences per degradation rung (a rung that fired on five ops
    #: counts 5 here but appears once in ``degradations``).
    degradation_counts: Dict[str, int] = field(default_factory=dict)
    #: Fault-recovery counters of the process backend: worker deaths seen,
    #: morsel retry rounds after a respawn, morsels completed inline, and
    #: spill writes that failed and left their victim resident.
    worker_crashes: int = 0
    tasks_retried: int = 0
    inline_fallback_morsels: int = 0
    spill_failures: int = 0

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def total_intermediate_rows(self) -> int:
        """Sum of output sizes of every binary join except the final one.

        This is the quantity the Yannakakis bound constrains
        (Σ intermediates ≤ n · |OUT| on a fully reduced instance) and what
        Figure 11 tabulates for JOB 2a.
        """
        if not self.join_steps:
            return 0
        return sum(step.output_rows for step in self.join_steps[:-1])

    @property
    def total_join_output_rows(self) -> int:
        """Sum of output sizes of every binary join (including the final one)."""
        return sum(step.output_rows for step in self.join_steps)

    @property
    def total_tuples_processed(self) -> int:
        """Rows flowing through joins: probe + build + output of every join.

        A deterministic, order-sensitive proxy for execution work used as
        the robustness cost metric alongside wall time.
        """
        return sum(s.probe_rows + s.build_rows + s.output_rows for s in self.join_steps)

    @property
    def total_transfer_rows_eliminated(self) -> int:
        """Rows removed across all transfer-phase steps."""
        return sum(s.rows_eliminated for s in self.transfer_steps)

    @property
    def elapsed_seconds(self) -> float:
        """Total measured wall time (plus simulated I/O, if any)."""
        return self.timings.total

    def op_seconds_by_kind(self) -> Dict[str, float]:
        """Wall seconds per physical-op kind (the per-op timing breakdown)."""
        totals: Dict[str, float] = {}
        for op in self.op_stats:
            totals[op.kind] = totals.get(op.kind, 0.0) + op.seconds
        return totals

    def op_trace(self) -> str:
        """Uniform per-op execution trace shared by every execution mode."""
        if not self.op_stats:
            return "(no physical-plan trace recorded)"
        lines = [
            f"{'#':>3} {'op':<22} {'rows in':>10} {'rows out':>10} {'seconds':>10} "
            f"{'morsels':>8}  detail"
        ]
        for op in self.op_stats:
            if op.adaptive_skipped:
                marker = " [adaptive skip]"
            elif op.skipped:
                marker = " [skipped]"
            else:
                marker = ""
            if op.spilled_bytes:
                marker += f" [spilled {op.spilled_bytes}B]"
            if op.hash_hits or op.hash_misses:
                marker += f" [hash {op.hash_hits}h/{op.hash_misses}m]"
            if op.selvec_rows:
                marker += f" [selvec {op.selvec_rows}r]"
            if op.artifact_hits:
                marker += " [artifact hit]"
            if op.downgraded_exact:
                marker += " [exact bitmap]"
            if op.filter_bytes_saved:
                marker += f" [saved {op.filter_bytes_saved}B]"
            if op.fused_expr:
                marker += f" [fused -{op.fused_rows_short_circuited}r]"
            if op.shm_bytes:
                marker += f" [shm {op.shm_bytes}B]"
            if op.blocks_total:
                marker += f" [zm skip {op.blocks_skipped}/{op.blocks_total}]"
            if op.encoded_bytes:
                marker += f" [enc {op.encoded_bytes}B]"
            if op.worker_crashes:
                marker += f" [crashed {op.worker_crashes}w/{op.tasks_retried}r]"
            if op.inline_morsels:
                marker += f" [inline {op.inline_morsels}m]"
            if op.degraded:
                marker += f" [degraded {op.degraded}]"
            lines.append(
                f"{op.index:>3} {op.kind:<22} {op.rows_in:>10} {op.rows_out:>10} "
                f"{op.seconds:>10.6f} {op.morsels:>8}  {op.detail}{marker}"
            )
        return "\n".join(lines)

    def cache_summary(self) -> str:
        """One-line summary of the hash / selection-vector / artifact caching.

        Empty when the execution recorded no cache activity (caches off or
        nothing cacheable), so callers can append it conditionally.
        """
        parts = []
        if self.hash_reuse_hits or self.hash_reuse_misses:
            parts.append(f"hash passes {self.hash_reuse_hits}h/{self.hash_reuse_misses}m")
        if self.selection_vector_rows:
            parts.append(f"selection-vector rows {self.selection_vector_rows}")
        if self.artifact_cache_hits or self.artifact_cache_misses:
            parts.append(
                f"artifact cache {self.artifact_cache_hits}h/{self.artifact_cache_misses}m"
            )
        return "cache: " + ", ".join(parts) if parts else ""

    def adaptive_summary(self) -> str:
        """One-line summary of the adaptive transfer controller's decisions.

        Empty when adaptive execution was off or made no decision, so
        callers can append it conditionally.
        """
        parts = []
        if self.adaptive_steps_skipped:
            parts.append(f"skipped {self.adaptive_steps_skipped} step(s)")
        if self.adaptive_exact_downgrades:
            parts.append(f"{self.adaptive_exact_downgrades} exact-bitmap downgrade(s)")
        if self.adaptive_filter_bytes_saved:
            parts.append(f"saved {self.adaptive_filter_bytes_saved} filter bytes")
        return "adaptive: " + ", ".join(parts) if parts else ""

    def runtime_summary(self) -> str:
        """One-line summary of fused-kernel and shared-memory activity.

        Empty when the execution used neither fused filters nor the process
        backend, so callers can append it conditionally.
        """
        parts = []
        if self.fused_exprs:
            parts.append(
                f"fused {self.fused_exprs} filter(s) "
                f"(-{self.fused_rows_short_circuited} rows short-circuited)"
            )
        if self.shm_bytes_mapped:
            parts.append(f"shm mapped {self.shm_bytes_mapped}B")
        if self.zone_blocks_total:
            parts.append(
                f"zone maps skipped {self.zone_blocks_skipped}/{self.zone_blocks_total} blocks"
            )
        if self.encoded_bytes_touched:
            parts.append(f"encoded bytes {self.encoded_bytes_touched}B")
        return "runtime: " + ", ".join(parts) if parts else ""

    def record_degradation(self, rung: str) -> None:
        """Record a degradation rung exactly once in the merged list.

        Degradation events fire per op (inline-fallback morsels) or per
        reservation (``governor:spill-retry``): naive appending repeated
        the same rung once per event, double-counting it in merged
        summaries.  Every event bumps ``degradation_counts``; the
        ``degradations`` list keeps one entry per distinct rung in
        first-occurrence order.
        """
        self.degradation_counts[rung] = self.degradation_counts.get(rung, 0) + 1
        if rung not in self.degradations:
            self.degradations.append(rung)

    def degradation_summary(self) -> str:
        """One-line summary of fault recovery and degradation-ladder rungs.

        Empty on a fault-free, undegraded run, so callers can append it
        conditionally.
        """
        parts = []
        if self.degradations:
            rendered = []
            for rung in self.degradations:
                count = self.degradation_counts.get(rung, 1)
                rendered.append(f"{rung} x{count}" if count > 1 else rung)
            parts.append("; ".join(rendered))
        if self.worker_crashes:
            parts.append(
                f"{self.worker_crashes} worker crash(es), "
                f"{self.tasks_retried} retry round(s)"
            )
        if self.inline_fallback_morsels:
            parts.append(f"{self.inline_fallback_morsels} morsel(s) finished inline")
        if self.spill_failures:
            parts.append(f"{self.spill_failures} failed spill write(s)")
        return "degraded: " + ", ".join(parts) if parts else ""

    def execution_summary(self) -> str:
        """Combined one-line cache + adaptive + runtime + degradation summary.

        This is what :func:`repro.bench.reporting.format_op_traces` appends
        under each mode's per-op trace; empty when nothing was recorded.
        """
        parts = [
            part
            for part in (
                self.cache_summary(),
                self.adaptive_summary(),
                self.runtime_summary(),
                self.degradation_summary(),
            )
            if part
        ]
        return " | ".join(parts)

    def cost(self, metric: str = "tuples") -> float:
        """Return the execution cost under the requested metric.

        ``"tuples"``  -> total tuples processed by joins + transfer work,
        ``"intermediate"`` -> total intermediate join output rows,
        ``"time"``    -> wall-clock (+ simulated I/O) seconds,
        ``"abstract"`` -> the abstract cost-model units accumulated.
        """
        if metric == "tuples":
            transfer_work = sum(s.rows_before for s in self.transfer_steps if not s.skipped)
            return float(self.total_tuples_processed + transfer_work)
        if metric == "intermediate":
            return float(self.total_intermediate_rows)
        if metric == "time":
            return self.elapsed_seconds
        if metric == "abstract":
            return self.abstract_cost
        raise ValueError(f"unknown cost metric {metric!r}")

    # ------------------------------------------------------------------
    # Timing helpers
    # ------------------------------------------------------------------
    @contextmanager
    def time_phase(self, phase: str) -> Iterator[None]:
        """Context manager adding elapsed wall time to a phase counter."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            setattr(self.timings, phase, getattr(self.timings, phase) + elapsed)

    def summary(self) -> str:
        """Multi-line human readable summary used by examples and reports."""
        lines = [
            f"query={self.query_name} mode={self.mode}",
            f"  output rows          : {self.output_rows}",
            f"  intermediate rows    : {self.total_intermediate_rows}",
            f"  tuples processed     : {self.total_tuples_processed}",
            f"  elapsed seconds      : {self.elapsed_seconds:.6f}",
            f"  transfer steps       : {len(self.transfer_steps)}"
            f" (eliminated {self.total_transfer_rows_eliminated} rows)",
            f"  joins                : {len(self.join_steps)}",
        ]
        return "\n".join(lines)


def merge_reduced_rows(stats: ExecutionStats) -> Dict[str, int]:
    """Final per-relation cardinalities after the transfer phase.

    Derived from the last transfer step touching each relation, falling back
    to the filtered base cardinality when a relation was never reduced.
    """
    result = dict(stats.filtered_rows)
    for step in stats.transfer_steps:
        if not step.skipped:
            result[step.target] = step.rows_after
    return result
