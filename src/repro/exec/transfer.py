"""Transfer-phase façade: compiles a transfer schedule onto the shared op set.

Each :class:`~repro.core.transfer_schedule.TransferStep` ``target ⋉ source``
compiles to physical ops of the unified :class:`~repro.plan.physical.PhysicalPlan`
IR:

* with Bloom filters (Predicate Transfer) — a ``BloomBuild`` (build a filter
  over ``source``'s current values of the step's join attributes; the source
  may already have been reduced by earlier steps, so the filter reflects the
  reduced content) followed by a ``BloomProbe`` (drop ``target`` rows whose
  probe misses);
* with ``use_bloom=False`` — a single exact ``SemiJoinReduce`` (classic
  Yannakakis), useful for differential testing: on an acyclic query the
  exact reduction is the ground truth that the Bloom variant
  over-approximates (false positives only, never false negatives).

The compiled ops run on the shared
:class:`~repro.exec.pipeline.PipelineExecutor`, which also implements the
§4.3 pruning optimizations:

* a step whose source is the unfiltered primary-key side of a declared
  PK-FK join is skipped (the semi-join cannot eliminate anything) — the
  PK-FK half of the check is compiled in as a static hint;
* the caller can drop the backward pass entirely when the join order is
  aligned with the transfer order (see the engine module).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.bloom.bloom_filter import DEFAULT_FPR
from repro.bloom.registry import BloomFilterRegistry
from repro.core.join_graph import JoinGraph
from repro.core.transfer_schedule import TransferSchedule
from repro.exec.pipeline import ExecutionBackend, PipelineExecutor, PipelineOptions
from repro.exec.relation import BoundRelation
from repro.exec.statistics import ExecutionStats
from repro.plan.physical import PhysicalOp, PhysicalPlan, compile_transfer_ops


@dataclass(frozen=True)
class TransferOptions:
    """Configuration of the transfer phase.

    Attributes
    ----------
    use_bloom:
        Use Bloom filters (Predicate Transfer) instead of exact semi-joins
        (Yannakakis).
    fpr:
        Target false-positive rate of each Bloom filter.
    prune_trivial_semijoins:
        Skip steps whose source is an unfiltered PK side of a PK-FK join
        (§4.3 of the paper).
    """

    use_bloom: bool = True
    fpr: float = DEFAULT_FPR
    prune_trivial_semijoins: bool = True


class TransferExecutor:
    """Compiles transfer schedules to physical ops and runs them on the pipeline.

    Kept as the transfer phase's public façade: ``run`` still reduces the
    bound relations in place and records the same per-step statistics as the
    historical monolithic executor, but the actual execution goes through
    the shared :class:`~repro.exec.pipeline.PipelineExecutor`.
    """

    def __init__(
        self,
        graph: JoinGraph,
        relations: Dict[str, BoundRelation],
        options: Optional[TransferOptions] = None,
        registry: Optional[BloomFilterRegistry] = None,
        backend: Optional[ExecutionBackend] = None,
    ) -> None:
        self.graph = graph
        self.relations = relations
        self.options = options or TransferOptions()
        self.registry = registry or BloomFilterRegistry()
        self.backend = backend

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def compile(self, schedule: TransferSchedule) -> Tuple[PhysicalOp, ...]:
        """Compile ``schedule`` onto the shared physical op set."""
        tables = {alias: relation.table for alias, relation in self.relations.items()}
        return tuple(
            compile_transfer_ops(
                schedule, self.graph, tables, use_bloom=self.options.use_bloom
            )
        )

    def run(self, schedule: TransferSchedule, stats: ExecutionStats) -> None:
        """Execute every step of ``schedule``, recording statistics into ``stats``."""
        ops = self.compile(schedule)
        plan = PhysicalPlan(
            query_name=self.graph.query.name,
            mode="transfer",
            ops=ops,
        )
        executor = PipelineExecutor(
            self.graph.query,
            self.graph,
            options=PipelineOptions(
                transfer_fpr=self.options.fpr,
                prune_trivial_semijoins=self.options.prune_trivial_semijoins,
            ),
            backend=self.backend,
            registry=self.registry,
        )
        executor.run(plan, stats, relations=self.relations)
        for alias, relation in self.relations.items():
            stats.reduced_rows[alias] = relation.num_rows
