"""Transfer-phase executor: runs a transfer schedule over bound relations.

Each :class:`~repro.core.transfer_schedule.TransferStep` ``target ⋉ source``
is executed as:

1. ``CreateBF`` — build a Bloom filter over ``source``'s current values of
   the step's join attributes (the source may already have been reduced by
   earlier steps, so the filter reflects the reduced content);
2. ``ProbeBF`` — probe the filter with ``target``'s values and drop the rows
   whose probe misses.

With ``use_bloom=False`` the same steps are executed as *exact* semi-joins
(classic Yannakakis), which is useful for differential testing: on an
acyclic query the exact reduction is the ground truth that the Bloom variant
over-approximates (false positives only, never false negatives).

The §4.3 pruning optimizations are implemented here:

* a step whose source is the unfiltered primary-key side of a declared
  PK-FK join is skipped (the semi-join cannot eliminate anything);
* the caller can drop the backward pass entirely when the join order is
  aligned with the transfer order (see the engine module).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.bloom.bloom_filter import DEFAULT_FPR, BloomFilter
from repro.bloom.registry import BloomFilterRegistry, FilterKey
from repro.core.join_graph import JoinGraph
from repro.core.transfer_schedule import TransferSchedule, TransferStep
from repro.errors import ExecutionError
from repro.exec.kernels import bloom_probe_cost, combine_key_columns_pair, semi_join_mask
from repro.exec.relation import BoundRelation
from repro.exec.statistics import ExecutionStats, TransferStepStats


@dataclass(frozen=True)
class TransferOptions:
    """Configuration of the transfer phase.

    Attributes
    ----------
    use_bloom:
        Use Bloom filters (Predicate Transfer) instead of exact semi-joins
        (Yannakakis).
    fpr:
        Target false-positive rate of each Bloom filter.
    prune_trivial_semijoins:
        Skip steps whose source is an unfiltered PK side of a PK-FK join
        (§4.3 of the paper).
    """

    use_bloom: bool = True
    fpr: float = DEFAULT_FPR
    prune_trivial_semijoins: bool = True


class TransferExecutor:
    """Executes a transfer schedule, reducing bound relations in place."""

    def __init__(
        self,
        graph: JoinGraph,
        relations: Dict[str, BoundRelation],
        options: Optional[TransferOptions] = None,
        registry: Optional[BloomFilterRegistry] = None,
    ) -> None:
        self.graph = graph
        self.relations = relations
        self.options = options or TransferOptions()
        self.registry = registry or BloomFilterRegistry()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, schedule: TransferSchedule, stats: ExecutionStats) -> None:
        """Execute every step of ``schedule``, recording statistics into ``stats``."""
        filtered_since_start = self._initially_filtered()
        with stats.time_phase("transfer"):
            for step in schedule:
                step_stats = self._execute_step(step, filtered_since_start)
                stats.transfer_steps.append(step_stats)
                stats.bloom_bytes += step_stats.filter_bytes
                stats.abstract_cost += bloom_probe_cost(
                    step_stats.rows_before if not step_stats.skipped else 0,
                    max(step_stats.filter_bytes, 1),
                )
                if not step_stats.skipped and step_stats.rows_after < step_stats.rows_before:
                    filtered_since_start.add(step.target)
        for alias, relation in self.relations.items():
            stats.reduced_rows[alias] = relation.num_rows

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _initially_filtered(self) -> set[str]:
        """Relations that enter the transfer phase already filtered.

        A relation counts as filtered when its base predicate eliminated at
        least one row — this is what makes its semi-join against a PK parent
        potentially non-trivial.
        """
        filtered: set[str] = set()
        for ref in self.graph.query.relations:
            relation = self.relations[ref.alias]
            if ref.filter is not None and relation.num_rows < relation.table.num_rows:
                filtered.add(ref.alias)
        return filtered

    def _execute_step(self, step: TransferStep, filtered: set[str]) -> TransferStepStats:
        source = self.relations[step.source]
        target = self.relations[step.target]
        rows_before = target.num_rows

        if self.options.prune_trivial_semijoins and self._is_trivial(step, filtered):
            return TransferStepStats(
                source=step.source,
                target=step.target,
                pass_=step.pass_.value,
                rows_before=rows_before,
                rows_after=rows_before,
                skipped=True,
            )

        source_keys, target_keys = self._step_keys(step, source, target)
        if self.options.use_bloom:
            bloom = BloomFilter(expected_keys=source.num_rows, fpr=self.options.fpr)
            bloom.insert(source_keys)
            key = FilterKey(
                relation=step.source,
                attribute="+".join(step.attributes),
                pass_id=step.pass_.value,
            )
            self.registry.publish(key, bloom, replace=True)
            mask = bloom.probe(target_keys)
            filter_bytes = bloom.size_bytes
        else:
            mask = semi_join_mask(target_keys, source_keys)
            filter_bytes = int(source_keys.nbytes)
        target.keep(mask)
        return TransferStepStats(
            source=step.source,
            target=step.target,
            pass_=step.pass_.value,
            rows_before=rows_before,
            rows_after=target.num_rows,
            filter_bytes=filter_bytes,
            build_rows=source.num_rows,
        )

    def _step_keys(
        self,
        step: TransferStep,
        source: BoundRelation,
        target: BoundRelation,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Resolve the step's attribute classes to concrete key arrays."""
        source_columns = []
        target_columns = []
        for attribute in step.attributes:
            attr_class = self.graph.attribute_classes[attribute]
            source_columns.append(source.key_values(attr_class.column_of(step.source)))
            target_columns.append(target.key_values(attr_class.column_of(step.target)))
        if not source_columns:
            raise ExecutionError(f"transfer step {step} has no join attributes")
        return combine_key_columns_pair(source_columns, target_columns)

    def _is_trivial(self, step: TransferStep, filtered: set[str]) -> bool:
        """§4.3 pruning: the source is an unfiltered PK side of a PK-FK join."""
        if step.source in filtered:
            return False
        if len(step.attributes) != 1:
            return False
        attr_class = self.graph.attribute_classes[step.attributes[0]]
        source = self.relations[step.source]
        target = self.relations[step.target]
        source_column = attr_class.column_of(step.source)
        target_column = attr_class.column_of(step.target)
        if not source.table.is_primary_key(source_column):
            return False
        # The target side must be a declared foreign key referencing the source table.
        for fk in target.table.foreign_keys:
            if fk.column == target_column and fk.ref_table == source.table.name:
                return True
        return False
