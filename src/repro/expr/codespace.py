"""Code-space predicate compilation and zone-map skip-scan evaluation.

When block encodings are enabled (``ExecutionConfig.encodings``), base
filters are compiled once per query into *code-space* kernels:

* String predicates never materialize strings.  Ordered comparisons on a
  **sorted** dictionary (the invariant of ``Column.from_values`` /
  ``concat``) become integer threshold tests against ``bisect`` of the
  literal; unsorted dictionaries (possible via ``Column.from_codes``)
  fall back to a boolean lookup table built by evaluating the predicate
  once per *distinct* value — the same trick ``StringPredicate`` already
  uses, extended here to comparisons, BETWEEN and IN.
* Every compiled leaf also carries a zone-map pruning rule: a range test,
  a domain lookup (answered from a prefix sum of the lookup table), or a
  not-this-value test.  Pruning is conservative-exact — a block is only
  skipped when *no* row in it can match — so the produced mask is
  bit-identical to ``Expression.evaluate``.

The module handles conjunctions of the same leaf predicates the fused
filter kernel supports (:data:`repro.expr.fusion._SUPPORTED_LEAVES`);
anything else returns ``None`` and callers fall back to plain
evaluation.  :func:`block_selection` exposes the pruning alone so the
fused kernel can compose with it (its progressive selection vector then
starts from the surviving blocks), and :func:`rows_upper_bound` feeds the
optimizer's cardinality estimator a hard bound on matching rows.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.expr.expressions import (
    _COMPARATORS,
    Between,
    Comparison,
    Expression,
    InList,
    IsNull,
    StringPredicate,
)
from repro.expr.fusion import _flatten_conjuncts
from repro.storage.datatypes import DataType
from repro.storage.zonemap import BlockSelection, ZoneMap

_I64_MIN = np.iinfo(np.int64).min
_I64_MAX = np.iinfo(np.int64).max

#: A pruning rule: zone map in, per-block survivor mask out.
_PruneFn = Callable[[ZoneMap], np.ndarray]

#: A code-space row kernel: ``rows=None`` evaluates the whole column,
#: otherwise only the gathered candidate rows.
_RowKernel = Callable[[Optional[np.ndarray]], np.ndarray]


@dataclass(frozen=True)
class CompiledLeaf:
    """One leaf predicate compiled to code space."""

    column: str
    kernel: _RowKernel
    prune: _PruneFn


@dataclass(frozen=True)
class CodeSpaceResult:
    """Result of a zone-map-assisted code-space filter evaluation."""

    mask: np.ndarray
    blocks_skipped: int
    blocks_total: int
    rows_skipped: int


def _prune_all(zone_map: ZoneMap) -> np.ndarray:
    return np.ones(zone_map.num_blocks, dtype=bool)


def _prune_none(zone_map: ZoneMap) -> np.ndarray:
    return np.zeros(zone_map.num_blocks, dtype=bool)


def _is_numeric(value) -> bool:
    return isinstance(value, (int, float, np.integer, np.floating)) and not isinstance(value, bool)


def _prune_range(lo, hi) -> _PruneFn:
    """Range pruning; degrades to no pruning on non-numeric bounds."""
    if not (_is_numeric(lo) and _is_numeric(hi)):
        return _prune_all
    return lambda zone_map: zone_map.survivors_range(lo, hi)


def _prune_domain(domain_mask: np.ndarray) -> _PruneFn:
    return lambda zone_map: zone_map.survivors_domain(domain_mask)


def _prune_not_value(value) -> _PruneFn:
    if not _is_numeric(value):
        return _prune_all
    return lambda zone_map: zone_map.survivors_not_value(value)


def _dictionary_sorted(dictionary) -> bool:
    return all(dictionary[i] <= dictionary[i + 1] for i in range(len(dictionary) - 1))


def _strict_bound(value, delta: int):
    """Tighten a strict comparison bound for integer literals; else keep it.

    Keeping the literal itself as the inclusive bound is conservative
    (never skips a matching block) for any real-valued literal.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, np.integer)):
        return int(value) + delta
    return value


def _threshold_kernel(data: np.ndarray, op: str, threshold: int) -> _RowKernel:
    """``codes OP threshold`` over gathered rows (ordered sorted-dict case)."""
    compare = _COMPARATORS[op]

    def kernel(rows: Optional[np.ndarray]) -> np.ndarray:
        values = data if rows is None else data[rows]
        return compare(values, threshold)

    return kernel


def _domain_kernel(data: np.ndarray, domain_mask: np.ndarray) -> _RowKernel:
    def kernel(rows: Optional[np.ndarray]) -> np.ndarray:
        codes = data if rows is None else data[rows]
        return domain_mask[codes]

    return kernel


def compile_leaf(expr: Expression, table) -> Optional[CompiledLeaf]:
    """Compile one supported leaf predicate to code space, or ``None``."""
    if isinstance(expr, Comparison):
        col = table.column(expr.column)
        data = col.data
        if col.dtype is DataType.STRING and expr.op not in ("==", "!="):
            dictionary = col.dictionary
            literal = str(expr.value)
            if _dictionary_sorted(dictionary):
                left = bisect_left(dictionary, literal)
                right = bisect_right(dictionary, literal)
                if expr.op == "<":
                    return CompiledLeaf(
                        expr.column,
                        _threshold_kernel(data, "<", left),
                        _prune_range(_I64_MIN, left - 1),
                    )
                if expr.op == "<=":
                    return CompiledLeaf(
                        expr.column,
                        _threshold_kernel(data, "<", right),
                        _prune_range(_I64_MIN, right - 1),
                    )
                if expr.op == ">":
                    return CompiledLeaf(
                        expr.column,
                        _threshold_kernel(data, ">=", right),
                        _prune_range(right, _I64_MAX),
                    )
                return CompiledLeaf(
                    expr.column,
                    _threshold_kernel(data, ">=", left),
                    _prune_range(left, _I64_MAX),
                )
            compare = _COMPARATORS[expr.op]
            domain_mask = np.asarray([bool(compare(v, literal)) for v in dictionary])
            return CompiledLeaf(
                expr.column, _domain_kernel(data, domain_mask), _prune_domain(domain_mask)
            )
        rhs = col.encode_literal(expr.value)
        compare = _COMPARATORS[expr.op]

        def kernel(rows: Optional[np.ndarray]) -> np.ndarray:
            values = data if rows is None else data[rows]
            return compare(values, rhs)

        if expr.op == "==":
            if col.dtype is DataType.STRING and rhs < 0:
                prune: _PruneFn = _prune_none
            else:
                prune = _prune_range(rhs, rhs)
        elif expr.op == "!=":
            prune = _prune_all if (col.dtype is DataType.STRING and rhs < 0) else _prune_not_value(rhs)
        elif expr.op == "<":
            prune = _prune_range(_I64_MIN, _strict_bound(rhs, -1))
        elif expr.op == "<=":
            prune = _prune_range(_I64_MIN, rhs)
        elif expr.op == ">":
            prune = _prune_range(_strict_bound(rhs, 1), _I64_MAX)
        else:  # ">="
            prune = _prune_range(rhs, _I64_MAX)
        return CompiledLeaf(expr.column, kernel, prune)

    if isinstance(expr, Between):
        col = table.column(expr.column)
        data = col.data
        if col.dtype is DataType.STRING:
            dictionary = col.dictionary
            low, high = str(expr.low), str(expr.high)
            if _dictionary_sorted(dictionary):
                lo_code = bisect_left(dictionary, low)
                hi_code = bisect_right(dictionary, high) - 1

                def kernel(rows: Optional[np.ndarray]) -> np.ndarray:
                    codes = data if rows is None else data[rows]
                    return (codes >= lo_code) & (codes <= hi_code)

                return CompiledLeaf(expr.column, kernel, _prune_range(lo_code, hi_code))
            domain_mask = np.asarray([low <= v <= high for v in dictionary])
            return CompiledLeaf(
                expr.column, _domain_kernel(data, domain_mask), _prune_domain(domain_mask)
            )
        low, high = expr.low, expr.high

        def kernel(rows: Optional[np.ndarray]) -> np.ndarray:
            values = data if rows is None else data[rows]
            return (values >= low) & (values <= high)

        return CompiledLeaf(expr.column, kernel, _prune_range(low, high))

    if isinstance(expr, InList):
        col = table.column(expr.column)
        data = col.data
        if not expr.values:
            return CompiledLeaf(
                expr.column,
                lambda rows: np.zeros(
                    table.num_rows if rows is None else int(rows.shape[0]), dtype=bool
                ),
                _prune_none,
            )
        encoded = np.asarray([col.encode_literal(v) for v in expr.values])
        if col.dtype is DataType.STRING:
            domain_mask = np.zeros(len(col.dictionary), dtype=bool)
            present = encoded[encoded >= 0].astype(np.int64)
            if present.shape[0] == 0:
                return CompiledLeaf(
                    expr.column,
                    lambda rows: np.zeros(
                        table.num_rows if rows is None else int(rows.shape[0]), dtype=bool
                    ),
                    _prune_none,
                )
            domain_mask[present] = True
            return CompiledLeaf(
                expr.column, _domain_kernel(data, domain_mask), _prune_domain(domain_mask)
            )
        from repro.exec.kernels import semi_join_mask

        def kernel(rows: Optional[np.ndarray]) -> np.ndarray:
            values = data if rows is None else data[rows]
            return semi_join_mask(values, encoded)

        if np.issubdtype(encoded.dtype, np.number):
            prune = _prune_range(int(encoded.min()), int(encoded.max()))
        else:
            prune = _prune_all
        return CompiledLeaf(expr.column, kernel, prune)

    if isinstance(expr, StringPredicate):
        col = table.column(expr.column)
        if col.dtype is not DataType.STRING:
            return None  # fall back; Expression.evaluate raises the canonical error
        if expr.mode == "prefix":
            domain_mask = np.asarray([v.startswith(expr.pattern) for v in col.dictionary])
        elif expr.mode == "suffix":
            domain_mask = np.asarray([v.endswith(expr.pattern) for v in col.dictionary])
        else:
            domain_mask = np.asarray([expr.pattern in v for v in col.dictionary])
        return CompiledLeaf(
            expr.column, _domain_kernel(col.data, domain_mask), _prune_domain(domain_mask)
        )

    if isinstance(expr, IsNull):
        table.column(expr.column)  # existence check, as IsNull.evaluate does
        if expr.negated:
            return CompiledLeaf(
                expr.column,
                lambda rows: np.ones(
                    table.num_rows if rows is None else int(rows.shape[0]), dtype=bool
                ),
                _prune_all,
            )
        return CompiledLeaf(
            expr.column,
            lambda rows: np.zeros(
                table.num_rows if rows is None else int(rows.shape[0]), dtype=bool
            ),
            _prune_none,
        )

    return None


def _compile_conjunction(expr: Expression, table) -> Optional[List[CompiledLeaf]]:
    conjuncts = _flatten_conjuncts(expr)
    if conjuncts is None or not conjuncts:
        return None
    compiled: List[CompiledLeaf] = []
    for conjunct in conjuncts:
        leaf = compile_leaf(conjunct, table)
        if leaf is None:
            return None
        compiled.append(leaf)
    return compiled


def _combine_selection(leaves: List[CompiledLeaf], table, store) -> Optional[BlockSelection]:
    """AND every leaf's zone-map pruning into one block selection."""
    survivors: Optional[np.ndarray] = None
    reference: Optional[ZoneMap] = None
    for leaf in leaves:
        zone_map = store.zone_map(table, leaf.column)
        if zone_map is None:
            continue
        pruned = leaf.prune(zone_map)
        if survivors is None:
            survivors, reference = pruned, zone_map
        else:
            survivors = survivors & pruned
    if survivors is None or reference is None:
        return None
    return BlockSelection(zone_map=reference, survivors=survivors)


def block_selection(expr: Expression, table, store) -> Optional[BlockSelection]:
    """Zone-map pruning for a conjunction of supported leaves, or ``None``.

    The returned selection is safe to feed to
    :meth:`repro.expr.fusion.FusedConjunction.evaluate` compiled from the
    *same* expression: rows outside surviving blocks fail at least one
    conjunct.
    """
    leaves = _compile_conjunction(expr, table)
    if leaves is None:
        return None
    return _combine_selection(leaves, table, store)


def evaluate(expr: Expression, table, store) -> Optional[CodeSpaceResult]:
    """Evaluate a filter in code space with zone-map block skipping.

    Returns ``None`` when the expression shape is unsupported (callers
    fall back to ``Expression.evaluate``); otherwise the mask is
    bit-identical to that fallback.
    """
    leaves = _compile_conjunction(expr, table)
    if leaves is None:
        return None
    # The ``column.decode`` fault site: reading the encoded representation
    # failed — callers degrade to raw ``Expression.evaluate`` (bit-identical
    # mask, no block skipping).  Imported lazily to stay off the package
    # initializer path.
    from repro.exec import faults

    faults.fire("column.decode", "injected encoded-filter read failure")
    num_rows = table.num_rows
    selection = _combine_selection(leaves, table, store)
    if selection is None:
        candidates = np.nonzero(np.asarray(leaves[0].kernel(None), dtype=bool))[0]
        remaining = leaves[1:]
        blocks_skipped = blocks_total = rows_skipped = 0
    else:
        initial = selection.candidate_rows()
        blocks_skipped = selection.blocks_skipped
        blocks_total = selection.num_blocks
        rows_skipped = selection.rows_skipped
        first = np.asarray(leaves[0].kernel(initial), dtype=bool)
        candidates = initial[first]
        remaining = leaves[1:]
    for leaf in remaining:
        if candidates.shape[0] == 0:
            break
        sub_mask = np.asarray(leaf.kernel(candidates), dtype=bool)
        candidates = candidates[sub_mask]
    mask = np.zeros(num_rows, dtype=bool)
    mask[candidates] = True
    return CodeSpaceResult(
        mask=mask,
        blocks_skipped=blocks_skipped,
        blocks_total=blocks_total,
        rows_skipped=rows_skipped,
    )


def encoded_bytes_touched(expr: Expression, table, store) -> int:
    """Encoded bytes backing the columns a conjunction touches (0 when raw).

    Feeds the ``[enc ..B]`` op-trace marker: how many encoded buffer bytes
    the filter read in place of the columns' raw ``int64`` arrays.
    """
    conjuncts = _flatten_conjuncts(expr)
    if conjuncts is None:
        return 0
    total = 0
    seen = set()
    for conjunct in conjuncts:
        column = getattr(conjunct, "column", None)
        if column is None or column in seen:
            continue
        seen.add(column)
        encoded = store.encoded(table, column)
        if encoded is not None:
            total += encoded.encoded_bytes
    return total


def rows_upper_bound(expr: Expression, table, store) -> Optional[int]:
    """A hard upper bound on rows matching ``expr``, from zone maps alone.

    ``0`` means the predicate provably matches nothing — every block's
    ``[min, max]`` interval misses it.  ``None`` means no bound is
    available (unsupported expression shape or no zone-mappable column).
    """
    selection = block_selection(expr, table, store)
    if selection is None:
        return None
    return selection.rows_selected
