"""Scalar expressions evaluated over tables.

Expressions form a small tree language used for base-table filter predicates
and (in a limited form) aggregate inputs.  Every expression evaluates
vectorized against a :class:`~repro.storage.table.Table` and returns a NumPy
array (boolean arrays for predicates).

The supported surface is deliberately the subset that analytical benchmark
filters need: column references, literals, comparisons, BETWEEN, IN,
LIKE-prefix/contains on strings, arithmetic, and AND/OR/NOT combinations.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.errors import ExecutionError
from repro.storage.datatypes import DataType
from repro.storage.table import Table


class Expression(abc.ABC):
    """Base class for all scalar expressions."""

    @abc.abstractmethod
    def evaluate(self, table: Table) -> np.ndarray:
        """Evaluate the expression against every row of ``table``."""

    @abc.abstractmethod
    def referenced_columns(self) -> frozenset[str]:
        """Names of the columns this expression reads."""

    # Convenience combinators -------------------------------------------------
    def __and__(self, other: "Expression") -> "And":
        return And((self, other))

    def __or__(self, other: "Expression") -> "Or":
        return Or((self, other))

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """Reference to a column of the table being evaluated."""

    name: str

    def evaluate(self, table: Table) -> np.ndarray:
        return table.column(self.name).data

    def referenced_columns(self) -> frozenset[str]:
        return frozenset({self.name})

    def __repr__(self) -> str:
        return f"col({self.name})"


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: Any

    def evaluate(self, table: Table) -> np.ndarray:
        return np.full(table.num_rows, self.value)

    def referenced_columns(self) -> frozenset[str]:
        return frozenset()

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


_COMPARATORS = {
    "==": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


@dataclass(frozen=True)
class Comparison(Expression):
    """``column <op> literal`` comparison.

    The right-hand side must be a literal so that string literals can be
    translated into dictionary codes of the referenced column.
    """

    column: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ExecutionError(f"unsupported comparison operator: {self.op!r}")

    def evaluate(self, table: Table) -> np.ndarray:
        col = table.column(self.column)
        rhs = col.encode_literal(self.value)
        if col.dtype is DataType.STRING and self.op not in ("==", "!="):
            # Ordered comparisons on dictionary codes are not ordered on the
            # original strings in general; decode for correctness.
            decoded = col.decode().astype(str)
            return _COMPARATORS[self.op](decoded, str(self.value))
        return _COMPARATORS[self.op](col.data, rhs)

    def referenced_columns(self) -> frozenset[str]:
        return frozenset({self.column})

    def __repr__(self) -> str:
        return f"({self.column} {self.op} {self.value!r})"


@dataclass(frozen=True)
class Between(Expression):
    """``low <= column <= high`` (inclusive on both ends)."""

    column: str
    low: Any
    high: Any

    def evaluate(self, table: Table) -> np.ndarray:
        col = table.column(self.column)
        if col.dtype is DataType.STRING:
            decoded = col.decode().astype(str)
            return (decoded >= str(self.low)) & (decoded <= str(self.high))
        return (col.data >= self.low) & (col.data <= self.high)

    def referenced_columns(self) -> frozenset[str]:
        return frozenset({self.column})

    def __repr__(self) -> str:
        return f"({self.column} BETWEEN {self.low!r} AND {self.high!r})"


@dataclass(frozen=True)
class InList(Expression):
    """``column IN (v1, v2, ...)``.

    Membership is evaluated through the engine's sorted-membership kernel
    (:func:`repro.exec.kernels.semi_join_mask`) rather than ``np.isin``: for
    integer-backed columns — ids and dictionary-coded strings, i.e. every
    IN-list in the benchmark workloads — the kernel's bounded-domain bitmap
    makes the scan one table gather per row instead of an O(n·m) (or
    sort-everything) comparison against the whole value list.
    """

    column: str
    values: tuple[Any, ...]

    def evaluate(self, table: Table) -> np.ndarray:
        # Imported lazily: the expression language is imported by the query
        # layer, which the kernel module's package initializer depends on.
        from repro.exec.kernels import semi_join_mask

        col = table.column(self.column)
        if not self.values:
            return np.zeros(table.num_rows, dtype=bool)
        encoded = np.asarray([col.encode_literal(v) for v in self.values])
        return semi_join_mask(col.data, encoded)

    def referenced_columns(self) -> frozenset[str]:
        return frozenset({self.column})

    def __repr__(self) -> str:
        return f"({self.column} IN {self.values!r})"


@dataclass(frozen=True)
class StringPredicate(Expression):
    """String pattern predicates: prefix, suffix, and contains.

    These model the ``LIKE 'x%'`` / ``LIKE '%x'`` / ``LIKE '%x%'`` predicates
    that appear throughout JOB and TPC-DS.
    """

    column: str
    mode: str  # "prefix" | "suffix" | "contains"
    pattern: str

    def __post_init__(self) -> None:
        if self.mode not in ("prefix", "suffix", "contains"):
            raise ExecutionError(f"unsupported string predicate mode: {self.mode!r}")

    def evaluate(self, table: Table) -> np.ndarray:
        col = table.column(self.column)
        if col.dtype is not DataType.STRING:
            raise ExecutionError(
                f"string predicate on non-string column {self.column!r} of {table.name!r}"
            )
        assert col.dictionary is not None
        # Evaluate the predicate once per dictionary entry, then gather.
        if self.mode == "prefix":
            dict_mask = np.asarray([v.startswith(self.pattern) for v in col.dictionary])
        elif self.mode == "suffix":
            dict_mask = np.asarray([v.endswith(self.pattern) for v in col.dictionary])
        else:
            dict_mask = np.asarray([self.pattern in v for v in col.dictionary])
        return dict_mask[col.data]

    def referenced_columns(self) -> frozenset[str]:
        return frozenset({self.column})

    def __repr__(self) -> str:
        return f"({self.column} {self.mode} {self.pattern!r})"


@dataclass(frozen=True)
class IsNull(Expression):
    """``column IS [NOT] NULL``.

    The columnar storage has no NULL representation (every generator fills
    every column), so ``IS NULL`` is uniformly false and ``IS NOT NULL``
    uniformly true.  The node exists so SQL queries carrying the standard
    NULL guards (JOB is full of ``note IS NOT NULL``) execute — and
    round-trip through the formatter — unchanged.
    """

    column: str
    negated: bool = False

    def evaluate(self, table: Table) -> np.ndarray:
        table.column(self.column)  # existence check: raise on unknown column
        if self.negated:
            return np.ones(table.num_rows, dtype=bool)
        return np.zeros(table.num_rows, dtype=bool)

    def referenced_columns(self) -> frozenset[str]:
        return frozenset({self.column})

    def __repr__(self) -> str:
        return f"({self.column} IS {'NOT ' if self.negated else ''}NULL)"


@dataclass(frozen=True)
class And(Expression):
    """Logical conjunction of predicates."""

    operands: tuple[Expression, ...]

    def evaluate(self, table: Table) -> np.ndarray:
        if not self.operands:
            return np.ones(table.num_rows, dtype=bool)
        result = self.operands[0].evaluate(table).astype(bool)
        for operand in self.operands[1:]:
            result &= operand.evaluate(table).astype(bool)
        return result

    def referenced_columns(self) -> frozenset[str]:
        return frozenset().union(*(o.referenced_columns() for o in self.operands)) if self.operands else frozenset()

    def __repr__(self) -> str:
        return "(" + " AND ".join(map(repr, self.operands)) + ")"


@dataclass(frozen=True)
class Or(Expression):
    """Logical disjunction of predicates."""

    operands: tuple[Expression, ...]

    def evaluate(self, table: Table) -> np.ndarray:
        if not self.operands:
            return np.zeros(table.num_rows, dtype=bool)
        result = self.operands[0].evaluate(table).astype(bool)
        for operand in self.operands[1:]:
            result |= operand.evaluate(table).astype(bool)
        return result

    def referenced_columns(self) -> frozenset[str]:
        return frozenset().union(*(o.referenced_columns() for o in self.operands)) if self.operands else frozenset()

    def __repr__(self) -> str:
        return "(" + " OR ".join(map(repr, self.operands)) + ")"


@dataclass(frozen=True)
class Not(Expression):
    """Logical negation of a predicate."""

    operand: Expression

    def evaluate(self, table: Table) -> np.ndarray:
        return ~self.operand.evaluate(table).astype(bool)

    def referenced_columns(self) -> frozenset[str]:
        return self.operand.referenced_columns()

    def __repr__(self) -> str:
        return f"(NOT {self.operand!r})"


# ---------------------------------------------------------------------------
# Convenience constructors — these read naturally at query-definition sites.
# ---------------------------------------------------------------------------
def col(name: str) -> ColumnRef:
    """Shorthand for :class:`ColumnRef`."""
    return ColumnRef(name)


def lit(value: Any) -> Literal:
    """Shorthand for :class:`Literal`."""
    return Literal(value)


def eq(column: str, value: Any) -> Comparison:
    """``column == value``."""
    return Comparison(column, "==", value)


def ne(column: str, value: Any) -> Comparison:
    """``column != value``."""
    return Comparison(column, "!=", value)


def lt(column: str, value: Any) -> Comparison:
    """``column < value``."""
    return Comparison(column, "<", value)


def le(column: str, value: Any) -> Comparison:
    """``column <= value``."""
    return Comparison(column, "<=", value)


def gt(column: str, value: Any) -> Comparison:
    """``column > value``."""
    return Comparison(column, ">", value)


def ge(column: str, value: Any) -> Comparison:
    """``column >= value``."""
    return Comparison(column, ">=", value)


def between(column: str, low: Any, high: Any) -> Between:
    """``low <= column <= high``."""
    return Between(column, low, high)


def isin(column: str, values: Sequence[Any]) -> InList:
    """``column IN values``."""
    return InList(column, tuple(values))


def starts_with(column: str, prefix: str) -> StringPredicate:
    """``column LIKE 'prefix%'``."""
    return StringPredicate(column, "prefix", prefix)


def ends_with(column: str, suffix: str) -> StringPredicate:
    """``column LIKE '%suffix'``."""
    return StringPredicate(column, "suffix", suffix)


def contains(column: str, pattern: str) -> StringPredicate:
    """``column LIKE '%pattern%'``."""
    return StringPredicate(column, "contains", pattern)


def is_null(column: str) -> IsNull:
    """``column IS NULL``."""
    return IsNull(column)


def is_not_null(column: str) -> IsNull:
    """``column IS NOT NULL``."""
    return IsNull(column, negated=True)


def and_(*operands: Expression) -> And:
    """Conjunction of an arbitrary number of predicates."""
    return And(tuple(operands))


def or_(*operands: Expression) -> Or:
    """Disjunction of an arbitrary number of predicates."""
    return Or(tuple(operands))


def not_(operand: Expression) -> Not:
    """Negation of a predicate."""
    return Not(operand)
