"""Fused conjunctive filter kernels: progressive selection-vector evaluation.

``And.evaluate`` materializes one full-length boolean mask per operand and
ANDs them — for a selective conjunction over a wide table, most of that
work evaluates predicates on rows an earlier conjunct already rejected.
:func:`fuse_conjunction` compiles a conjunction of simple leaf predicates
(``Comparison`` / ``Between`` / ``InList`` / ``StringPredicate`` /
``IsNull``) into a single :class:`FusedConjunction` kernel that evaluates
the first conjunct over the whole column, then evaluates each later
conjunct **only on the surviving candidate rows** (a progressive selection
vector), scattering the survivors into the final mask at the end.

Every leaf predicate here is elementwise — row ``i``'s verdict depends only
on row ``i``'s value — so evaluating on a gathered subset produces exactly
the rows the full-column evaluation would keep: the fused mask is
**bit-identical** to ``And.evaluate``.  Only the work (and the counters)
change.

When numba is importable, an all-integer conjunction (ordered/equality
comparisons and BETWEEN over integer columns with integer literals)
additionally compiles to a single JIT-ed short-circuiting row loop; the
pure-NumPy progressive path remains the fallback and the reference — the
JIT path computes the same mask and the same short-circuit counts, and any
JIT failure silently falls back.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.errors import ExecutionError
from repro.expr.expressions import (
    _COMPARATORS,
    And,
    Between,
    Comparison,
    Expression,
    InList,
    IsNull,
    StringPredicate,
)
from repro.storage.datatypes import DataType

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except ImportError:  # pragma: no cover
    _numba = None

#: Leaf node types a fused kernel supports.  Anything else (Or, Not, nested
#: arithmetic, ...) makes the conjunction non-fusable and
#: :func:`fuse_conjunction` returns None — callers fall back to
#: ``Expression.evaluate``.
_SUPPORTED_LEAVES = (Comparison, Between, InList, StringPredicate, IsNull)

#: A leaf kernel: rows=None evaluates the whole column; otherwise evaluates
#: only the gathered candidate rows, returning a mask aligned with them.
_LeafKernel = Callable[[Optional[np.ndarray]], np.ndarray]


def _flatten_conjuncts(expr: Expression) -> Optional[List[Expression]]:
    """Flatten an ``And`` tree into leaf conjuncts; None when unsupported."""
    if isinstance(expr, And):
        leaves: List[Expression] = []
        for operand in expr.operands:
            sub = _flatten_conjuncts(operand)
            if sub is None:
                return None
            leaves.extend(sub)
        return leaves
    if isinstance(expr, _SUPPORTED_LEAVES):
        return [expr]
    return None


def fuse_conjunction(expr: Expression) -> Optional["FusedConjunction"]:
    """Compile a conjunctive filter tree into a fused kernel.

    Returns None when ``expr`` is not a conjunction of at least two
    supported leaf predicates — a single leaf gains nothing from fusion,
    and any unsupported operand anywhere in the tree disables it (partial
    fusion would change evaluation order observably in the stats).
    """
    conjuncts = _flatten_conjuncts(expr)
    if conjuncts is None or len(conjuncts) < 2:
        return None
    return FusedConjunction(tuple(conjuncts))


# ---------------------------------------------------------------------------
# Leaf compilation (pure NumPy; replicates Expression.evaluate exactly)
# ---------------------------------------------------------------------------
def _compile_leaf(expr: Expression, table) -> _LeafKernel:
    if isinstance(expr, Comparison):
        col = table.column(expr.column)
        compare = _COMPARATORS[expr.op]
        if col.dtype is DataType.STRING and expr.op not in ("==", "!="):
            # Ordered string comparisons go through the decoded strings, as
            # in Comparison.evaluate; only the gather is narrowed.
            lookup = np.asarray(col.dictionary, dtype=object)
            rhs_str = str(expr.value)

            def kernel(rows: Optional[np.ndarray]) -> np.ndarray:
                codes = col.data if rows is None else col.data[rows]
                return compare(lookup[codes].astype(str), rhs_str)

            return kernel
        rhs = col.encode_literal(expr.value)

        def kernel(rows: Optional[np.ndarray]) -> np.ndarray:
            data = col.data if rows is None else col.data[rows]
            return compare(data, rhs)

        return kernel

    if isinstance(expr, Between):
        col = table.column(expr.column)
        if col.dtype is DataType.STRING:
            lookup = np.asarray(col.dictionary, dtype=object)
            low, high = str(expr.low), str(expr.high)

            def kernel(rows: Optional[np.ndarray]) -> np.ndarray:
                codes = col.data if rows is None else col.data[rows]
                decoded = lookup[codes].astype(str)
                return (decoded >= low) & (decoded <= high)

            return kernel
        low, high = expr.low, expr.high

        def kernel(rows: Optional[np.ndarray]) -> np.ndarray:
            data = col.data if rows is None else col.data[rows]
            return (data >= low) & (data <= high)

        return kernel

    if isinstance(expr, InList):
        from repro.exec.kernels import semi_join_mask

        col = table.column(expr.column)
        if not expr.values:

            def kernel(rows: Optional[np.ndarray]) -> np.ndarray:
                n = table.num_rows if rows is None else int(rows.shape[0])
                return np.zeros(n, dtype=bool)

            return kernel
        encoded = np.asarray([col.encode_literal(v) for v in expr.values])

        def kernel(rows: Optional[np.ndarray]) -> np.ndarray:
            data = col.data if rows is None else col.data[rows]
            return semi_join_mask(data, encoded)

        return kernel

    if isinstance(expr, StringPredicate):
        col = table.column(expr.column)
        if col.dtype is not DataType.STRING:
            # Same error StringPredicate.evaluate raises.
            raise ExecutionError(
                f"string predicate on non-string column {expr.column!r} of {table.name!r}"
            )
        if expr.mode == "prefix":
            dict_mask = np.asarray([v.startswith(expr.pattern) for v in col.dictionary])
        elif expr.mode == "suffix":
            dict_mask = np.asarray([v.endswith(expr.pattern) for v in col.dictionary])
        else:
            dict_mask = np.asarray([expr.pattern in v for v in col.dictionary])

        def kernel(rows: Optional[np.ndarray]) -> np.ndarray:
            codes = col.data if rows is None else col.data[rows]
            return dict_mask[codes]

        return kernel

    if isinstance(expr, IsNull):
        table.column(expr.column)  # existence check, as IsNull.evaluate does
        fill = bool(expr.negated)

        def kernel(rows: Optional[np.ndarray]) -> np.ndarray:
            n = table.num_rows if rows is None else int(rows.shape[0])
            return np.full(n, fill, dtype=bool)

        return kernel

    raise TypeError(f"cannot fuse expression node {expr!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# Optional numba JIT for all-integer conjunctions
# ---------------------------------------------------------------------------
#: Per-conjunct inclusive [lo, hi] range codes for the JIT row loop.  Every
#: supported integer predicate reduces to one range test.
_JIT_OPS = {"==", "<", "<=", ">", ">="}
_I64_MIN = np.iinfo(np.int64).min
_I64_MAX = np.iinfo(np.int64).max


def _jit_bounds(expr: Expression, table) -> Optional[Tuple[np.ndarray, int, int]]:
    """(column data, lo, hi) when ``expr`` is a JIT-able integer range test."""

    def _int_literal(value) -> Optional[int]:
        if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
            return None
        value = int(value)
        if value < _I64_MIN or value > _I64_MAX:
            return None
        return value

    if isinstance(expr, Comparison) and expr.op in _JIT_OPS:
        col = table.column(expr.column)
        if col.dtype is DataType.STRING or not np.issubdtype(col.data.dtype, np.integer):
            return None
        value = _int_literal(expr.value)
        if value is None:
            return None
        if expr.op == "==":
            return col.data, value, value
        if expr.op == "<":
            return (col.data, _I64_MIN, value - 1) if value > _I64_MIN else None
        if expr.op == "<=":
            return col.data, _I64_MIN, value
        if expr.op == ">":
            return (col.data, value + 1, _I64_MAX) if value < _I64_MAX else None
        return col.data, value, _I64_MAX
    if isinstance(expr, Between):
        col = table.column(expr.column)
        if col.dtype is DataType.STRING or not np.issubdtype(col.data.dtype, np.integer):
            return None
        low, high = _int_literal(expr.low), _int_literal(expr.high)
        if low is None or high is None:
            return None
        return col.data, low, high
    return None


_jit_kernel_cache: Optional[Callable] = None


def _jit_kernel() -> Optional[Callable]:  # pragma: no cover - needs numba
    """The compiled short-circuiting row loop (built once, cached)."""
    global _jit_kernel_cache
    if _numba is None:
        return None
    if _jit_kernel_cache is None:

        def _loop(columns, lows, highs, mask, reached):
            n = columns.shape[1]
            k = columns.shape[0]
            for i in range(n):
                keep = True
                for j in range(k):
                    reached[j] += 1
                    value = columns[j, i]
                    if value < lows[j] or value > highs[j]:
                        keep = False
                        break
                mask[i] = keep

        try:
            _jit_kernel_cache = _numba.njit(cache=False)(_loop)
        except Exception:
            return None
    return _jit_kernel_cache


class FusedConjunction:
    """A conjunction of leaf predicates evaluated as one fused kernel.

    :meth:`evaluate` returns ``(mask, rows_short_circuited)`` where the
    mask is bit-identical to ``And(conjuncts).evaluate(table)`` and the
    count is the total rows later conjuncts never evaluated because an
    earlier conjunct had already rejected them.
    """

    __slots__ = ("conjuncts",)

    def __init__(self, conjuncts: Tuple[Expression, ...]) -> None:
        self.conjuncts = conjuncts

    def __repr__(self) -> str:
        return "fused(" + " AND ".join(map(repr, self.conjuncts)) + ")"

    @property
    def num_conjuncts(self) -> int:
        return len(self.conjuncts)

    def evaluate(self, table, block_selection=None) -> Tuple[np.ndarray, int]:
        """Evaluate the fused conjunction, optionally under zone-map pruning.

        ``block_selection`` is a
        :class:`~repro.storage.zonemap.BlockSelection` computed from *this*
        conjunction (see :func:`repro.expr.codespace.block_selection`): the
        first conjunct then only evaluates rows inside surviving blocks,
        and every row of a skipped block counts toward the returned
        short-circuit total exactly once — skipped blocks are proven
        non-matching, so the mask stays bit-identical.
        """
        if block_selection is None:
            jit = self._evaluate_jit(table)
            if jit is not None:
                return jit
        return self._evaluate_numpy(table, block_selection)

    # -- pure NumPy progressive-selection path (reference) ---------------
    def _evaluate_numpy(self, table, block_selection=None) -> Tuple[np.ndarray, int]:
        kernels = [_compile_leaf(conjunct, table) for conjunct in self.conjuncts]
        num_rows = table.num_rows
        short_circuited = 0
        if block_selection is None:
            candidates = np.nonzero(np.asarray(kernels[0](None), dtype=bool))[0]
        else:
            initial = block_selection.candidate_rows()
            short_circuited += num_rows - int(initial.shape[0])
            first_mask = np.asarray(kernels[0](initial), dtype=bool)
            candidates = initial[first_mask]
        for kernel in kernels[1:]:
            short_circuited += num_rows - int(candidates.shape[0])
            if candidates.shape[0] == 0:
                continue
            sub_mask = np.asarray(kernel(candidates), dtype=bool)
            candidates = candidates[sub_mask]
        mask = np.zeros(num_rows, dtype=bool)
        mask[candidates] = True
        return mask, short_circuited

    # -- optional numba path ---------------------------------------------
    def _evaluate_jit(self, table) -> Optional[Tuple[np.ndarray, int]]:
        if _numba is None:  # fast path for the common (no numba) install
            return None
        return self._evaluate_jit_inner(table)  # pragma: no cover - needs numba

    def _evaluate_jit_inner(self, table):  # pragma: no cover - needs numba
        loop = _jit_kernel()
        if loop is None:
            return None
        bounds = []
        for conjunct in self.conjuncts:
            bound = _jit_bounds(conjunct, table)
            if bound is None:
                return None
            bounds.append(bound)
        num_rows = table.num_rows
        try:
            columns = np.ascontiguousarray(
                np.stack([np.asarray(data, dtype=np.int64) for data, _, _ in bounds])
            )
            lows = np.asarray([lo for _, lo, _ in bounds], dtype=np.int64)
            highs = np.asarray([hi for _, _, hi in bounds], dtype=np.int64)
            mask = np.zeros(num_rows, dtype=bool)
            reached = np.zeros(len(bounds), dtype=np.int64)
            loop(columns, lows, highs, mask, reached)
        except Exception:
            return None
        # Rows conjunct j never saw = num_rows - rows that reached it.
        short_circuited = int(sum(num_rows - reached[j] for j in range(1, len(bounds))))
        return mask, short_circuited
