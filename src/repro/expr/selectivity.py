"""Heuristic selectivity estimation for filter expressions.

The optimizer needs a rough idea of how selective a base-table predicate is
*before* executing it.  Following the textbook System-R defaults (also the
defaults in DuckDB's and PostgreSQL's estimators), each predicate shape maps
to a constant or statistics-derived factor, and conjunction/disjunction
combine factors under the independence assumption.

These estimates are intentionally crude — the whole point of the paper is
that Robust Predicate Transfer makes execution robust *despite* estimation
errors — but they give the baseline optimizer a realistic cost signal.
"""

from __future__ import annotations

from typing import Optional

from repro.expr.expressions import (
    And,
    Between,
    Comparison,
    Expression,
    InList,
    IsNull,
    Not,
    Or,
    StringPredicate,
)
from repro.storage.catalog import TableStatistics

#: Default selectivities per predicate shape (System-R style magic numbers).
DEFAULT_EQUALITY_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_BETWEEN_SELECTIVITY = 0.25
DEFAULT_STRING_SELECTIVITY = 0.2
DEFAULT_IN_PER_VALUE = 0.05


def estimate_selectivity(
    expression: Optional[Expression],
    statistics: Optional[TableStatistics] = None,
) -> float:
    """Estimate the fraction of rows satisfying ``expression``.

    Parameters
    ----------
    expression:
        The predicate; ``None`` means "no filter" and yields 1.0.
    statistics:
        Optional table statistics; when provided, equality predicates use
        ``1 / distinct_count`` instead of the default constant.
    """
    if expression is None:
        return 1.0
    selectivity = _estimate(expression, statistics)
    return float(min(max(selectivity, 0.0), 1.0))


def _estimate(expression: Expression, statistics: Optional[TableStatistics]) -> float:
    if isinstance(expression, Comparison):
        if expression.op == "==":
            if statistics is not None:
                return 1.0 / max(statistics.distinct(expression.column), 1)
            return DEFAULT_EQUALITY_SELECTIVITY
        if expression.op == "!=":
            if statistics is not None:
                return 1.0 - 1.0 / max(statistics.distinct(expression.column), 1)
            return 1.0 - DEFAULT_EQUALITY_SELECTIVITY
        return DEFAULT_RANGE_SELECTIVITY
    if isinstance(expression, Between):
        return DEFAULT_BETWEEN_SELECTIVITY
    if isinstance(expression, InList):
        per_value = DEFAULT_IN_PER_VALUE
        if statistics is not None:
            per_value = 1.0 / max(statistics.distinct(expression.column), 1)
        return min(1.0, per_value * len(expression.values))
    if isinstance(expression, StringPredicate):
        return DEFAULT_STRING_SELECTIVITY
    if isinstance(expression, IsNull):
        # The storage layer has no NULLs: IS NULL never matches, IS NOT NULL always.
        return 1.0 if expression.negated else 0.0
    if isinstance(expression, And):
        result = 1.0
        for operand in expression.operands:
            result *= _estimate(operand, statistics)
        return result
    if isinstance(expression, Or):
        result = 0.0
        for operand in expression.operands:
            s = _estimate(operand, statistics)
            result = result + s - result * s
        return result
    if isinstance(expression, Not):
        return 1.0 - _estimate(expression.operand, statistics)
    # ColumnRef / Literal used as a predicate: assume non-selective.
    return 1.0
