"""Observability: tracing, metrics, query log, and exposition.

The engine's per-query :class:`~repro.exec.statistics.ExecutionStats` die
with their :class:`~repro.engine.database.QueryResult`; this package is the
cross-query layer on top of them:

* :mod:`repro.obs.trace` — hierarchical spans (query → phase → physical op
  → morsel batch) with an injectable monotonic clock, produced when
  ``ExecutionConfig.tracing`` / ``REPRO_TRACE`` is on.
* :mod:`repro.obs.metrics` — a thread-safe registry of counters, gauges,
  and fixed-bucket histograms the serving layer feeds.
* :mod:`repro.obs.querylog` — a bounded ring buffer of structured per-query
  records, exportable as JSON lines.
* :mod:`repro.obs.export` — Prometheus-style text exposition plus a human
  timeline rendering of one trace.
"""

from repro.obs.trace import Span, Tracer
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.querylog import (
    DEFAULT_QUERY_LOG_ENTRIES,
    QueryLog,
    QueryLogRecord,
    sql_hash,
)
from repro.obs.export import parse_exposition, render_exposition, render_timeline

__all__ = [
    "Counter",
    "DEFAULT_QUERY_LOG_ENTRIES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueryLog",
    "QueryLogRecord",
    "Span",
    "Tracer",
    "parse_exposition",
    "render_exposition",
    "render_timeline",
    "sql_hash",
]
