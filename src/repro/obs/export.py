"""Text exposition of metrics and traces.

:func:`render_exposition` emits the Prometheus text format (``# HELP`` /
``# TYPE`` headers, one ``name{labels} value`` line per series);
:func:`parse_exposition` is the matching validating parser — the CI lint
round-trips every emitted line through it.  :func:`render_timeline` renders
one trace tree as an indented human-readable timeline.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Tuple

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_RE = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"$')


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def render_exposition(registry: MetricsRegistry) -> str:
    """Render every registered instrument in the Prometheus text format."""
    lines: List[str] = []
    for instrument in registry.instruments():
        lines.append(f"# HELP {instrument.name} {instrument.help}")
        lines.append(f"# TYPE {instrument.name} {instrument.type_name}")
        for suffix, labels, value in instrument.samples():
            name = instrument.name + suffix
            if labels:
                inner = ",".join(
                    f'{key}="{_escape_label(str(val))}"'
                    for key, val in sorted(labels.items())
                )
                lines.append(f"{name}{{{inner}}} {_format_value(value)}")
            else:
                lines.append(f"{name} {_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def parse_exposition(text: str) -> Dict[str, float]:
    """Parse Prometheus text exposition; raises :class:`ReproError` on any
    malformed line.  Returns ``series -> value`` (labels in sorted order).
    """
    series: Dict[str, float] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                raise ReproError(f"exposition line {lineno}: malformed comment {raw!r}")
            continue
        if line.startswith("#"):
            raise ReproError(f"exposition line {lineno}: unknown comment {raw!r}")
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ReproError(f"exposition line {lineno}: malformed sample {raw!r}")
        labels: List[Tuple[str, str]] = []
        body = match.group("labels")
        if body:
            for part in body.split(","):
                label = _LABEL_RE.match(part)
                if label is None:
                    raise ReproError(
                        f"exposition line {lineno}: malformed label {part!r}"
                    )
                labels.append((label.group("key"), label.group("value")))
        value_text = match.group("value")
        try:
            value = float(value_text.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError as error:
            raise ReproError(
                f"exposition line {lineno}: malformed value {value_text!r}"
            ) from error
        key = match.group("name")
        if labels:
            inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels))
            key = f"{key}{{{inner}}}"
        series[key] = value
    return series


def render_timeline(span: Span, indent: str = "  ") -> str:
    """Human-readable indented timeline of one trace tree.

    Offsets are relative to the root's start (the tracer's clock origin is
    arbitrary), durations absolute; attributes render compactly after the
    name.  Events show as ``@offset`` point entries.
    """
    origin = span.start
    lines: List[str] = []

    def emit(node: Span, depth: int) -> None:
        pad = indent * depth
        attrs = ""
        if node.attrs:
            inner = " ".join(f"{k}={v}" for k, v in sorted(node.attrs.items()))
            attrs = f"  [{inner}]"
        offset = node.start - origin
        if node.kind == "event":
            lines.append(f"{pad}@{offset * 1e3:9.3f}ms  {node.name}{attrs}")
        else:
            lines.append(
                f"{pad}{node.kind:<5} {node.name:<24} "
                f"+{offset * 1e3:9.3f}ms {node.seconds * 1e3:9.3f}ms{attrs}"
            )
        for child in node.children:
            emit(child, depth + 1)

    emit(span, 0)
    return "\n".join(lines)
