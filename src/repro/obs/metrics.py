"""A thread-safe registry of counters, gauges, and fixed-bucket histograms.

The serving layer (:class:`~repro.engine.server.Server`) owns one
:class:`MetricsRegistry` and feeds it from every query: admission waits,
rejections by reason, per-query execution counters (spills, cache hits,
fault recoveries), and sampled component state (plan/artifact cache sizes,
shared-memory arena bytes).  The registry renders to Prometheus-style text
via :func:`repro.obs.export.render_exposition`.

Design constraints:

* **Thread-safe** — one lock per registry; instruments are registered once
  and updated from many serving threads.
* **Label support** — instruments declare label *names* up front; each
  distinct label-value tuple materializes its own series, exactly like
  Prometheus children.
* **Fixed buckets** — histograms take their upper bounds at registration
  (cumulative ``le`` semantics, with ``+Inf`` implied); no dynamic
  resizing, so concurrent observes are one lock acquisition.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError

_LabelValues = Tuple[str, ...]

#: Default admission/latency histogram buckets (seconds).
DEFAULT_LATENCY_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


def _check_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ReproError(f"invalid metric name {name!r}")
    if name[0].isdigit():
        raise ReproError(f"invalid metric name {name!r}")
    return name


def _series_key(name: str, labels: Sequence[str], values: _LabelValues) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in zip(labels, values))
    return f"{name}{{{inner}}}"


class _Instrument:
    """Shared machinery: label handling + per-series storage."""

    type_name = "untyped"

    def __init__(self, name: str, help_text: str, labels: Sequence[str] = ()) -> None:
        self.name = _check_name(name)
        self.help = help_text
        self.labels = tuple(labels)
        self._lock = threading.Lock()
        self._series: Dict[_LabelValues, float] = {}

    def _values(self, label_values: Dict[str, str]) -> _LabelValues:
        if set(label_values) != set(self.labels):
            raise ReproError(
                f"metric {self.name!r} expects labels {self.labels}, "
                f"got {tuple(sorted(label_values))}"
            )
        return tuple(str(label_values[name]) for name in self.labels)

    def samples(self) -> List[Tuple[str, Dict[str, str], float]]:
        """``(suffix, labels, value)`` triples for exposition."""
        with self._lock:
            return [
                ("", dict(zip(self.labels, values)), value)
                for values, value in sorted(self._series.items())
            ]


class Counter(_Instrument):
    """A monotonically increasing value (per label combination)."""

    type_name = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ReproError(f"counter {self.name!r} cannot decrease")
        key = self._values(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = self._values(labels)
        with self._lock:
            return self._series.get(key, 0.0)


class Gauge(_Instrument):
    """A point-in-time value that can move both ways."""

    type_name = "gauge"

    def set(self, value: float, **labels: str) -> None:
        key = self._values(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._values(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        key = self._values(labels)
        with self._lock:
            return self._series.get(key, 0.0)


class Histogram(_Instrument):
    """Fixed-bucket histogram with cumulative ``le`` buckets and ``+Inf``."""

    type_name = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labels: Sequence[str] = (),
    ) -> None:
        super().__init__(name, help_text, labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ReproError(f"histogram {self.name!r} needs at least one bucket")
        self.bounds = bounds
        self._buckets: Dict[_LabelValues, List[int]] = {}
        self._sums: Dict[_LabelValues, float] = {}
        self._counts: Dict[_LabelValues, int] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = self._values(labels)
        with self._lock:
            counts = self._buckets.setdefault(key, [0] * len(self.bounds))
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    counts[i] += 1
            self._sums[key] = self._sums.get(key, 0.0) + float(value)
            self._counts[key] = self._counts.get(key, 0) + 1

    def samples(self) -> List[Tuple[str, Dict[str, str], float]]:
        out: List[Tuple[str, Dict[str, str], float]] = []
        with self._lock:
            for key in sorted(self._counts):
                base = dict(zip(self.labels, key))
                counts = self._buckets[key]
                for bound, count in zip(self.bounds, counts):
                    out.append(("_bucket", {**base, "le": repr(bound)}, float(count)))
                out.append(("_bucket", {**base, "le": "+Inf"}, float(self._counts[key])))
                out.append(("_sum", base, self._sums[key]))
                out.append(("_count", base, float(self._counts[key])))
        return out


class MetricsRegistry:
    """Named instruments, registered once, safe to update concurrently.

    Re-registering an existing name returns the existing instrument when
    the type and labels agree (idempotent wiring) and raises otherwise.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}

    def _register(self, cls, name: str, help_text: str, **kwargs) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labels != tuple(
                    kwargs.get("labels", ())
                ):
                    raise ReproError(
                        f"metric {name!r} already registered with a different shape"
                    )
                return existing
            instrument = cls(name, help_text, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help_text: str, labels: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help_text, labels=labels)

    def gauge(self, name: str, help_text: str, labels: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help_text, labels=labels)

    def histogram(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labels: Sequence[str] = (),
    ) -> Histogram:
        return self._register(
            Histogram, name, help_text, buckets=buckets, labels=labels
        )

    def instruments(self) -> List[_Instrument]:
        with self._lock:
            return [self._instruments[name] for name in sorted(self._instruments)]

    def snapshot(self) -> Dict[str, float]:
        """Flat ``series name -> value`` map (histograms expand per bucket)."""
        out: Dict[str, float] = {}
        for instrument in self.instruments():
            for suffix, labels, value in instrument.samples():
                names = tuple(sorted(labels))
                key = _series_key(
                    instrument.name + suffix,
                    names,
                    tuple(labels[n] for n in names),
                )
                out[key] = value
        return out
