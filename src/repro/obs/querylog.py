"""Bounded ring-buffer query log: one structured record per served query.

Every query a :class:`~repro.engine.server.Server` finishes — successfully,
with a typed error, or shed at admission — appends one
:class:`QueryLogRecord`.  The buffer is bounded (oldest records fall off),
thread-safe, and exportable as JSON lines, so "why was p99 slow an hour
ago?" has an answer that outlives the individual ``QueryResult``\\ s.

The ``sql_hash`` is computed over the round-trip SQL normal form (the same
normalization the plan cache keys on), so syntactic variants of one
statement shape share a hash while distinct shapes never collide in
practice.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

#: Default ring capacity; ~256 records is hours of traffic at bench scale.
DEFAULT_QUERY_LOG_ENTRIES = 256


def sql_hash(normalized_sql: str) -> str:
    """Stable short hash of a normalized SQL text ('' hashes to '')."""
    if not normalized_sql:
        return ""
    return hashlib.sha256(normalized_sql.encode("utf-8")).hexdigest()[:16]


@dataclass
class QueryLogRecord:
    """One query's structured log record (JSON-ready via :meth:`as_dict`)."""

    query_name: str = ""
    sql_hash: str = ""
    mode: str = ""
    backend: str = ""
    #: Physical-plan fingerprint: op kinds in execution order.
    plan_fingerprint: str = ""
    session: str = ""
    admission_wait_seconds: float = 0.0
    duration_seconds: float = 0.0
    output_rows: int = 0
    #: Wall seconds per physical-op kind (the per-op timing breakdown).
    op_seconds: Dict[str, float] = field(default_factory=dict)
    cache: Dict[str, int] = field(default_factory=dict)
    adaptive: Dict[str, int] = field(default_factory=dict)
    #: Deduplicated degradation rungs -> occurrence counts.
    degradations: Dict[str, int] = field(default_factory=dict)
    #: ``"ok"`` or the typed error class name (``QueryTimeout``, ...).
    outcome: str = "ok"
    error: str = ""

    def as_dict(self) -> dict:
        return {
            "query_name": self.query_name,
            "sql_hash": self.sql_hash,
            "mode": self.mode,
            "backend": self.backend,
            "plan_fingerprint": self.plan_fingerprint,
            "session": self.session,
            "admission_wait_seconds": self.admission_wait_seconds,
            "duration_seconds": self.duration_seconds,
            "output_rows": self.output_rows,
            "op_seconds": dict(self.op_seconds),
            "cache": dict(self.cache),
            "adaptive": dict(self.adaptive),
            "degradations": dict(self.degradations),
            "outcome": self.outcome,
            "error": self.error,
        }


class QueryLog:
    """Thread-safe bounded ring buffer of :class:`QueryLogRecord`\\ s."""

    def __init__(self, capacity: int = DEFAULT_QUERY_LOG_ENTRIES) -> None:
        if capacity <= 0:
            raise ValueError("query log capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._records: Deque[QueryLogRecord] = deque(maxlen=capacity)
        self._appended = 0

    def append(self, record: QueryLogRecord) -> None:
        with self._lock:
            self._records.append(record)
            self._appended += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def total_appended(self) -> int:
        """Records ever appended (including those the ring has dropped)."""
        with self._lock:
            return self._appended

    def records(self) -> List[QueryLogRecord]:
        """Oldest-to-newest copy of the retained records."""
        with self._lock:
            return list(self._records)

    def slowest(self, n: int = 3) -> List[QueryLogRecord]:
        """The ``n`` retained records with the longest durations."""
        return sorted(
            self.records(), key=lambda r: r.duration_seconds, reverse=True
        )[: max(n, 0)]

    def to_jsonl(self) -> str:
        """The retained records as JSON lines (one record per line)."""
        return "\n".join(json.dumps(record.as_dict()) for record in self.records())

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
