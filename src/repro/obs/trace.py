"""Hierarchical execution traces with an injectable monotonic clock.

A :class:`Tracer` records one tree of :class:`Span`\\ s per query:

.. code-block:: text

    query tpch_q3
      phase scan_filter
        op scan
        op filter_push
      phase transfer
        op bloom_build
        op bloom_probe
          batch morsels            <- one summary span per fanned-out op
      ...

Spans carry wall-clock timestamps from the tracer's clock.  The clock is
injectable (``Tracer(clock=fake)``) so tests can assert exact timings and
deterministic tree shapes; the default is :func:`time.perf_counter`.

Tracing is strictly additive: the tracer observes executions, it never
participates in them, so a traced run is bit-identical to an untraced one.
Spans of one query are produced by one thread (the executor's op loop);
morsel-level work inside an op is aggregated by the backend into a single
``batch`` child (process workers time their morsels locally and ship the
seconds back with the morsel payload — no extra cross-process messages).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass
class Span:
    """One timed node of a trace tree."""

    name: str
    #: Coarse node type: ``"query"``, ``"phase"``, ``"op"``, ``"batch"``,
    #: or ``"event"`` (zero-duration point annotation).
    kind: str
    start: float
    end: float = 0.0
    attrs: Dict[str, object] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        """Span duration (0.0 for events and unfinished spans)."""
        return max(self.end - self.start, 0.0)

    def walk(self) -> Iterator["Span"]:
        """This span, then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, kind: str) -> List["Span"]:
        """Every descendant span (including self) of the given kind."""
        return [span for span in self.walk() if span.kind == kind]

    def shape(self) -> Tuple:
        """The timing-free tree shape ``(kind, name, child shapes)``.

        Two runs of the same query on the same backend produce equal
        shapes — the determinism tests compare these, not timestamps.
        """
        return (self.kind, self.name, tuple(child.shape() for child in self.children))

    def as_dict(self) -> dict:
        """JSON-ready representation of the subtree."""
        return {
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "seconds": self.seconds,
            "attrs": dict(self.attrs),
            "children": [child.as_dict() for child in self.children],
        }


class Tracer:
    """Builds one :class:`Span` tree; spans nest via an explicit stack.

    The tracer is single-query, single-thread: the engine creates one per
    traced execution and threads it down the call tree.  ``clock`` must be
    monotonic; tests inject counters to make timings deterministic.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self.root: Optional[Span] = None
        self._stack: List[Span] = []

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span (None outside any span)."""
        return self._stack[-1] if self._stack else None

    def start(self, name: str, kind: str, **attrs: object) -> Span:
        """Open a span as a child of the current one (or as the root)."""
        span = Span(name=name, kind=kind, start=self._clock(), attrs=dict(attrs))
        if self._stack:
            self._stack[-1].children.append(span)
        elif self.root is None:
            self.root = span
        else:
            # A second top-level span (e.g. a retry after a typed error):
            # keep one root by re-parenting under the first.
            self.root.children.append(span)
        self._stack.append(span)
        return span

    def finish(self, span: Span, **attrs: object) -> Span:
        """Close ``span`` (and any unclosed children), stamping its end."""
        end = self._clock()
        while self._stack:
            top = self._stack.pop()
            top.end = end
            if top is span:
                break
        span.attrs.update(attrs)
        return span

    @contextmanager
    def span(self, name: str, kind: str, **attrs: object) -> Iterator[Span]:
        """Context-managed :meth:`start`/:meth:`finish` pair."""
        span = self.start(name, kind, **attrs)
        try:
            yield span
        finally:
            self.finish(span)

    def event(self, name: str, **attrs: object) -> Span:
        """A zero-duration annotation attached to the current span."""
        now = self._clock()
        span = Span(name=name, kind="event", start=now, end=now, attrs=dict(attrs))
        if self._stack:
            self._stack[-1].children.append(span)
        elif self.root is not None:
            self.root.children.append(span)
        else:
            self.root = span
        return span

    def annotate(self, **attrs: object) -> None:
        """Merge attributes into the current span (no-op outside spans)."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)
