"""Join-order optimization: cardinality estimation, cost model, DP/greedy search, random plans."""

from repro.optimizer.cardinality import CardinalityEstimator, EstimationErrorModel
from repro.optimizer.cost_model import DEFAULT_COST_MODEL, CostModel
from repro.optimizer.join_order import (
    DP_RELATION_LIMIT,
    JoinOrderOptimizer,
    JoinOrderOptions,
)
from repro.optimizer.random_plans import (
    generate_bushy_plans,
    generate_left_deep_plans,
    iter_all_left_deep_orders,
    paper_sample_size,
    random_bushy_plan,
    random_left_deep_order,
    random_left_deep_plan,
)

__all__ = [
    "DEFAULT_COST_MODEL",
    "DP_RELATION_LIMIT",
    "CardinalityEstimator",
    "CostModel",
    "EstimationErrorModel",
    "JoinOrderOptimizer",
    "JoinOrderOptions",
    "generate_bushy_plans",
    "generate_left_deep_plans",
    "iter_all_left_deep_orders",
    "paper_sample_size",
    "random_bushy_plan",
    "random_left_deep_order",
    "random_left_deep_plan",
]
