"""Cardinality estimation with injectable estimation error.

The estimator implements the three textbook assumptions the paper recounts
in §2.1 — uniformity, independence, and inclusion — on top of the per-column
distinct counts maintained by the catalog.  Join cardinalities therefore
follow ``|R ⋈ S| = |R| · |S| / max(ndv_R(k), ndv_S(k))``.

Because the central argument of the paper is that these estimates are often
wrong by orders of magnitude (and that Robust Predicate Transfer makes
execution insensitive to that), the estimator supports *error injection*: a
deterministic, per-relation multiplicative error sampled log-uniformly from
``[1/error_factor, error_factor]``.  Experiments can thus dial in "the
optimizer is wrong by up to 100x" and observe how the baseline's plan quality
collapses while RPT's does not.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional

import numpy as np

from repro.bloom.bloom_filter import hash_keys
from repro.core.join_graph import JoinGraph
from repro.errors import OptimizerError
from repro.expr.selectivity import estimate_selectivity
from repro.query import QuerySpec
from repro.storage.catalog import Catalog


# ---------------------------------------------------------------------------
# KMV distinct-count sketch
# ---------------------------------------------------------------------------
#: Default number of minimum hash values retained by a :class:`KMVSketch`
#: (relative error ~ 1/sqrt(k) ≈ 3%).
KMV_DEFAULT_K = 1024

#: Size of the partitioned candidate pool the sketch builder extracts before
#: deduplicating (a small multiple of k so duplicate-heavy columns still
#: yield k distinct minima without sorting the whole array).
_KMV_POOL_FACTOR = 4

#: Smallest usable KMV sample: below this many distinct pool values the
#: estimator's variance is useless and the builder takes one exact pass.
_KMV_MIN_SAMPLE = 16

_HASH_SPACE = 2.0**64


@dataclass(frozen=True)
class KMVSketch:
    """A k-minimum-values distinct-count sketch over one key column.

    The sketch stores the ``k`` smallest *distinct* splitmix64 hash values of
    the column.  Because the hashes are (near-)uniform over ``[0, 2^64)``,
    the k-th smallest value ``m`` estimates the distinct count as
    ``(k - 1) · 2^64 / m`` (the classic KMV/bottom-k estimator).  Building
    the sketch is one vectorized hashing pass plus an ``O(n)`` partition —
    cheap enough to maintain per ``(table version, column)`` and cache in
    the cross-query :class:`~repro.storage.artifacts.ArtifactCache`, where
    the adaptive transfer layer uses it to right-size Bloom filters.

    ``exact`` marks sketches whose column had at most ``k`` distinct hash
    values; their ``estimate`` is the exact distinct count (modulo 64-bit
    hash collisions, negligible at these scales).
    """

    k: int
    minima: np.ndarray
    exact: bool

    @classmethod
    def from_values(cls, values: np.ndarray, k: int = KMV_DEFAULT_K) -> "KMVSketch":
        """Build a sketch from raw (integer-backed) key values."""
        values = np.asarray(values)
        if values.size == 0:
            if k <= 1:
                raise OptimizerError(f"KMV sketch needs k > 1, got {k}")
            return cls(k=k, minima=np.zeros(0, dtype=np.uint64), exact=True)
        return cls.from_hashes(hash_keys(values), k=k)

    @classmethod
    def from_hashes(cls, hashes: np.ndarray, k: int = KMV_DEFAULT_K) -> "KMVSketch":
        """Build a sketch from an already-computed splitmix64 hashing pass.

        Lets callers that hold a cached full-column pass (the query-lifetime
        :class:`~repro.exec.hashcache.HashCache`) sketch without re-hashing.
        """
        if k <= 1:
            raise OptimizerError(f"KMV sketch needs k > 1, got {k}")
        hashes = np.asarray(hashes)
        if hashes.size == 0:
            return cls(k=k, minima=np.zeros(0, dtype=np.uint64), exact=True)
        pool_size = k * _KMV_POOL_FACTOR
        if hashes.size <= pool_size:
            distinct = np.unique(hashes)
            return cls(k=k, minima=distinct[:k].copy(), exact=distinct.size < k)
        # O(n) partition: the pool holds every element <= the pool_size-th
        # smallest hash, so its distinct values are exactly the smallest
        # distinct hash values of the whole column.
        pool = np.partition(hashes, pool_size - 1)[:pool_size]
        distinct = np.unique(pool)
        if distinct.size >= k:
            return cls(k=k, minima=distinct[:k].copy(), exact=False)
        if distinct.size >= _KMV_MIN_SAMPLE:
            # Duplicate-heavy column flooded the pool below k distinct
            # values.  The d values present are still the d smallest
            # distinct hashes, i.e. a valid KMV sample of order d — use it
            # (higher variance, ~1/sqrt(d)) instead of sorting the column.
            return cls(k=int(distinct.size), minima=distinct.copy(), exact=False)
        # Near-constant column: one exact pass is cheap (mostly duplicates)
        # and the tiny distinct set makes the estimator unusable anyway.
        distinct = np.unique(hashes)
        return cls(k=k, minima=distinct[:k].copy(), exact=distinct.size < k)

    @property
    def estimate(self) -> float:
        """Estimated number of distinct values in the sketched column."""
        if self.minima.size == 0:
            return 0.0
        if self.exact or self.minima.size < self.k:
            return float(self.minima.size)
        return (self.k - 1) * _HASH_SPACE / (float(self.minima[self.k - 1]) + 1.0)

    @property
    def nbytes(self) -> int:
        """Bytes held by the sketch (what the artifact cache charges)."""
        return int(self.minima.nbytes)


def kmv_distinct_estimate(values: np.ndarray, k: int = KMV_DEFAULT_K) -> float:
    """One-shot distinct-count estimate of ``values`` via a KMV sketch."""
    return KMVSketch.from_values(values, k=k).estimate


@dataclass(frozen=True)
class EstimationErrorModel:
    """Deterministic multiplicative error applied to base-table estimates.

    Attributes
    ----------
    error_factor:
        Maximum multiplicative error; 1.0 means exact estimates.
    seed:
        Seed for the per-relation error draw (deterministic per relation).
    """

    error_factor: float = 1.0
    seed: int = 0

    def factor_for(self, alias: str) -> float:
        """The error multiplier applied to the estimate of ``alias``."""
        if self.error_factor <= 1.0:
            return 1.0
        rng = random.Random(f"{self.seed}:{alias}")
        log_max = math.log(self.error_factor)
        return math.exp(rng.uniform(-log_max, log_max))


class CardinalityEstimator:
    """Estimates base-relation and join cardinalities for the optimizer."""

    def __init__(
        self,
        catalog: Catalog,
        query: QuerySpec,
        graph: JoinGraph,
        error_model: Optional[EstimationErrorModel] = None,
        rows_upper_bounds: Optional[Mapping[str, int]] = None,
    ) -> None:
        self.catalog = catalog
        self.query = query
        self.graph = graph
        self.error_model = error_model or EstimationErrorModel()
        #: alias -> hard upper bound on rows surviving the base predicate,
        #: derived from zone maps before execution (block-encoded runs only;
        #: absent aliases keep the textbook estimate).
        self.rows_upper_bounds = dict(rows_upper_bounds or {})
        self._base_estimates: Dict[str, float] = {}
        self._distinct_cache: Dict[tuple[str, str], int] = {}
        self._populate_base_estimates()

    # ------------------------------------------------------------------
    # Base relations
    # ------------------------------------------------------------------
    def _populate_base_estimates(self) -> None:
        for ref in self.query.relations:
            stats = self.catalog.statistics(ref.table)
            selectivity = estimate_selectivity(ref.filter, stats)
            estimate = stats.num_rows * selectivity
            estimate *= self.error_model.factor_for(ref.alias)
            estimate = max(estimate, 1.0)
            bound = self.rows_upper_bounds.get(ref.alias)
            if bound is not None:
                # A zone-map bound is a hard ceiling on matching rows, so it
                # caps the (error-injected) textbook estimate — including
                # past the 1-row floor when every block provably misses the
                # predicate (the floor only guards *unknown* selectivities).
                estimate = min(estimate, float(bound))
            self._base_estimates[ref.alias] = estimate

    def base_cardinality(self, alias: str) -> float:
        """Estimated cardinality of a (filtered) base relation."""
        try:
            return self._base_estimates[alias]
        except KeyError:
            raise OptimizerError(f"unknown relation alias {alias!r}") from None

    def distinct_count(self, alias: str, column: str) -> int:
        """Distinct count of ``alias.column`` from catalog statistics."""
        key = (alias, column)
        if key not in self._distinct_cache:
            ref = self.query.relation(alias)
            stats = self.catalog.statistics(ref.table)
            self._distinct_cache[key] = stats.distinct(column)
        return self._distinct_cache[key]

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------
    def join_cardinality(
        self,
        left_aliases: FrozenSet[str],
        right_aliases: FrozenSet[str],
        left_cardinality: float,
        right_cardinality: float,
    ) -> float:
        """Estimate ``|left ⋈ right|`` under the independence assumption.

        Every attribute class shared between the two sides contributes a
        ``1 / max(ndv)`` reduction factor.
        """
        shared = [
            ac
            for ac in self.graph.attribute_classes.values()
            if any(ac.touches(a) for a in left_aliases) and any(ac.touches(a) for a in right_aliases)
        ]
        if not shared:
            # Cartesian product.
            return left_cardinality * right_cardinality
        result = left_cardinality * right_cardinality
        for attr_class in shared:
            left_ndv = max(
                (self.distinct_count(a, attr_class.column_of(a)) for a in left_aliases if attr_class.touches(a)),
                default=1,
            )
            right_ndv = max(
                (self.distinct_count(a, attr_class.column_of(a)) for a in right_aliases if attr_class.touches(a)),
                default=1,
            )
            result /= max(left_ndv, right_ndv, 1)
        return max(result, 1.0)

    def estimate_plan_cardinalities(self, order: list[str]) -> list[float]:
        """Cardinality of every prefix of a left-deep join order."""
        if not order:
            return []
        cardinalities = [self.base_cardinality(order[0])]
        joined: set[str] = {order[0]}
        current = cardinalities[0]
        for alias in order[1:]:
            current = self.join_cardinality(
                frozenset(joined), frozenset({alias}), current, self.base_cardinality(alias)
            )
            joined.add(alias)
            cardinalities.append(current)
        return cardinalities
