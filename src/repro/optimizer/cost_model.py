"""Cost model used by the join-order optimizer.

The classic ``C_out`` cost model: the cost of a plan is the sum of the
estimated cardinalities of all intermediate join results (the final result
is included, which only shifts every plan by the same constant).  This is
the model DuckDB's join-order optimizer effectively minimizes and the one
used in the Moerkotte/Neumann DP literature the paper cites.

A small per-join build-side term can be enabled so the optimizer has a
reason to prefer the smaller input on the build side of a hash join, which
matters for the Figure 10 style discussion.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Weights of the optimizer's cost function."""

    #: Weight of every intermediate-result tuple (the C_out term).
    output_weight: float = 1.0
    #: Weight of every build-side tuple (hash-table construction).
    build_weight: float = 0.1
    #: Weight of every probe-side tuple (hash-table probing).
    probe_weight: float = 0.1

    def join_cost(self, probe_cardinality: float, build_cardinality: float, output_cardinality: float) -> float:
        """Cost of a single binary join."""
        return (
            self.output_weight * output_cardinality
            + self.build_weight * build_cardinality
            + self.probe_weight * probe_cardinality
        )


DEFAULT_COST_MODEL = CostModel()
