"""Join-order optimization: dynamic programming with a greedy fallback.

This mirrors the structure the paper describes for DuckDB's optimizer
(§2.1/§4.1): an exact dynamic program over connected subsets (DPccp-style,
here implemented as DP over subsets with a connectivity test) for queries
with a manageable number of relations, and a greedy algorithm (repeatedly
join the cheapest pair) for larger join graphs.

Both produce a :class:`~repro.plan.join_plan.JoinPlan`; the DP can be
restricted to left-deep plans or allowed to produce bushy plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from repro.core.join_graph import JoinGraph
from repro.errors import OptimizerError
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost_model import DEFAULT_COST_MODEL, CostModel
from repro.plan.join_plan import JoinNode, JoinPlan, LeafNode, PlanNode

#: Beyond this many relations the exact DP is abandoned for the greedy algorithm.
DP_RELATION_LIMIT = 10


@dataclass
class _SubPlan:
    """Best plan found so far for a subset of relations."""

    node: PlanNode
    cardinality: float
    cost: float


@dataclass(frozen=True)
class JoinOrderOptions:
    """Options for the join-order search."""

    left_deep_only: bool = False
    dp_relation_limit: int = DP_RELATION_LIMIT
    cost_model: CostModel = DEFAULT_COST_MODEL


class JoinOrderOptimizer:
    """Chooses a join order for a query given a cardinality estimator."""

    def __init__(
        self,
        graph: JoinGraph,
        estimator: CardinalityEstimator,
        options: Optional[JoinOrderOptions] = None,
    ) -> None:
        self.graph = graph
        self.estimator = estimator
        self.options = options or JoinOrderOptions()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def optimize(self) -> JoinPlan:
        """Return the chosen join plan (DP when feasible, greedy otherwise)."""
        aliases = list(self.graph.aliases)
        if not aliases:
            raise OptimizerError("cannot optimize a query with no relations")
        if len(aliases) == 1:
            return JoinPlan.single(aliases[0])
        if len(aliases) <= self.options.dp_relation_limit:
            return self._dynamic_programming()
        return self._greedy()

    # ------------------------------------------------------------------
    # Dynamic programming over connected subsets
    # ------------------------------------------------------------------
    def _dynamic_programming(self) -> JoinPlan:
        aliases = list(self.graph.aliases)
        best: Dict[FrozenSet[str], _SubPlan] = {}
        for alias in aliases:
            subset = frozenset({alias})
            best[subset] = _SubPlan(
                node=LeafNode(alias),
                cardinality=self.estimator.base_cardinality(alias),
                cost=0.0,
            )

        # Enumerate subsets by increasing size.
        all_subsets = sorted(self._connected_subsets(), key=len)
        for subset in all_subsets:
            if len(subset) == 1:
                continue
            best_plan: Optional[_SubPlan] = None
            for left, right in self._splits(subset):
                if left not in best or right not in best:
                    continue
                if not self._sides_connected(left, right):
                    continue
                if self.options.left_deep_only and len(right) != 1:
                    continue
                left_plan, right_plan = best[left], best[right]
                output = self.estimator.join_cardinality(
                    left, right, left_plan.cardinality, right_plan.cardinality
                )
                cost = (
                    left_plan.cost
                    + right_plan.cost
                    + self.options.cost_model.join_cost(
                        left_plan.cardinality, right_plan.cardinality, output
                    )
                )
                if best_plan is None or cost < best_plan.cost:
                    best_plan = _SubPlan(
                        node=JoinNode(left=left_plan.node, right=right_plan.node),
                        cardinality=output,
                        cost=cost,
                    )
            if best_plan is not None:
                best[subset] = best_plan

        full = frozenset(aliases)
        if full not in best:
            raise OptimizerError(
                f"query {self.graph.query.name!r} has a disconnected join graph; "
                "no Cartesian-product-free plan exists"
            )
        return JoinPlan(root=best[full].node)

    def _connected_subsets(self) -> list[FrozenSet[str]]:
        """All connected subsets of the join graph (exponential, bounded by the DP limit)."""
        aliases = list(self.graph.aliases)
        found: set[FrozenSet[str]] = {frozenset({a}) for a in aliases}
        frontier = list(found)
        while frontier:
            subset = frontier.pop()
            neighbors: set[str] = set()
            for alias in subset:
                neighbors |= self.graph.neighbors(alias)
            for neighbor in neighbors - set(subset):
                extended = frozenset(subset | {neighbor})
                if extended not in found:
                    found.add(extended)
                    frontier.append(extended)
        return sorted(found, key=lambda s: (len(s), sorted(s)))

    def _splits(self, subset: FrozenSet[str]):
        """All 2-partitions of a subset (each pair yielded once, both orders)."""
        members = sorted(subset)
        n = len(members)
        for bits in range(1, (1 << n) - 1):
            left = frozenset(members[i] for i in range(n) if bits & (1 << i))
            right = subset - left
            yield left, right

    def _sides_connected(self, left: FrozenSet[str], right: FrozenSet[str]) -> bool:
        return any(self.graph.neighbors(a) & right for a in left)

    # ------------------------------------------------------------------
    # Greedy fallback
    # ------------------------------------------------------------------
    def _greedy(self) -> JoinPlan:
        """Repeatedly join the pair of current sub-plans with the cheapest join."""
        plans: Dict[FrozenSet[str], _SubPlan] = {
            frozenset({a}): _SubPlan(
                node=LeafNode(a),
                cardinality=self.estimator.base_cardinality(a),
                cost=0.0,
            )
            for a in self.graph.aliases
        }
        while len(plans) > 1:
            best_pair: Optional[Tuple[FrozenSet[str], FrozenSet[str]]] = None
            best_cost = float("inf")
            best_output = 0.0
            keys = sorted(plans, key=lambda s: sorted(s))
            for i, left in enumerate(keys):
                for right in keys[i + 1:]:
                    if not self._sides_connected(left, right):
                        continue
                    left_plan, right_plan = plans[left], plans[right]
                    output = self.estimator.join_cardinality(
                        left, right, left_plan.cardinality, right_plan.cardinality
                    )
                    cost = self.options.cost_model.join_cost(
                        left_plan.cardinality, right_plan.cardinality, output
                    )
                    if cost < best_cost:
                        best_cost = cost
                        best_pair = (left, right)
                        best_output = output
            if best_pair is None:
                raise OptimizerError(
                    f"query {self.graph.query.name!r} has a disconnected join graph; "
                    "no Cartesian-product-free plan exists"
                )
            left, right = best_pair
            left_plan, right_plan = plans.pop(left), plans.pop(right)
            # Keep the smaller estimated side on the build (right) side.
            if left_plan.cardinality < right_plan.cardinality:
                node = JoinNode(left=right_plan.node, right=left_plan.node)
            else:
                node = JoinNode(left=left_plan.node, right=right_plan.node)
            plans[left | right] = _SubPlan(
                node=node,
                cardinality=best_output,
                cost=left_plan.cost + right_plan.cost + best_cost,
            )
        (final,) = plans.values()
        return JoinPlan(root=final.node)
