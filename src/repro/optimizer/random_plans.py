"""Random join-order generation (the probes of the robustness experiments).

Section 5.1 of the paper generates, for every query, ``N`` random left-deep
plans and ``N`` random bushy plans where ``N`` scales with the number of
joins (``N = 70·m − 190`` for ``3 ≤ m ≤ 17``, clamped to [20, 1000]).  Both
generators avoid Cartesian products:

* **left-deep**: start from a random base table and repeatedly append a
  random base table that is joinable (shares a join-graph edge) with the
  relations joined so far;
* **bushy**: repeatedly pick two random *joinable* entries from the
  candidate set (initially all base tables), join them, and put the
  intermediate back until one plan remains.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from repro.core.join_graph import JoinGraph
from repro.errors import OptimizerError
from repro.plan.join_plan import JoinNode, JoinPlan, LeafNode, PlanNode


def paper_sample_size(num_joins: int, minimum: int = 20, maximum: int = 1000) -> int:
    """The paper's sample-size rule ``N = 70·m − 190`` clamped to [minimum, maximum]."""
    return int(min(max(70 * num_joins - 190, minimum), maximum))


def random_left_deep_order(graph: JoinGraph, rng: random.Random) -> tuple[str, ...]:
    """One random Cartesian-product-free left-deep join order."""
    aliases = list(graph.aliases)
    if not aliases:
        raise OptimizerError("cannot generate a plan for a query with no relations")
    if len(aliases) == 1:
        return (aliases[0],)
    if not graph.is_connected():
        raise OptimizerError("random plan generation requires a connected join graph")
    order: List[str] = [rng.choice(sorted(aliases))]
    joined = set(order)
    while len(order) < len(aliases):
        candidates = sorted(
            alias
            for alias in aliases
            if alias not in joined and graph.neighbors(alias) & joined
        )
        if not candidates:
            raise OptimizerError("join graph became disconnected during plan generation")
        choice = rng.choice(candidates)
        order.append(choice)
        joined.add(choice)
    return tuple(order)


def random_left_deep_plan(graph: JoinGraph, rng: random.Random) -> JoinPlan:
    """One random left-deep :class:`JoinPlan`."""
    return JoinPlan.from_left_deep(random_left_deep_order(graph, rng))


def random_bushy_plan(graph: JoinGraph, rng: random.Random) -> JoinPlan:
    """One random Cartesian-product-free bushy :class:`JoinPlan`.

    Follows the paper's procedure: keep a candidate set of plan fragments
    (initially every base table); repeatedly remove two joinable fragments,
    join them, and insert the intermediate back.
    """
    aliases = list(graph.aliases)
    if not aliases:
        raise OptimizerError("cannot generate a plan for a query with no relations")
    if len(aliases) == 1:
        return JoinPlan.single(aliases[0])
    if not graph.is_connected():
        raise OptimizerError("random plan generation requires a connected join graph")

    fragments: List[PlanNode] = [LeafNode(a) for a in sorted(aliases)]
    while len(fragments) > 1:
        joinable_pairs = [
            (i, j)
            for i in range(len(fragments))
            for j in range(i + 1, len(fragments))
            if _fragments_joinable(graph, fragments[i], fragments[j])
        ]
        if not joinable_pairs:
            raise OptimizerError("no joinable fragments remain; join graph is disconnected")
        i, j = joinable_pairs[rng.randrange(len(joinable_pairs))]
        right = fragments.pop(j)
        left = fragments.pop(i)
        # Randomize which side becomes the build side, as a random bushy plan would.
        if rng.random() < 0.5:
            left, right = right, left
        fragments.append(JoinNode(left=left, right=right))
    return JoinPlan(root=fragments[0])


def generate_left_deep_plans(
    graph: JoinGraph,
    count: int,
    seed: int = 0,
    unique: bool = False,
) -> List[JoinPlan]:
    """Generate ``count`` random left-deep plans (optionally de-duplicated)."""
    rng = random.Random(seed)
    plans: List[JoinPlan] = []
    seen: set[tuple[str, ...]] = set()
    attempts = 0
    while len(plans) < count and attempts < count * 20:
        attempts += 1
        order = random_left_deep_order(graph, rng)
        if unique:
            if order in seen:
                continue
            seen.add(order)
        plans.append(JoinPlan.from_left_deep(order))
    return plans


def generate_bushy_plans(graph: JoinGraph, count: int, seed: int = 0) -> List[JoinPlan]:
    """Generate ``count`` random bushy plans."""
    rng = random.Random(seed)
    return [random_bushy_plan(graph, rng) for _ in range(count)]


def iter_all_left_deep_orders(graph: JoinGraph) -> Iterator[tuple[str, ...]]:
    """Exhaustively enumerate every Cartesian-product-free left-deep order.

    Exponential; intended for small queries in tests and case studies.
    """
    aliases = list(graph.aliases)
    if len(aliases) == 1:
        yield (aliases[0],)
        return

    def extend(order: List[str], joined: set[str]) -> Iterator[tuple[str, ...]]:
        if len(order) == len(aliases):
            yield tuple(order)
            return
        for alias in sorted(aliases):
            if alias in joined:
                continue
            if joined and not (graph.neighbors(alias) & joined):
                continue
            yield from extend(order + [alias], joined | {alias})

    for start in sorted(aliases):
        yield from extend([start], {start})


def _fragments_joinable(graph: JoinGraph, left: PlanNode, right: PlanNode) -> bool:
    return any(graph.neighbors(a) & right.aliases for a in left.aliases)
