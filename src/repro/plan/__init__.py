"""Join-phase plan representation (left-deep and bushy binary join trees)."""

from repro.plan.join_plan import (
    JoinNode,
    JoinPlan,
    LeafNode,
    PlanNode,
    plan_avoids_cartesian_products,
    validate_plan_for_query,
)

__all__ = [
    "JoinNode",
    "JoinPlan",
    "LeafNode",
    "PlanNode",
    "plan_avoids_cartesian_products",
    "validate_plan_for_query",
]
