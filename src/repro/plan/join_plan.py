"""Join-phase plan trees (left-deep and bushy).

A :class:`JoinPlan` describes *in which order* the (reduced) relations of a
query are combined with binary hash joins.  It deliberately carries no
physical details beyond build/probe sides — the execution layer resolves the
join keys from the query's join conditions.

Plans are binary trees whose leaves are relation aliases:

* a **left-deep** plan has a base relation as the right child of every join
  (the left child is the running intermediate);
* a **bushy** plan may join two intermediates.

By convention the *right* child of a join node is the build side (base
tables / smaller inputs in left-deep plans) and the *left* child is the
probe side, matching the paper's Figure 10 discussion of picking build
sides; the executor can flip sides per node for the Figure 10 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Union

from repro.errors import PlanError


@dataclass(frozen=True)
class LeafNode:
    """A plan leaf: one base relation occurrence."""

    alias: str

    @property
    def aliases(self) -> frozenset[str]:
        """The single alias of this leaf."""
        return frozenset({self.alias})

    def __repr__(self) -> str:
        return self.alias


@dataclass(frozen=True)
class JoinNode:
    """A binary join of two sub-plans.

    Attributes
    ----------
    left:
        Probe side (by convention).
    right:
        Build side (by convention).
    flip_build_side:
        When True the executor builds the hash table on ``left`` instead,
        reproducing the "wrong build side" scenario of Figure 10.
    """

    left: "PlanNode"
    right: "PlanNode"
    flip_build_side: bool = False

    @property
    def aliases(self) -> frozenset[str]:
        """All relation aliases below this node."""
        return self.left.aliases | self.right.aliases

    def __repr__(self) -> str:
        return f"({self.left!r} ⋈ {self.right!r})"


PlanNode = Union[LeafNode, JoinNode]


@dataclass(frozen=True)
class JoinPlan:
    """A complete join-phase plan for a query."""

    root: PlanNode

    @property
    def aliases(self) -> frozenset[str]:
        """All relation aliases joined by the plan."""
        return self.root.aliases

    @property
    def num_joins(self) -> int:
        """Number of binary join nodes."""
        return sum(1 for node in self.nodes() if isinstance(node, JoinNode))

    def nodes(self) -> Iterator[PlanNode]:
        """All plan nodes in post-order (children before parents)."""
        yield from _post_order(self.root)

    def join_nodes(self) -> Iterator[JoinNode]:
        """Only the join nodes, in execution (post) order."""
        for node in self.nodes():
            if isinstance(node, JoinNode):
                yield node

    def is_left_deep(self) -> bool:
        """True when every join's right child is a leaf and the left spine nests."""
        node = self.root
        while isinstance(node, JoinNode):
            if not isinstance(node.right, LeafNode):
                return False
            node = node.left
        return isinstance(node, LeafNode)

    def left_deep_order(self) -> tuple[str, ...]:
        """The relation order of a left-deep plan, first-joined first.

        Raises
        ------
        PlanError
            If the plan is not left-deep.
        """
        if not self.is_left_deep():
            raise PlanError("plan is not left-deep")
        reversed_order: list[str] = []
        node = self.root
        while isinstance(node, JoinNode):
            assert isinstance(node.right, LeafNode)
            reversed_order.append(node.right.alias)
            node = node.left
        assert isinstance(node, LeafNode)
        reversed_order.append(node.alias)
        return tuple(reversed(reversed_order))

    def describe(self) -> str:
        """A single-line human-readable rendering of the plan."""
        return repr(self.root)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_left_deep(cls, order: Sequence[str]) -> "JoinPlan":
        """Build a left-deep plan joining relations in the given order."""
        if not order:
            raise PlanError("a join plan needs at least one relation")
        node: PlanNode = LeafNode(order[0])
        for alias in order[1:]:
            node = JoinNode(left=node, right=LeafNode(alias))
        return cls(root=node)

    @classmethod
    def single(cls, alias: str) -> "JoinPlan":
        """A trivial plan over a single relation."""
        return cls(root=LeafNode(alias))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JoinPlan({self.describe()})"


def _post_order(node: PlanNode) -> Iterator[PlanNode]:
    if isinstance(node, JoinNode):
        yield from _post_order(node.left)
        yield from _post_order(node.right)
    yield node


def validate_plan_for_query(plan: JoinPlan, aliases: Sequence[str]) -> None:
    """Check that ``plan`` joins exactly the relations of the query.

    Raises
    ------
    PlanError
        If leaves are missing, duplicated, or unknown.
    """
    leaf_aliases = [node.alias for node in plan.nodes() if isinstance(node, LeafNode)]
    if len(leaf_aliases) != len(set(leaf_aliases)):
        raise PlanError("join plan references a relation more than once")
    expected = set(aliases)
    actual = set(leaf_aliases)
    if actual != expected:
        missing = expected - actual
        extra = actual - expected
        raise PlanError(
            f"join plan does not cover the query's relations "
            f"(missing={sorted(missing)}, extra={sorted(extra)})"
        )


def plan_avoids_cartesian_products(plan: JoinPlan, neighbors: dict[str, frozenset[str]]) -> bool:
    """True when every join node connects two sides that share a join edge."""
    for node in plan.join_nodes():
        left_aliases = node.left.aliases
        right_aliases = node.right.aliases
        connected = any(
            bool(neighbors.get(a, frozenset()) & right_aliases) for a in left_aliases
        )
        if not connected:
            return False
    return True
