"""The PhysicalPlan IR: one op vocabulary for the transfer *and* join phases.

Historically the engine hard-wired two unrelated executors — a transfer-phase
executor walking a :class:`~repro.core.transfer_schedule.TransferSchedule`
and a join-phase executor walking a :class:`~repro.plan.join_plan.JoinPlan`
tree — glued together imperatively inside ``Database.execute``.  This module
replaces that with the architectural move pipeline engines (DuckDB and its
descendants) make: every :class:`~repro.engine.modes.ExecutionMode` *compiles*
``(QuerySpec, JoinPlan, TransferSchedule)`` into a single ordered list of
typed physical ops, and one backend-pluggable executor
(:class:`~repro.exec.pipeline.PipelineExecutor`) runs that list.

The op vocabulary:

================  ==========================================================
op                meaning
================  ==========================================================
``Scan``          bind one base-table occurrence into the execution
``FilterPush``    apply the relation's pushed-down base predicate
``BloomBuild``    build + publish a Bloom filter over a side's join keys
``BloomProbe``    probe a published filter and reduce the target side
``SemiJoinReduce``exact (hash) semi-join reduction (Yannakakis transfer)
``HashBuild``     materialize the build side of one hash join
``HashProbe``     probe it, producing a new intermediate slot
``Partition``     radix-partition a large build side (cache locality + the
                  granularity of parallel builds and governed spilling)
``PartitionedHashBuild``  per-partition index builds (parallel partial builds)
``PartitionedHashProbe``  per-partition probe, producing an intermediate slot
``Aggregate``     compute the query's aggregates over the final slot
================  ==========================================================

Ops reference their inputs through :class:`Operand` — either a bound base
relation (by alias) or a numbered intermediate *slot* produced by an earlier
``HashProbe``.  Transfer-phase ops reduce bound relations in place; the join
phase flows through slots.  Because the whole execution is one flat op list,
``ExecutionStats.op_stats`` yields a uniform per-op trace for all five modes
and alternative backends (serial, chunked/morsel) plug in beneath the same
plan.

Compilation is pure: the functions here inspect only the query, the join
graph, table metadata (for §4.3 PK-FK pruning hints), the schedule, and the
join plan — no data is touched until the executor runs the plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple

from repro.core.join_graph import JoinGraph
from repro.core.transfer_schedule import TransferSchedule, TransferStep
from repro.errors import PlanError
from repro.plan.join_plan import JoinNode, JoinPlan, LeafNode, PlanNode
from repro.query import QuerySpec
from repro.storage.table import Table

#: Scope tag for ops belonging to the transfer phase.
SCOPE_TRANSFER = "transfer"
#: Scope tag for ops belonging to the join phase (per-join SIP filters).
SCOPE_JOIN = "join"


@dataclass(frozen=True)
class Operand:
    """Reference to a pipeline input: a bound base relation or an intermediate slot."""

    kind: str  # "relation" | "slot"
    alias: str = ""
    slot: int = -1

    @classmethod
    def relation(cls, alias: str) -> "Operand":
        """Reference a bound base-table occurrence by alias."""
        return cls(kind="relation", alias=alias)

    @classmethod
    def intermediate(cls, slot: int) -> "Operand":
        """Reference the output slot of an earlier ``HashProbe``."""
        return cls(kind="slot", slot=slot)

    @property
    def is_relation(self) -> bool:
        """True when this operand names a base relation."""
        return self.kind == "relation"

    def describe(self) -> str:
        """Short printable form (``alias`` or ``$slot``)."""
        return self.alias if self.is_relation else f"${self.slot}"

    def token(self) -> str:
        """Dependency token of this operand (see ``PhysicalOp.provides``)."""
        return f"rel:{self.alias}" if self.is_relation else f"slot:{self.slot}"


@dataclass(frozen=True)
class PhysicalOp:
    """Base class of every physical op (see module docstring for the vocabulary)."""

    kind = "op"

    def describe(self) -> str:
        """One-line human-readable rendering of the op."""
        return self.kind

    # ------------------------------------------------------------------
    # Dependency metadata
    # ------------------------------------------------------------------
    # Each op declares the dependency tokens it consumes (``requires``) and
    # the tokens it makes available to later ops (``provides``).  Tokens are
    # plain strings: ``rel:<alias>`` (a bound relation's current state),
    # ``slot:<n>`` (an intermediate result), ``stage:<step_id>`` (the filter
    # handed from a transfer build to its probe), and ``build:<id>`` (a
    # staged hash-join build side).  The metadata is *static* — derived from
    # the op fields alone — and is what the adaptive transfer controller
    # walks to cancel builds whose only consumers have been cancelled.
    def provides(self) -> Tuple[str, ...]:
        """Dependency tokens this op produces for downstream ops."""
        return ()

    def requires(self) -> Tuple[str, ...]:
        """Dependency tokens this op consumes from upstream ops."""
        return ()


@dataclass(frozen=True)
class Scan(PhysicalOp):
    """Bind one base-table occurrence (``alias`` over catalog table ``table``)."""

    alias: str
    table: str
    kind = "scan"

    def describe(self) -> str:
        return f"scan {self.alias} ({self.table})"

    def provides(self) -> Tuple[str, ...]:
        return (f"rel:{self.alias}",)


@dataclass(frozen=True)
class FilterPush(PhysicalOp):
    """Apply ``alias``'s pushed-down base predicate to its bound relation."""

    alias: str
    kind = "filter_push"

    def describe(self) -> str:
        return f"filter {self.alias}"

    def provides(self) -> Tuple[str, ...]:
        return (f"rel:{self.alias}",)

    def requires(self) -> Tuple[str, ...]:
        return (f"rel:{self.alias}",)


@dataclass(frozen=True)
class BloomBuild(PhysicalOp):
    """Build and publish a Bloom filter over ``source``'s current join-key values.

    ``target`` is carried for key resolution only: composite join keys are
    densified with a dictionary shared by both sides, so the build op must
    know which probe side it pairs with.  ``prunable`` marks steps that are
    *statically* trivial (single-attribute PK side of a declared PK-FK join,
    §4.3); the executor skips the build/probe pair at runtime when the source
    is additionally still unfiltered.
    """

    step_id: int
    source: Operand
    target: Operand
    attributes: Tuple[str, ...]
    pass_: str
    scope: str = SCOPE_TRANSFER
    prunable: bool = False
    kind = "bloom_build"

    def describe(self) -> str:
        return f"bloom_build {self.source.describe()} [{','.join(self.attributes)}] ({self.pass_})"

    def provides(self) -> Tuple[str, ...]:
        return (f"stage:{self.step_id}",)

    def requires(self) -> Tuple[str, ...]:
        # Composite keys are densified jointly with the probe side, so the
        # build of a multi-attribute step reads the target too.
        if len(self.attributes) > 1:
            return (self.source.token(), self.target.token())
        return (self.source.token(),)


@dataclass(frozen=True)
class BloomProbe(PhysicalOp):
    """Probe the step's published Bloom filter with ``target`` and drop misses."""

    step_id: int
    source: Operand
    target: Operand
    attributes: Tuple[str, ...]
    pass_: str
    scope: str = SCOPE_TRANSFER
    kind = "bloom_probe"

    def describe(self) -> str:
        return (
            f"bloom_probe {self.target.describe()} ⋉ {self.source.describe()} "
            f"[{','.join(self.attributes)}] ({self.pass_})"
        )

    def provides(self) -> Tuple[str, ...]:
        return (self.target.token(),)

    def requires(self) -> Tuple[str, ...]:
        return (f"stage:{self.step_id}", self.target.token())


@dataclass(frozen=True)
class SemiJoinReduce(PhysicalOp):
    """Exact semi-join reduction ``target ⋉ source`` (the Yannakakis transfer step)."""

    step_id: int
    source: Operand
    target: Operand
    attributes: Tuple[str, ...]
    pass_: str
    prunable: bool = False
    kind = "semi_join_reduce"

    def describe(self) -> str:
        return (
            f"semi_join {self.target.describe()} ⋉ {self.source.describe()} "
            f"[{','.join(self.attributes)}] ({self.pass_})"
        )

    def provides(self) -> Tuple[str, ...]:
        return (self.target.token(),)

    def requires(self) -> Tuple[str, ...]:
        return (self.source.token(), self.target.token())


@dataclass(frozen=True)
class Partition(PhysicalOp):
    """Radix-partition the build side of one hash join into ``2**bits`` partitions.

    The partitioning itself is O(n) (a multiplicative hash plus a radix sort
    of the small partition ids); the per-partition index builds are the
    paired ``PartitionedHashBuild``'s job.  Partitioning is compiled in when
    the *estimated* build side is large enough that a monolithic sort and
    cache-missing probes would dominate (see ``compile_join_ops``), and it is
    the granularity at which the memory governor reserves, spills, and
    reloads build-side memory.
    """

    build_id: int
    input: Operand
    attributes: Tuple[str, ...]
    bits: int
    kind = "partition"

    def describe(self) -> str:
        return (
            f"partition #{self.build_id} {self.input.describe()} "
            f"[{','.join(self.attributes)}] into 2^{self.bits}"
        )

    def provides(self) -> Tuple[str, ...]:
        return (f"build:{self.build_id}",)

    def requires(self) -> Tuple[str, ...]:
        return (self.input.token(),)


@dataclass(frozen=True)
class PartitionedHashBuild(PhysicalOp):
    """Build the per-partition hash indexes of a radix-partitioned build side.

    Every non-empty partition is an independent sort — the per-worker partial
    builds a morsel-parallel backend runs concurrently; the op completes only
    when all partitions are built (the pipeline-breaker merge).
    """

    build_id: int
    input: Operand
    attributes: Tuple[str, ...]
    kind = "partitioned_hash_build"

    def describe(self) -> str:
        return (
            f"partitioned_hash_build #{self.build_id} {self.input.describe()} "
            f"[{','.join(self.attributes)}]"
        )

    def provides(self) -> Tuple[str, ...]:
        return (f"build:{self.build_id}",)

    def requires(self) -> Tuple[str, ...]:
        return (f"build:{self.build_id}", self.input.token())


@dataclass(frozen=True)
class PartitionedHashProbe(PhysicalOp):
    """Probe a radix-partitioned build with ``probe``, emitting slot ``output_slot``.

    The probe side is partitioned with the same key hash and each partition
    is matched only against its build counterpart — shorter binary searches
    over cache-resident segments, and one independent task per partition for
    the parallel backend.
    """

    build_id: int
    probe: Operand
    output_slot: int
    attributes: Tuple[str, ...]
    kind = "partitioned_hash_probe"

    def describe(self) -> str:
        return (
            f"partitioned_hash_probe #{self.build_id} {self.probe.describe()} "
            f"[{','.join(self.attributes)}] -> ${self.output_slot}"
        )

    def provides(self) -> Tuple[str, ...]:
        return (f"slot:{self.output_slot}",)

    def requires(self) -> Tuple[str, ...]:
        return (f"build:{self.build_id}", self.probe.token())


@dataclass(frozen=True)
class HashBuild(PhysicalOp):
    """Materialize the build side of one hash join (build id ``build_id``).

    For single-attribute joins the op also gathers the build keys and sorts
    the hash index, so its trace entry carries the build cost.  Composite
    keys must be densified jointly with the probe side, so for
    multi-attribute joins that work happens in the paired ``HashProbe`` and
    this op's trace time covers materialization only.
    """

    build_id: int
    input: Operand
    attributes: Tuple[str, ...]
    kind = "hash_build"

    def describe(self) -> str:
        return f"hash_build #{self.build_id} {self.input.describe()} [{','.join(self.attributes)}]"

    def provides(self) -> Tuple[str, ...]:
        return (f"build:{self.build_id}",)

    def requires(self) -> Tuple[str, ...]:
        return (self.input.token(),)


@dataclass(frozen=True)
class HashProbe(PhysicalOp):
    """Probe hash build ``build_id`` with ``probe``, emitting slot ``output_slot``.

    An empty ``attributes`` tuple marks a Cartesian product (the two sides
    share no attribute class); the executor rejects it unless explicitly
    allowed.
    """

    build_id: int
    probe: Operand
    output_slot: int
    attributes: Tuple[str, ...]
    kind = "hash_probe"

    def describe(self) -> str:
        keys = ",".join(self.attributes) if self.attributes else "⨯"
        return f"hash_probe #{self.build_id} {self.probe.describe()} [{keys}] -> ${self.output_slot}"

    def provides(self) -> Tuple[str, ...]:
        return (f"slot:{self.output_slot}",)

    def requires(self) -> Tuple[str, ...]:
        return (f"build:{self.build_id}", self.probe.token())


@dataclass(frozen=True)
class Aggregate(PhysicalOp):
    """Compute the query's aggregates over the final joined slot."""

    input: Operand
    kind = "aggregate"

    def describe(self) -> str:
        return f"aggregate {self.input.describe()}"

    def requires(self) -> Tuple[str, ...]:
        return (self.input.token(),)


@dataclass(frozen=True)
class PhysicalPlan:
    """A fully compiled physical execution plan: one flat, ordered op list."""

    query_name: str
    mode: str
    ops: Tuple[PhysicalOp, ...]
    num_slots: int = 0
    root: Optional[Operand] = None

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def op_kinds(self) -> Tuple[str, ...]:
        """The ordered op-kind sequence (what the compilation tests assert on)."""
        return tuple(op.kind for op in self.ops)

    def count(self, kind: str) -> int:
        """Number of ops of one kind."""
        return sum(1 for op in self.ops if op.kind == kind)

    def describe(self) -> str:
        """Multi-line rendering of the compiled plan."""
        header = f"PhysicalPlan(query={self.query_name!r}, mode={self.mode}, ops={len(self.ops)})"
        return "\n".join([header] + [f"  {i:>3}: {op.describe()}" for i, op in enumerate(self.ops)])


# ---------------------------------------------------------------------------
# Compilers
# ---------------------------------------------------------------------------
def compile_scan_filter(query: QuerySpec) -> List[PhysicalOp]:
    """Scan every relation occurrence and push its base filter (when present)."""
    ops: List[PhysicalOp] = []
    for ref in query.relations:
        ops.append(Scan(alias=ref.alias, table=ref.table))
    for ref in query.relations:
        if ref.filter is not None:
            ops.append(FilterPush(alias=ref.alias))
    return ops


def compile_transfer_ops(
    schedule: TransferSchedule,
    graph: JoinGraph,
    tables: Mapping[str, Table],
    use_bloom: bool = True,
    first_step_id: int = 0,
) -> List[PhysicalOp]:
    """Compile a transfer schedule onto the shared op set.

    Each ``target ⋉ source`` step becomes a ``BloomBuild``/``BloomProbe``
    pair (Predicate Transfer) or a single ``SemiJoinReduce`` (exact
    Yannakakis).  The §4.3 PK-FK triviality hint is resolved statically from
    table metadata and attached to the ops; the runtime half of the check
    (source still unfiltered) stays with the executor.
    """
    ops: List[PhysicalOp] = []
    step_id = first_step_id
    for step in schedule:
        prunable = _statically_prunable(step, graph, tables)
        source = Operand.relation(step.source)
        target = Operand.relation(step.target)
        if use_bloom:
            ops.append(
                BloomBuild(
                    step_id=step_id,
                    source=source,
                    target=target,
                    attributes=step.attributes,
                    pass_=step.pass_.value,
                    prunable=prunable,
                )
            )
            ops.append(
                BloomProbe(
                    step_id=step_id,
                    source=source,
                    target=target,
                    attributes=step.attributes,
                    pass_=step.pass_.value,
                )
            )
        else:
            ops.append(
                SemiJoinReduce(
                    step_id=step_id,
                    source=source,
                    target=target,
                    attributes=step.attributes,
                    pass_=step.pass_.value,
                    prunable=prunable,
                )
            )
        step_id += 1
    return ops


def compile_join_ops(
    plan: JoinPlan,
    graph: JoinGraph,
    bloom_prefilter: bool = False,
    first_build_id: int = 0,
    partition_threshold: Optional[int] = None,
    partition_bits: int = 0,
) -> Tuple[List[PhysicalOp], Operand, int]:
    """Compile a join-plan tree into ``HashBuild``/``HashProbe`` ops.

    The tree is walked in post-order; every join node becomes a build/probe
    pair over operands (leaf aliases or earlier output slots), with the join
    attributes resolved *statically* from the graph's attribute classes and
    the two subtrees' alias sets.  With ``bloom_prefilter`` (the Bloom Join
    baseline) a join-scoped ``BloomBuild``/``BloomProbe`` pair precedes each
    hash join, pre-filtering the probe side.

    With ``partition_threshold``/``partition_bits`` set, single-attribute
    joins whose *estimated* build side reaches the threshold compile to the
    radix-partitioned form instead: ``Partition`` + ``PartitionedHashBuild``
    + ``PartitionedHashProbe``.  The estimate is static (the graph's filtered
    base cardinalities; for intermediate build sides the largest member
    relation), keeping compilation pure.  Composite-key and Cartesian joins
    always take the monolithic form.

    Returns ``(ops, root_operand, num_slots)``.
    """
    ops: List[PhysicalOp] = []
    counter = {"build": first_build_id, "slot": 0}

    def estimated_rows(aliases) -> int:
        return max((graph.size(alias) for alias in aliases), default=0)

    def walk(node: PlanNode) -> Operand:
        if isinstance(node, LeafNode):
            return Operand.relation(node.alias)
        assert isinstance(node, JoinNode)
        left = walk(node.left)
        right = walk(node.right)
        probe, build = (right, left) if node.flip_build_side else (left, right)
        probe_aliases = node.right.aliases if node.flip_build_side else node.left.aliases
        build_aliases = node.left.aliases if node.flip_build_side else node.right.aliases
        attributes = shared_attribute_classes(graph, probe_aliases, build_aliases)
        build_id = counter["build"]
        counter["build"] += 1
        if bloom_prefilter and attributes:
            ops.append(
                BloomBuild(
                    step_id=build_id,
                    source=build,
                    target=probe,
                    attributes=attributes,
                    pass_=SCOPE_JOIN,
                    scope=SCOPE_JOIN,
                )
            )
            ops.append(
                BloomProbe(
                    step_id=build_id,
                    source=build,
                    target=probe,
                    attributes=attributes,
                    pass_=SCOPE_JOIN,
                    scope=SCOPE_JOIN,
                )
            )
        slot = counter["slot"]
        counter["slot"] += 1
        partitioned = (
            partition_threshold is not None
            and partition_bits > 0
            and len(attributes) == 1
            and estimated_rows(build_aliases) >= partition_threshold
        )
        if partitioned:
            ops.append(
                Partition(
                    build_id=build_id, input=build, attributes=attributes, bits=partition_bits
                )
            )
            ops.append(
                PartitionedHashBuild(build_id=build_id, input=build, attributes=attributes)
            )
            ops.append(
                PartitionedHashProbe(
                    build_id=build_id, probe=probe, output_slot=slot, attributes=attributes
                )
            )
        else:
            ops.append(HashBuild(build_id=build_id, input=build, attributes=attributes))
            ops.append(
                HashProbe(build_id=build_id, probe=probe, output_slot=slot, attributes=attributes)
            )
        return Operand.intermediate(slot)

    root = walk(plan.root)
    return ops, root, counter["slot"]


def compile_execution(
    query: QuerySpec,
    mode,
    plan: JoinPlan,
    graph: JoinGraph,
    tables: Mapping[str, Table],
    schedule: Optional[TransferSchedule] = None,
    partition_threshold: Optional[int] = None,
    partition_bits: int = 0,
) -> PhysicalPlan:
    """Compile one full query execution (every phase) into a PhysicalPlan.

    This is what ``Database.execute`` calls: scan + filter pushdown, the
    mode's transfer phase (if any), the join phase (with per-join SIP
    filters for the Bloom Join baseline, and radix-partitioned hash joins
    for estimated build sides at or above ``partition_threshold``), and the
    final aggregation.
    """
    ops: List[PhysicalOp] = compile_scan_filter(query)
    if mode.uses_transfer_phase:
        if schedule is None:
            raise PlanError(f"mode {mode} requires a transfer schedule to compile")
        ops.extend(
            compile_transfer_ops(
                schedule, graph, tables, use_bloom=mode.uses_bloom_filters
            )
        )
    join_ops, root, num_slots = compile_join_ops(
        plan,
        graph,
        bloom_prefilter=mode.uses_per_join_bloom,
        partition_threshold=partition_threshold,
        partition_bits=partition_bits,
    )
    ops.extend(join_ops)
    ops.append(Aggregate(input=root))
    return PhysicalPlan(
        query_name=query.name,
        mode=getattr(mode, "value", str(mode)),
        ops=tuple(ops),
        num_slots=num_slots,
        root=root,
    )


# ---------------------------------------------------------------------------
# Static analysis helpers
# ---------------------------------------------------------------------------
def shared_attribute_classes(
    graph: JoinGraph,
    left_aliases: frozenset,
    right_aliases: frozenset,
) -> Tuple[str, ...]:
    """Attribute classes with member columns on both sides of a join.

    This implements transitive equality inference (``R.a = S.b AND S.b = T.c``
    lets ``R`` join ``T`` directly) at compile time — the alias sets of both
    subtrees are known statically.
    """
    shared: List[str] = []
    for name, attr_class in sorted(graph.attribute_classes.items()):
        touches_left = any(attr_class.touches(a) for a in left_aliases)
        touches_right = any(attr_class.touches(a) for a in right_aliases)
        if touches_left and touches_right:
            shared.append(name)
    return tuple(shared)


def _statically_prunable(
    step: TransferStep, graph: JoinGraph, tables: Mapping[str, Table]
) -> bool:
    """§4.3 hint: the source is the PK side of a declared single-attribute PK-FK join."""
    if len(step.attributes) != 1:
        return False
    attr_class = graph.attribute_classes[step.attributes[0]]
    source_table = tables.get(step.source)
    target_table = tables.get(step.target)
    if source_table is None or target_table is None:
        return False
    source_column = attr_class.column_of(step.source)
    target_column = attr_class.column_of(step.target)
    if not source_table.is_primary_key(source_column):
        return False
    for fk in target_table.foreign_keys:
        if fk.column == target_column and fk.ref_table == source_table.name:
            return True
    return False
