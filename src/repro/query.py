"""Declarative query specification.

The engine does not parse SQL; queries are described by :class:`QuerySpec`
objects that carry exactly the information the join-ordering / predicate
transfer algorithms operate on:

* which base tables participate (with per-relation aliases, so the same
  table may appear multiple times, as in JOB and TPC-DS),
* the per-relation filter predicates,
* the equi-join conditions between relations, and
* optional *post-join* predicates that reference columns of more than one
  relation and therefore cannot be pushed below the joins (the paper calls
  these out for TPC-DS Q13/Q48).

A :class:`QuerySpec` is a pure description — executing it is the job of the
engine (:mod:`repro.engine`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.errors import PlanError
from repro.expr.expressions import Expression


@dataclass(frozen=True)
class RelationRef:
    """One occurrence of a base table in a query.

    Attributes
    ----------
    alias:
        Unique name of this occurrence within the query (e.g. ``"mk"``).
    table:
        Name of the underlying catalog table (e.g. ``"movie_keyword"``).
    filter:
        Optional base-table predicate applied before any join processing.
    """

    alias: str
    table: str
    filter: Optional[Expression] = None

    def __post_init__(self) -> None:
        if not self.alias or not self.table:
            raise PlanError(
                "relation alias and table name must be non-empty "
                f"(got alias={self.alias!r}, table={self.table!r})"
            )


@dataclass(frozen=True)
class JoinCondition:
    """An equi-join predicate ``left_alias.left_column = right_alias.right_column``."""

    left_alias: str
    left_column: str
    right_alias: str
    right_column: str

    def __post_init__(self) -> None:
        if self.left_alias == self.right_alias:
            raise PlanError(
                f"join condition must reference two distinct relations, got {self.left_alias!r} twice"
            )

    def aliases(self) -> frozenset[str]:
        """The pair of relation aliases this condition connects."""
        return frozenset({self.left_alias, self.right_alias})

    def side(self, alias: str) -> str:
        """Return the column of this condition belonging to ``alias``."""
        if alias == self.left_alias:
            return self.left_column
        if alias == self.right_alias:
            return self.right_column
        raise PlanError(f"alias {alias!r} does not participate in join condition {self}")

    def __repr__(self) -> str:
        return f"{self.left_alias}.{self.left_column} = {self.right_alias}.{self.right_column}"


@dataclass(frozen=True)
class QualifiedComparison:
    """A comparison on a qualified column (``alias.column <op> value``).

    Used inside :class:`PostJoinPredicate` for predicates that span relations.
    """

    alias: str
    column: str
    op: str
    value: Any


@dataclass(frozen=True)
class PostJoinPredicate:
    """A predicate over columns of multiple relations (cannot be pushed down).

    The predicate is a disjunction of conjunctions (OR of ANDs) of
    :class:`QualifiedComparison` terms, which covers the shape the paper
    highlights for TPC-DS Q13/Q48, e.g.::

        (R.a < 100 AND S.b < 200) OR (R.a > 500 AND S.b > 400)
    """

    disjuncts: tuple[tuple[QualifiedComparison, ...], ...]

    def required_aliases(self) -> frozenset[str]:
        """Aliases whose columns the predicate reads."""
        return frozenset(
            term.alias for conjunct in self.disjuncts for term in conjunct
        )


@dataclass(frozen=True)
class AggregateSpec:
    """A single aggregate in the query output, e.g. ``SUM(l.extendedprice)``.

    ``function`` is one of ``count``, ``sum``, ``min``, ``max``, ``avg``;
    ``alias``/``column`` identify the input (ignored for ``count(*)``, where
    both may be ``None``).
    """

    function: str
    alias: Optional[str] = None
    column: Optional[str] = None
    output_name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.function not in ("count", "sum", "min", "max", "avg"):
            raise PlanError(
                f"unsupported aggregate function {self.function!r} "
                "(expected count, sum, min, max, or avg)"
            )
        if self.function != "count" and (self.alias is None or self.column is None):
            raise PlanError(
                f"aggregate {self.function!r} requires an input column "
                f"(got alias={self.alias!r}, column={self.column!r})"
            )


@dataclass(frozen=True)
class QuerySpec:
    """A complete declarative query.

    Attributes
    ----------
    name:
        Identifier used in benchmark reporting (e.g. ``"job_2a"``).
    relations:
        The participating relation occurrences.
    joins:
        Equi-join conditions connecting the relations.
    aggregates:
        Output aggregates; defaults to a single ``count(*)`` which is the
        standard way robustness studies measure join work.
    post_join_predicates:
        Predicates spanning multiple relations, applied once all the
        relations they reference have been joined.
    """

    name: str
    relations: tuple[RelationRef, ...]
    joins: tuple[JoinCondition, ...]
    aggregates: tuple[AggregateSpec, ...] = field(
        default=(AggregateSpec(function="count", output_name="count_star"),)
    )
    post_join_predicates: tuple[PostJoinPredicate, ...] = field(default=())

    def __post_init__(self) -> None:
        aliases = [r.alias for r in self.relations]
        if len(set(aliases)) != len(aliases):
            duplicated = sorted({a for a in aliases if aliases.count(a) > 1})
            raise PlanError(
                f"query {self.name!r} has duplicate relation aliases: {duplicated}"
            )
        known = set(aliases)
        for join in self.joins:
            for alias in (join.left_alias, join.right_alias):
                if alias not in known:
                    raise PlanError(
                        f"query {self.name!r}: join condition {join!r} references "
                        f"unknown alias {alias!r} (declared: {sorted(known)})"
                    )
        for predicate in self.post_join_predicates:
            missing = predicate.required_aliases() - known
            if missing:
                raise PlanError(
                    f"query {self.name!r}: post-join predicate references unknown "
                    f"aliases {sorted(missing)} (declared: {sorted(known)})"
                )

    # ------------------------------------------------------------------
    # Introspection helpers used throughout the optimizer / core package
    # ------------------------------------------------------------------
    @property
    def aliases(self) -> tuple[str, ...]:
        """All relation aliases, in declaration order."""
        return tuple(r.alias for r in self.relations)

    @property
    def num_joins(self) -> int:
        """Number of join conditions."""
        return len(self.joins)

    def relation(self, alias: str) -> RelationRef:
        """Return the relation occurrence with the given alias."""
        for ref in self.relations:
            if ref.alias == alias:
                return ref
        raise PlanError(f"query {self.name!r} has no relation aliased {alias!r}")

    def joins_between(self, left: str, right: str) -> tuple[JoinCondition, ...]:
        """All join conditions connecting the two aliases (order-insensitive)."""
        pair = frozenset({left, right})
        return tuple(j for j in self.joins if j.aliases() == pair)

    def joins_involving(self, alias: str) -> tuple[JoinCondition, ...]:
        """All join conditions one of whose sides is ``alias``."""
        return tuple(j for j in self.joins if alias in j.aliases())

    def neighbors(self, alias: str) -> frozenset[str]:
        """Aliases directly joined with ``alias``."""
        result: set[str] = set()
        for join in self.joins:
            if alias in join.aliases():
                result.update(join.aliases() - {alias})
        return frozenset(result)

    def is_connected(self) -> bool:
        """True when the join graph of the query is a single connected component."""
        if not self.relations:
            return True
        seen = {self.relations[0].alias}
        frontier = [self.relations[0].alias]
        while frontier:
            current = frontier.pop()
            for neighbor in self.neighbors(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(self.relations)

    def with_aggregates(self, aggregates: Sequence[AggregateSpec]) -> "QuerySpec":
        """Return a copy of the query with different output aggregates."""
        return QuerySpec(
            name=self.name,
            relations=self.relations,
            joins=self.joins,
            aggregates=tuple(aggregates),
            post_join_predicates=self.post_join_predicates,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QuerySpec({self.name!r}, relations={len(self.relations)}, joins={len(self.joins)})"


def count_star(name: str = "count_star") -> AggregateSpec:
    """The default ``COUNT(*)`` aggregate."""
    return AggregateSpec(function="count", output_name=name)
