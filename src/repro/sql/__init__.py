"""SQL front end: lexer → parser → binder → :class:`~repro.query.QuerySpec` lowering.

The engine's execution stack — optimizer, transfer phase, physical-plan
compiler, backends — consumes :class:`~repro.query.QuerySpec` objects.  This
package turns SQL text into those objects, so every ``.sql`` file anyone can
write becomes a workload for all five execution modes::

    from repro import Database, ExecutionMode
    result = db.sql("SELECT COUNT(*) FROM orders o, lineitem l "
                    "WHERE l.l_orderkey = o.o_orderkey")

Pipeline stages (each usable on its own):

* :func:`repro.sql.lexer.tokenize` — text → tokens with source offsets;
* :func:`repro.sql.parser.parse_statement` — tokens → typed AST;
* :func:`repro.sql.binder.bind_select` — AST + catalog → name-resolved
  :class:`~repro.sql.binder.BoundSelect` (caret diagnostics on unknown /
  ambiguous names);
* :func:`repro.sql.lower.lower_select` — bound AST → ``QuerySpec`` (WHERE
  conjuncts classified into base filters, equi-joins, post-join predicates);
* :func:`repro.sql.format.to_sql` — the inverse: ``QuerySpec`` → SQL text
  with the round-trip guarantee ``compile(to_sql(spec)) == spec``.

Every front-end failure raises :class:`~repro.errors.SqlError` carrying the
source text and character offset; ``str(error)`` renders a caret under the
offending position.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.query import QuerySpec
from repro.sql.ast import SelectStatement
from repro.sql.binder import BoundSelect, bind_select
from repro.sql.format import format_expression, format_value, to_sql
from repro.sql.lexer import Token, default_name, tokenize
from repro.sql.lower import lower_select
from repro.sql.parser import parse_statement, split_statements
from repro.storage.catalog import Catalog


@dataclass(frozen=True)
class CompiledStatement:
    """The result of compiling one SQL statement against a catalog."""

    #: The lowered query, ready for ``Database.execute``.
    query: QuerySpec
    #: True when the statement was ``EXPLAIN SELECT ...``.
    explain: bool
    #: The parsed (pre-binding) AST, for tooling and tests.
    statement: SelectStatement
    #: True when the statement was ``EXPLAIN ANALYZE SELECT ...`` (execute
    #: and annotate the plan with actual rows/timings).
    analyze: bool = False


def compile_statement(
    source: str,
    catalog: Catalog,
    name: Optional[str] = None,
) -> CompiledStatement:
    """Compile SQL text into a :class:`CompiledStatement`.

    ``name`` overrides the query name; otherwise a ``-- name:`` directive in
    the source is used, falling back to ``"sql_query"``.  Raises
    :class:`~repro.errors.SqlError` on any lex/parse/bind/lowering failure.
    """
    statement = parse_statement(source)
    bound = bind_select(statement, catalog, source, name=name)
    query = lower_select(bound, source)
    return CompiledStatement(
        query=query,
        explain=bound.explain,
        statement=statement,
        analyze=bound.analyze,
    )


__all__ = [
    "BoundSelect",
    "CompiledStatement",
    "SelectStatement",
    "Token",
    "bind_select",
    "compile_statement",
    "default_name",
    "format_expression",
    "format_value",
    "lower_select",
    "parse_statement",
    "split_statements",
    "to_sql",
    "tokenize",
]
