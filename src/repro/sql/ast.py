"""Typed AST produced by the SQL parser.

The AST is deliberately small: it covers exactly the declarative surface a
:class:`~repro.query.QuerySpec` can express — an aggregate-only select list,
a flat ``FROM`` list with aliases, and a ``WHERE`` tree of comparisons,
``BETWEEN`` / ``IN`` / ``LIKE`` / ``IS NULL`` predicates combined with
``AND`` / ``OR`` / ``NOT``.  Every node carries the character offset of its
head token (``pos``) so the binder and lowering pass can attach
caret-position diagnostics to any node they reject.

Nodes are frozen dataclasses; the binder rewrites them functionally with
:func:`dataclasses.replace` (e.g. filling in resolved column qualifiers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union


class SqlNode:
    """Base class for all AST nodes (every node carries a source ``pos``)."""

    __slots__ = ()


class SqlExpr(SqlNode):
    """Base class for WHERE-clause expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class ColumnName(SqlExpr):
    """A possibly-qualified column reference (``t.production_year`` / ``id``).

    After binding, ``qualifier`` is always the resolved relation alias.
    """

    name: str
    qualifier: Optional[str] = None
    pos: int = 0

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class LiteralValue(SqlExpr):
    """A number or string literal (``value`` holds the Python value)."""

    value: Union[int, float, str]
    pos: int = 0


#: Either side of a comparison.
Operand = Union[ColumnName, LiteralValue]


@dataclass(frozen=True)
class ComparisonExpr(SqlExpr):
    """``left <op> right`` with op one of ``= <> != < <= > >=``."""

    left: Operand
    op: str
    right: Operand
    pos: int = 0


@dataclass(frozen=True)
class BetweenExpr(SqlExpr):
    """``column [NOT] BETWEEN low AND high``."""

    column: ColumnName
    low: LiteralValue
    high: LiteralValue
    negated: bool = False
    pos: int = 0


@dataclass(frozen=True)
class InExpr(SqlExpr):
    """``column [NOT] IN (v1, v2, ...)``."""

    column: ColumnName
    values: Tuple[LiteralValue, ...] = ()
    negated: bool = False
    pos: int = 0


@dataclass(frozen=True)
class LikeExpr(SqlExpr):
    """``column [NOT] LIKE 'pattern'`` (prefix / suffix / contains patterns)."""

    column: ColumnName
    pattern: str
    negated: bool = False
    pos: int = 0


@dataclass(frozen=True)
class IsNullExpr(SqlExpr):
    """``column IS [NOT] NULL``."""

    column: ColumnName
    negated: bool = False
    pos: int = 0


@dataclass(frozen=True)
class AndExpr(SqlExpr):
    """Conjunction of two or more operands at one syntactic level.

    Parenthesized sub-conjunctions stay nested (they are *not* flattened
    into the enclosing level), so expression grouping survives a
    format → parse round trip structurally unchanged.
    """

    operands: Tuple[SqlExpr, ...]
    pos: int = 0


@dataclass(frozen=True)
class OrExpr(SqlExpr):
    """Disjunction of two or more operands at one syntactic level."""

    operands: Tuple[SqlExpr, ...]
    pos: int = 0


@dataclass(frozen=True)
class NotExpr(SqlExpr):
    """``NOT operand``."""

    operand: SqlExpr
    pos: int = 0


@dataclass(frozen=True)
class SelectItem(SqlNode):
    """One aggregate of the select list, e.g. ``SUM(l.l_extendedprice) AS revenue``.

    ``function`` is lower-cased (``count`` / ``sum`` / ``min`` / ``max`` /
    ``avg``); ``star`` is True for ``COUNT(*)``, in which case ``column`` is
    None.
    """

    function: str
    star: bool = False
    column: Optional[ColumnName] = None
    output_name: Optional[str] = None
    pos: int = 0


@dataclass(frozen=True)
class TableRef(SqlNode):
    """One ``FROM``-list entry: ``table [AS] alias`` (alias defaults to table)."""

    table: str
    alias: str
    pos: int = 0
    alias_pos: int = 0


@dataclass(frozen=True)
class SelectStatement(SqlNode):
    """A parsed ``[EXPLAIN [ANALYZE]] SELECT`` statement."""

    items: Tuple[SelectItem, ...]
    tables: Tuple[TableRef, ...]
    where: Optional[SqlExpr] = None
    explain: bool = False
    #: True for ``EXPLAIN ANALYZE SELECT ...`` (execute, then annotate the
    #: plan with actual row counts and timings).
    analyze: bool = False
    #: Query name from a leading ``-- name: <name>`` comment directive, if any.
    name: Optional[str] = None
