"""Name resolution: bind a parsed AST against a :class:`~repro.storage.catalog.Catalog`.

The binder checks that every ``FROM`` table exists, that aliases are unique,
and resolves every column reference to its owning relation alias:

* ``t.production_year`` — the qualifier must be a declared alias and the
  column must exist in that alias's table;
* ``production_year`` — exactly one declared alias's table may contain the
  column; zero matches is "unknown column", two or more is "ambiguous".

Every failure raises :class:`~repro.errors.SqlError` with the query name,
the offending alias/column, and the caret position of the token that caused
it.  The output is a :class:`BoundSelect` whose expression tree is the input
AST with every :class:`~repro.sql.ast.ColumnName` qualifier filled in, plus
the already-lowered aggregate list.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.errors import SqlError
from repro.query import AggregateSpec
from repro.sql.ast import (
    AndExpr,
    BetweenExpr,
    ColumnName,
    ComparisonExpr,
    InExpr,
    IsNullExpr,
    LikeExpr,
    LiteralValue,
    NotExpr,
    OrExpr,
    SelectStatement,
    SqlExpr,
)
from repro.storage.catalog import Catalog
from repro.storage.datatypes import DataType
from repro.storage.table import Table


@dataclass(frozen=True)
class BoundSelect:
    """A name-resolved select: every column reference carries its alias."""

    name: str
    #: (alias, table-name) pairs in FROM order.
    relations: Tuple[Tuple[str, str], ...]
    aggregates: Tuple[AggregateSpec, ...]
    where: Optional[SqlExpr]
    explain: bool = False
    analyze: bool = False


def bind_select(
    statement: SelectStatement,
    catalog: Catalog,
    source: str,
    name: Optional[str] = None,
) -> BoundSelect:
    """Resolve ``statement`` against ``catalog``; raises :class:`SqlError`."""
    query_name = name or statement.name or "sql_query"
    binder = _Binder(catalog, source, query_name)
    return binder.bind(statement)


class _Binder:
    def __init__(self, catalog: Catalog, source: str, query_name: str) -> None:
        self.catalog = catalog
        self.source = source
        self.query_name = query_name
        self.tables: Dict[str, Table] = {}

    def error(self, message: str, pos: int) -> SqlError:
        return SqlError(f"query {self.query_name!r}: {message}", self.source, pos)

    def bind(self, statement: SelectStatement) -> BoundSelect:
        relations = []
        for ref in statement.tables:
            if not self.catalog.has_table(ref.table):
                known = ", ".join(sorted(self.catalog.table_names())) or "(none)"
                raise self.error(
                    f"unknown table {ref.table!r} (registered tables: {known})", ref.pos
                )
            if ref.alias in self.tables:
                raise self.error(f"duplicate relation alias {ref.alias!r}", ref.alias_pos)
            self.tables[ref.alias] = self.catalog.table(ref.table)
            relations.append((ref.alias, ref.table))
        aggregates = tuple(self._bind_select_item(item) for item in statement.items)
        where = self._bind_expr(statement.where) if statement.where is not None else None
        return BoundSelect(
            name=self.query_name,
            relations=tuple(relations),
            aggregates=aggregates,
            where=where,
            explain=statement.explain,
            analyze=statement.analyze,
        )

    # ------------------------------------------------------------------
    # Select list
    # ------------------------------------------------------------------
    def _bind_select_item(self, item) -> AggregateSpec:
        if item.star:
            # No default output name: ``COUNT(*)`` must bind to exactly what
            # a hand-built AggregateSpec without one looks like, or the
            # ``compile(to_sql(spec)) == spec`` round trip breaks.
            return AggregateSpec(function="count", output_name=item.output_name)
        column = self._resolve_column(item.column)
        if (
            item.function != "count"
            and self._column_of(column).dtype is DataType.STRING
        ):
            raise self.error(
                f"{item.function.upper()}({column}) is not supported: {column} is a "
                "string column (aggregating dictionary codes would be meaningless)",
                column.pos,
            )
        return AggregateSpec(
            function=item.function,
            alias=column.qualifier,
            column=column.name,
            output_name=item.output_name,
        )

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _bind_expr(self, expr: SqlExpr) -> SqlExpr:
        if isinstance(expr, AndExpr):
            return replace(expr, operands=tuple(self._bind_expr(o) for o in expr.operands))
        if isinstance(expr, OrExpr):
            return replace(expr, operands=tuple(self._bind_expr(o) for o in expr.operands))
        if isinstance(expr, NotExpr):
            return replace(expr, operand=self._bind_expr(expr.operand))
        if isinstance(expr, ComparisonExpr):
            left = self._bind_operand(expr.left)
            right = self._bind_operand(expr.right)
            if isinstance(left, ColumnName) and isinstance(right, LiteralValue):
                self._check_literal_type(left, right)
            elif isinstance(left, LiteralValue) and isinstance(right, ColumnName):
                self._check_literal_type(right, left)
            elif isinstance(left, ColumnName) and isinstance(right, ColumnName):
                self._check_join_types(left, right, expr.pos)
            return replace(expr, left=left, right=right)
        if isinstance(expr, BetweenExpr):
            column = self._resolve_column(expr.column)
            self._check_literal_type(column, expr.low)
            self._check_literal_type(column, expr.high)
            return replace(expr, column=column)
        if isinstance(expr, InExpr):
            column = self._resolve_column(expr.column)
            for value in expr.values:
                self._check_literal_type(column, value)
            return replace(expr, column=column)
        if isinstance(expr, LikeExpr):
            column = self._resolve_column(expr.column)
            if self._column_of(column).dtype is not DataType.STRING:
                raise self.error(
                    f"LIKE requires a string column, but {column} is numeric",
                    column.pos,
                )
            return replace(expr, column=column)
        if isinstance(expr, IsNullExpr):
            return replace(expr, column=self._resolve_column(expr.column))
        raise self.error(f"unsupported expression node {type(expr).__name__}", getattr(expr, "pos", 0))

    def _bind_operand(self, operand):
        if isinstance(operand, ColumnName):
            return self._resolve_column(operand)
        assert isinstance(operand, LiteralValue)
        return operand

    def _column_of(self, column: ColumnName):
        """The storage column of an already-resolved reference."""
        return self.tables[column.qualifier].column(column.name)

    def _check_literal_type(self, column: ColumnName, literal: LiteralValue) -> None:
        """Reject string-vs-numeric mismatches at bind time.

        Without this, the mismatch escapes the front end and surfaces as a
        raw NumPy ufunc error mid-execution — with no caret diagnostic.
        """
        is_string_column = self._column_of(column).dtype is DataType.STRING
        if is_string_column and not isinstance(literal.value, str):
            raise self.error(
                f"{column} is a string column; comparison with the numeric "
                f"literal {literal.value!r} is not supported",
                literal.pos,
            )
        if not is_string_column and isinstance(literal.value, str):
            raise self.error(
                f"{column} is a numeric column; comparison with the string "
                f"literal {literal.value!r} is not supported",
                literal.pos,
            )

    def _check_join_types(self, left: ColumnName, right: ColumnName, pos: int) -> None:
        """Reject column-to-column comparisons the join kernels cannot evaluate.

        String columns are dictionary-encoded *per column*: the engine joins
        raw codes, so a string-column join is only meaningful between two
        occurrences of the same table column (a self-join sharing one
        dictionary).  Anything else would silently match unrelated codes.
        """
        left_is_string = self._column_of(left).dtype is DataType.STRING
        right_is_string = self._column_of(right).dtype is DataType.STRING
        if left_is_string != right_is_string:
            string_side, numeric_side = (
                (left, right) if left_is_string else (right, left)
            )
            raise self.error(
                f"cannot compare string column {string_side} with numeric "
                f"column {numeric_side}",
                pos,
            )
        if left_is_string and right_is_string:
            same_dictionary = (
                self.tables[left.qualifier].name == self.tables[right.qualifier].name
                and left.name == right.name
            )
            if not same_dictionary:
                raise self.error(
                    f"joins on string columns are only supported between two "
                    f"occurrences of the same table column (got {left} and "
                    f"{right}, whose dictionaries differ)",
                    pos,
                )

    def _resolve_column(self, column: ColumnName) -> ColumnName:
        if column.qualifier is not None:
            table = self.tables.get(column.qualifier)
            if table is None:
                known = ", ".join(sorted(self.tables)) or "(none)"
                raise self.error(
                    f"unknown relation alias {column.qualifier!r} "
                    f"(declared aliases: {known})",
                    column.pos,
                )
            if not table.has_column(column.name):
                raise self.error(
                    f"unknown column {column.name!r} of alias {column.qualifier!r} "
                    f"(table {table.name!r} has: {', '.join(table.column_names)})",
                    column.pos,
                )
            return column
        candidates = [alias for alias, table in self.tables.items() if table.has_column(column.name)]
        if not candidates:
            raise self.error(
                f"unknown column {column.name!r} (no relation in the FROM clause has it)",
                column.pos,
            )
        if len(candidates) > 1:
            raise self.error(
                f"ambiguous column {column.name!r} (could be "
                + " or ".join(f"{a}.{column.name}" for a in sorted(candidates))
                + "); qualify it with an alias",
                column.pos,
            )
        return replace(column, qualifier=candidates[0])
