"""Malformed-input corpus for the SQL front end.

Every entry must raise :class:`~repro.errors.SqlError` — with a usable
line/column position, never a bare ``IndexError``/``KeyError``/crash — when
compiled against *any* catalog.  The corpus is shared by the unit tests and
the CI parser-smoke step, so adding a newly found crasher here covers both.

Entries marked ``needs_catalog`` only fail at bind time and are compiled
against a catalog containing a single table ``t(a, b)`` by the smoke
harness; the rest fail during lexing/parsing regardless of the catalog.
"""

from __future__ import annotations

#: Inputs that must fail before binding (lex or parse errors).
MALFORMED_SYNTAX = (
    "",
    "   \n\t  ",
    "SELECT",
    "SELECT COUNT(*)",
    "SELECT COUNT(* FROM t",
    "SELECT COUNT(*) FROM",
    "SELECT COUNT(*) FROM t WHERE",
    "SELECT COUNT(*) FROM t WHERE a =",
    "SELECT COUNT(*) FROM t WHERE a = 1 AND",
    "SELECT COUNT(*) FROM t WHERE (a = 1",
    "SELECT COUNT(*) FROM t WHERE a BETWEEN 1",
    "SELECT COUNT(*) FROM t WHERE a BETWEEN 1 AND",
    "SELECT COUNT(*) FROM t WHERE a IN",
    "SELECT COUNT(*) FROM t WHERE a IN ()",
    "SELECT COUNT(*) FROM t WHERE a IN (1,",
    "SELECT COUNT(*) FROM t WHERE a LIKE 5",
    "SELECT COUNT(*) FROM t WHERE a IS",
    "SELECT COUNT(*) FROM t WHERE a IS NOT",
    "SELECT COUNT(*) FROM t WHERE a NOT 5",
    "SELECT COUNT(*) FROM t WHERE NOT",
    "SELECT a FROM t",
    "SELECT SUM(*) FROM t",
    "SELECT COUNT(*) FROM t WHERE a = 'unterminated",
    "SELECT COUNT(*) FROM t /* unterminated",
    "SELECT COUNT(*) FROM t WHERE a = 1 garbage garbage",
    "SELECT COUNT(*) FROM t; SELECT COUNT(*) FROM t",
    "SELECT COUNT(*) FROM t WHERE a ? 1",
    "EXPLAIN",
    "EXPLAIN EXPLAIN SELECT COUNT(*) FROM t",
    "WHERE a = 1",
)

#: Inputs that lex/parse but must fail binding or lowering against ``t(a, b)``.
MALFORMED_SEMANTIC = (
    "SELECT COUNT(*) FROM missing_table",
    "SELECT COUNT(*) FROM t, t",
    "SELECT COUNT(*) FROM t AS x, t AS x",
    "SELECT COUNT(*) FROM t WHERE missing_column = 1",
    "SELECT COUNT(*) FROM t WHERE x.a = 1",
    "SELECT COUNT(*) FROM t AS x, t AS y WHERE a = 1",
    "SELECT SUM(missing_column) FROM t",
    "SELECT COUNT(*) FROM t WHERE a = b",
    "SELECT COUNT(*) FROM t AS x, t AS y WHERE x.a < y.a",
    "SELECT COUNT(*) FROM t WHERE 1 = 2",
    "SELECT COUNT(*) FROM t WHERE a LIKE 'no_wildcard'",
    "SELECT COUNT(*) FROM t WHERE a LIKE '%a%b%'",
    "SELECT COUNT(*) FROM t AS x, t AS y WHERE x.a BETWEEN 1 AND 2 OR y.b = 1",
    "SELECT COUNT(*) FROM t WHERE a < 'not_a_number'",
    "SELECT COUNT(*) FROM t WHERE a BETWEEN 'lo' AND 'hi'",
    "SELECT COUNT(*) FROM t WHERE a IN (1, 'mixed')",
    "SELECT COUNT(*) FROM t WHERE a LIKE 'numeric%'",
)

#: The full corpus (syntax + semantic), for harnesses that bind everything.
MALFORMED_CORPUS = MALFORMED_SYNTAX + MALFORMED_SEMANTIC
