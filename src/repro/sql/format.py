"""``QuerySpec → SQL`` formatter: the inverse of the parse/bind/lower pipeline.

:func:`to_sql` renders a :class:`~repro.query.QuerySpec` as SQL text that
the front end parses back into a *structurally identical* spec::

    parse(to_sql(spec)) == spec

for every query the engine can represent (the round-trip property the test
suite asserts over all registered workload queries).  The invariants that
make the round trip exact:

* the query name is embedded as a leading ``-- name:`` directive;
* aggregates render explicitly (``COUNT(*) AS count_star`` for the default);
* each relation's filter renders as *one* parenthesized WHERE conjunct with
  every column qualified by the relation alias, so lowering reassembles
  exactly one filter expression per relation;
* nested AND/OR groups are always parenthesized, so the parser rebuilds the
  same tree shape instead of flattening chains.

The checked-in workload ``.sql`` files under ``repro/workloads/sql/`` are
generated with this formatter (see ``repro.workloads.sqlfiles``).
"""

from __future__ import annotations

import re
from typing import Any, List

from repro.errors import PlanError
from repro.sql.lexer import KEYWORDS, NAME_DIRECTIVE_RE
from repro.expr.expressions import (
    And,
    Between,
    Comparison,
    Expression,
    InList,
    IsNull,
    Not,
    Or,
    StringPredicate,
)
from repro.query import PostJoinPredicate, QualifiedComparison, QuerySpec

#: Engine operator → SQL comparison symbol.
ENGINE_TO_SQL_OP = {"==": "=", "!=": "<>", "<": "<", "<=": "<=", ">": ">", ">=": ">="}

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")


def _ident(name: str, what: str, allow_keyword: bool = False) -> str:
    """Validate that ``name`` re-parses as the identifier the formatter emits.

    Column names may collide with keywords (the formatter always emits them
    dot-qualified, where the parser accepts keywords); tables, aliases, and
    output names may not.
    """
    if not isinstance(name, str) or not _IDENT_RE.match(name):
        raise PlanError(f"{what} {name!r} cannot be rendered as a SQL identifier")
    if not allow_keyword and name.upper() in KEYWORDS:
        raise PlanError(
            f"{what} {name!r} collides with a SQL keyword and cannot be rendered"
        )
    return name


def to_sql(spec: QuerySpec, include_name: bool = True) -> str:
    """Render ``spec`` as SQL text that parses back to an equal spec.

    Raises :class:`~repro.errors.PlanError` for the few spec shapes SQL
    cannot express unambiguously (e.g. a LIKE pattern containing ``%``, or a
    post-join predicate referencing a single relation).
    """
    lines: List[str] = []
    if include_name:
        if NAME_DIRECTIVE_RE.fullmatch(f"-- name: {spec.name}") is None:
            raise PlanError(
                f"query name {spec.name!r} cannot be rendered as a "
                "'-- name:' directive (it would truncate on re-parse)"
            )
        lines.append(f"-- name: {spec.name}")
    lines.append("SELECT " + ",\n       ".join(_format_aggregate(a) for a in spec.aggregates))
    lines.append(
        "FROM "
        + ",\n     ".join(
            f"{_ident(ref.table, 'table name')} AS {_ident(ref.alias, 'relation alias')}"
            for ref in spec.relations
        )
    )
    conjuncts: List[str] = []
    for join in spec.joins:
        conjuncts.append(
            f"{_ident(join.left_alias, 'relation alias')}"
            f".{_ident(join.left_column, 'column name', allow_keyword=True)}"
            f" = {_ident(join.right_alias, 'relation alias')}"
            f".{_ident(join.right_column, 'column name', allow_keyword=True)}"
        )
    for ref in spec.relations:
        if ref.filter is not None:
            conjuncts.append(format_expression(ref.filter, ref.alias))
    for predicate in spec.post_join_predicates:
        conjuncts.append(_format_post_join(spec, predicate))
    if conjuncts:
        lines.append("WHERE " + "\n  AND ".join(conjuncts))
    return "\n".join(lines) + ";\n"


def _format_aggregate(agg) -> str:
    if agg.column is None:
        rendered = f"{agg.function.upper()}(*)"
    else:
        rendered = f"{agg.function.upper()}({_qualified(agg.alias, agg.column)})"
    if agg.output_name is not None:
        rendered += f" AS {_ident(agg.output_name, 'output name')}"
    return rendered


def _qualified(alias: str, column: str) -> str:
    """``alias.column`` with both identifiers validated for re-parseability."""
    return (
        f"{_ident(alias, 'relation alias')}"
        f".{_ident(column, 'column name', allow_keyword=True)}"
    )


def format_expression(expression: Expression, alias: str) -> str:
    """Render a base-table filter with every column qualified by ``alias``.

    Composite expressions (AND/OR/NOT) are parenthesized so the whole filter
    stays one WHERE conjunct and nested grouping survives re-parsing.
    """
    if isinstance(expression, Comparison):
        return (
            f"{_qualified(alias, expression.column)} {ENGINE_TO_SQL_OP[expression.op]} "
            f"{format_value(expression.value)}"
        )
    if isinstance(expression, Between):
        return (
            f"{_qualified(alias, expression.column)} BETWEEN {format_value(expression.low)} "
            f"AND {format_value(expression.high)}"
        )
    if isinstance(expression, InList):
        if not expression.values:
            raise PlanError(
                f"cannot format empty IN-list on column {expression.column!r} as SQL"
            )
        values = ", ".join(format_value(v) for v in expression.values)
        return f"{_qualified(alias, expression.column)} IN ({values})"
    if isinstance(expression, StringPredicate):
        return f"{_qualified(alias, expression.column)} LIKE {_format_like_pattern(expression)}"
    if isinstance(expression, IsNull):
        return f"{_qualified(alias, expression.column)} IS {'NOT ' if expression.negated else ''}NULL"
    if isinstance(expression, And):
        return "(" + " AND ".join(format_expression(o, alias) for o in expression.operands) + ")"
    if isinstance(expression, Or):
        return "(" + " OR ".join(format_expression(o, alias) for o in expression.operands) + ")"
    if isinstance(expression, Not):
        return f"(NOT {format_expression(expression.operand, alias)})"
    raise PlanError(
        f"expression {expression!r} has no SQL rendering "
        "(only predicate expressions are supported)"
    )


def _format_like_pattern(predicate: StringPredicate) -> str:
    if "%" in predicate.pattern or "_" in predicate.pattern:
        raise PlanError(
            f"LIKE pattern {predicate.pattern!r} contains SQL wildcards and "
            "cannot be formatted unambiguously"
        )
    body = predicate.pattern.replace("'", "''")
    if predicate.mode == "prefix":
        return f"'{body}%'"
    if predicate.mode == "suffix":
        return f"'%{body}'"
    return f"'%{body}%'"


def format_value(value: Any) -> str:
    """Render a literal: numbers bare (floats keep their point), strings quoted."""
    if isinstance(value, bool):
        raise PlanError(f"boolean literal {value!r} has no SQL rendering")
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    # NumPy scalars first: np.float64 subclasses float but its repr() is not
    # SQL (``np.float64(2.5)`` under NumPy >= 2), so unwrap before the
    # plain-number branches.
    if hasattr(value, "item") and type(value) is not type(value.item()):
        return format_value(value.item())
    if isinstance(value, float):
        rendered = repr(value)
        if "inf" in rendered or "nan" in rendered:
            raise PlanError(f"non-finite literal {value!r} has no SQL rendering")
        return rendered
    if isinstance(value, int):
        return str(value)
    raise PlanError(f"literal {value!r} has no SQL rendering")


def _format_post_join(spec: QuerySpec, predicate: PostJoinPredicate) -> str:
    if len(predicate.required_aliases()) < 2:
        raise PlanError(
            f"query {spec.name!r}: post-join predicate referencing "
            f"{sorted(predicate.required_aliases())} cannot be formatted — lowering "
            "would reclassify a single-relation conjunct as a base filter"
        )
    rendered_disjuncts = []
    for disjunct in predicate.disjuncts:
        terms = " AND ".join(_format_qualified(term) for term in disjunct)
        rendered_disjuncts.append(f"({terms})" if len(disjunct) > 1 else terms)
    if len(rendered_disjuncts) == 1:
        return rendered_disjuncts[0]
    return "(" + " OR ".join(rendered_disjuncts) + ")"


def _format_qualified(term: QualifiedComparison) -> str:
    return f"{_qualified(term.alias, term.column)} {ENGINE_TO_SQL_OP[term.op]} {format_value(term.value)}"
