"""Hand-written SQL lexer.

Produces a flat token stream with character offsets, which the parser and
binder thread through to :class:`~repro.errors.SqlError` for caret-position
diagnostics.  The lexer understands:

* identifiers (``[A-Za-z_][A-Za-z0-9_]*``), with SQL keywords recognized
  case-insensitively and canonicalized to upper case;
* integer and float literals (optional fraction and exponent);
* single-quoted string literals with ``''`` as the embedded-quote escape;
* the operator/punctuation set ``( ) , . ; * = <> != < <= > >=``;
* ``-- line`` and ``/* block */`` comments (skipped), including the
  ``-- name: <query_name>`` directive surfaced to the front end.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Union

from repro.errors import SqlError

#: Reserved words recognized case-insensitively.
KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "AS", "BETWEEN", "IN",
        "LIKE", "IS", "NULL", "EXPLAIN", "ANALYZE", "COUNT", "SUM", "MIN",
        "MAX", "AVG",
    }
)

#: Aggregate-function keywords (a subset of :data:`KEYWORDS`).
AGGREGATE_KEYWORDS = frozenset({"COUNT", "SUM", "MIN", "MAX", "AVG"})

#: Token kinds.
IDENT = "ident"
KEYWORD = "keyword"
NUMBER = "number"
STRING = "string"
SYMBOL = "symbol"
EOF = "eof"

#: Multi-character symbols first so maximal munch wins.
_SYMBOLS = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", ".", ";", "*")

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUMBER_RE = re.compile(r"\d+(\.\d+)?([eE][+-]?\d+)?")

#: ``-- name: <query_name>`` comment directive (sets the default query name).
NAME_DIRECTIVE_RE = re.compile(r"--\s*name:\s*([A-Za-z_][A-Za-z0-9_.-]*)")


@dataclass(frozen=True)
class Token:
    """One lexed token: kind, canonical text, decoded value, source offset."""

    kind: str
    text: str
    value: Union[int, float, str, None]
    pos: int

    def is_keyword(self, *names: str) -> bool:
        """True when this token is one of the given (upper-case) keywords."""
        return self.kind == KEYWORD and self.text in names

    def is_symbol(self, *symbols: str) -> bool:
        """True when this token is one of the given punctuation symbols."""
        return self.kind == SYMBOL and self.text in symbols


def _scan_trivia(source: str, i: int) -> "tuple[int, List[tuple[int, int]]]":
    """Skip whitespace and comments starting at ``i``.

    Returns ``(next_token_index, comment_spans)`` where each span is the
    ``(start, end)`` offsets of one skipped comment.  This is the *single*
    definition of the trivia syntax — :func:`tokenize` and
    :func:`default_name` both consume it, so comment rules can never drift
    between the lexer and the directive scanner.  Raises on an unterminated
    block comment.
    """
    spans: List[tuple[int, int]] = []
    n = len(source)
    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if source.startswith("--", i):
            end = source.find("\n", i)
            end = n if end == -1 else end
            spans.append((i, end))
            i = end + 1 if end < n else n
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise SqlError("unterminated block comment", source, i)
            spans.append((i, end + 2))
            i = end + 2
            continue
        break
    return i, spans


def tokenize(source: str) -> List[Token]:
    """Lex ``source`` into a token list ending with an EOF token.

    Raises :class:`~repro.errors.SqlError` (with caret position) on any
    character the grammar cannot start a token with, and on unterminated
    strings or block comments.
    """
    tokens: List[Token] = []
    i, n = 0, len(source)
    while i < n:
        i, _ = _scan_trivia(source, i)
        if i >= n:
            break
        ch = source[i]
        if ch == "'":
            start = i
            value, i = _lex_string(source, i)
            tokens.append(Token(STRING, source[start:i], value, start))
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and source[i + 1].isdigit()):
            # A leading '-' lexes as part of the literal: the grammar has no
            # arithmetic, so minus only ever introduces a negative number.
            digits_at = i + 1 if ch == "-" else i
            match = _NUMBER_RE.match(source, digits_at)
            assert match is not None
            text = source[i:digits_at] + match.group(0)
            value: Union[int, float]
            if "." in text or "e" in text or "E" in text:
                value = float(text)
            else:
                value = int(text)
            tokens.append(Token(NUMBER, text, value, i))
            i = match.end()
            continue
        match = _IDENT_RE.match(source, i)
        if match is not None:
            text = match.group(0)
            upper = text.upper()
            if upper in KEYWORDS:
                # ``value`` keeps the original spelling so contexts that
                # accept keyword-named identifiers (columns after '.') can
                # recover it.
                tokens.append(Token(KEYWORD, upper, text, i))
            else:
                tokens.append(Token(IDENT, text, text, i))
            i = match.end()
            continue
        for symbol in _SYMBOLS:
            if source.startswith(symbol, i):
                tokens.append(Token(SYMBOL, symbol, None, i))
                i += len(symbol)
                break
        else:
            raise SqlError(f"unexpected character {ch!r}", source, i)
    tokens.append(Token(EOF, "", None, n))
    return tokens


def _lex_string(source: str, start: int) -> "tuple[str, int]":
    """Lex a single-quoted string starting at ``start``; returns (value, end)."""
    i = start + 1
    parts: List[str] = []
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "'":
            if i + 1 < n and source[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise SqlError("unterminated string literal", source, start)


def default_name(source: str) -> Optional[str]:
    """Extract the query name from a leading ``-- name: <name>`` directive.

    Only comments *before the first token* are considered, so a ``-- name:``
    sequence buried in a string literal (or trailing comment) can never
    override the query name.
    """
    try:
        _, spans = _scan_trivia(source, 0)
    except SqlError:
        return None
    for start, end in spans:
        match = NAME_DIRECTIVE_RE.search(source, start, end)
        if match is not None:
            return match.group(1)
    return None
