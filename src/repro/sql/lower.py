"""Lowering: classify a bound WHERE clause and emit a :class:`~repro.query.QuerySpec`.

The engine's declarative query language separates what SQL merges into one
WHERE clause, so lowering walks the *top-level conjuncts* of the bound
expression tree and classifies each one:

* ``a.x = b.y`` (two column sides, two aliases)  → an equi-:class:`JoinCondition`;
* a conjunct whose columns all belong to one alias → that relation's base
  filter, translated into the engine's :class:`~repro.expr.expressions.Expression`
  language (with qualifiers stripped — filters evaluate against their own
  table);
* a conjunct spanning two or more aliases → a :class:`PostJoinPredicate`,
  which the engine applies once all referenced relations are joined.  Only
  the OR-of-ANDs comparison shape the engine evaluates is accepted (the
  paper's TPC-DS Q13/Q48 form).

Anything outside those shapes — non-equality column-to-column comparisons,
predicates referencing no column, ``BETWEEN`` across relations — raises
:class:`~repro.errors.SqlError` at the offending position rather than
silently producing a different query.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import SqlError
from repro.expr.expressions import (
    And,
    Between,
    Comparison,
    Expression,
    InList,
    IsNull,
    Not,
    Or,
    StringPredicate,
)
from repro.query import (
    JoinCondition,
    PostJoinPredicate,
    QualifiedComparison,
    QuerySpec,
    RelationRef,
)
from repro.sql.ast import (
    AndExpr,
    BetweenExpr,
    ColumnName,
    ComparisonExpr,
    InExpr,
    IsNullExpr,
    LikeExpr,
    LiteralValue,
    NotExpr,
    OrExpr,
    SqlExpr,
)
from repro.sql.binder import BoundSelect

#: SQL comparison symbol → engine operator.
SQL_TO_ENGINE_OP = {"=": "==", "<>": "!=", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}

#: Mirror of each operator for ``literal <op> column`` normalization.
_FLIPPED_OP = {"==": "==", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def lower_select(bound: BoundSelect, source: str) -> QuerySpec:
    """Lower a bound select into the engine's :class:`QuerySpec`."""
    return _Lowering(bound, source).lower()


class _Lowering:
    def __init__(self, bound: BoundSelect, source: str) -> None:
        self.bound = bound
        self.source = source

    def error(self, message: str, pos: int) -> SqlError:
        return SqlError(f"query {self.bound.name!r}: {message}", self.source, pos)

    def lower(self) -> QuerySpec:
        joins: List[JoinCondition] = []
        filters: Dict[str, List[Expression]] = {}
        post_joins: List[PostJoinPredicate] = []
        for conjunct in self._conjuncts():
            join = self._as_join(conjunct)
            if join is not None:
                joins.append(join)
                continue
            aliases = sorted(self._referenced_aliases(conjunct))
            if not aliases:
                raise self.error(
                    "predicate references no column; constant predicates are not supported",
                    _pos(conjunct),
                )
            if len(aliases) == 1:
                filters.setdefault(aliases[0], []).append(self._to_expression(conjunct))
            else:
                post_joins.append(self._to_post_join(conjunct))
        relations = []
        for alias, table in self.bound.relations:
            alias_filters = filters.get(alias)
            if not alias_filters:
                relations.append(RelationRef(alias, table))
            elif len(alias_filters) == 1:
                relations.append(RelationRef(alias, table, alias_filters[0]))
            else:
                relations.append(RelationRef(alias, table, And(tuple(alias_filters))))
        return QuerySpec(
            name=self.bound.name,
            relations=tuple(relations),
            joins=tuple(joins),
            aggregates=self.bound.aggregates,
            post_join_predicates=tuple(post_joins),
        )

    # ------------------------------------------------------------------
    # Conjunct classification
    # ------------------------------------------------------------------
    def _conjuncts(self) -> Tuple[SqlExpr, ...]:
        where = self.bound.where
        if where is None:
            return ()
        if isinstance(where, AndExpr):
            return where.operands
        return (where,)

    def _as_join(self, conjunct: SqlExpr):
        """A top-level ``a.x = b.y`` conjunct becomes a JoinCondition."""
        if not isinstance(conjunct, ComparisonExpr):
            return None
        left, right = conjunct.left, conjunct.right
        if not (isinstance(left, ColumnName) and isinstance(right, ColumnName)):
            return None
        if left.qualifier == right.qualifier:
            raise self.error(
                f"comparison between two columns of {left.qualifier!r} is not supported",
                conjunct.pos,
            )
        if conjunct.op != "=":
            raise self.error(
                f"only equality joins are supported, got {left} {conjunct.op} {right}",
                conjunct.pos,
            )
        return JoinCondition(left.qualifier, left.name, right.qualifier, right.name)

    def _referenced_aliases(self, expr: SqlExpr) -> frozenset:
        if isinstance(expr, ColumnName):
            return frozenset({expr.qualifier})
        if isinstance(expr, LiteralValue):
            return frozenset()
        if isinstance(expr, ComparisonExpr):
            return self._referenced_aliases(expr.left) | self._referenced_aliases(expr.right)
        if isinstance(expr, (BetweenExpr, InExpr, LikeExpr, IsNullExpr)):
            return frozenset({expr.column.qualifier})
        if isinstance(expr, (AndExpr, OrExpr)):
            result = frozenset()
            for operand in expr.operands:
                result |= self._referenced_aliases(operand)
            return result
        if isinstance(expr, NotExpr):
            return self._referenced_aliases(expr.operand)
        raise self.error(f"unsupported expression node {type(expr).__name__}", _pos(expr))

    # ------------------------------------------------------------------
    # Single-relation filters → Expression language
    # ------------------------------------------------------------------
    def _to_expression(self, expr: SqlExpr) -> Expression:
        if isinstance(expr, ComparisonExpr):
            return self._comparison_to_expression(expr)
        if isinstance(expr, BetweenExpr):
            between = Between(expr.column.name, expr.low.value, expr.high.value)
            return Not(between) if expr.negated else between
        if isinstance(expr, InExpr):
            in_list = InList(expr.column.name, tuple(v.value for v in expr.values))
            return Not(in_list) if expr.negated else in_list
        if isinstance(expr, LikeExpr):
            predicate = _like_to_predicate(expr, self.error)
            return Not(predicate) if expr.negated else predicate
        if isinstance(expr, IsNullExpr):
            return IsNull(expr.column.name, negated=expr.negated)
        if isinstance(expr, AndExpr):
            return And(tuple(self._to_expression(o) for o in expr.operands))
        if isinstance(expr, OrExpr):
            return Or(tuple(self._to_expression(o) for o in expr.operands))
        if isinstance(expr, NotExpr):
            return Not(self._to_expression(expr.operand))
        raise self.error(
            f"expression {type(expr).__name__} cannot be used as a filter predicate",
            _pos(expr),
        )

    def _comparison_to_expression(self, expr: ComparisonExpr) -> Comparison:
        left, right = expr.left, expr.right
        if isinstance(left, ColumnName) and isinstance(right, LiteralValue):
            return Comparison(left.name, SQL_TO_ENGINE_OP[expr.op], right.value)
        if isinstance(left, LiteralValue) and isinstance(right, ColumnName):
            op = _FLIPPED_OP[SQL_TO_ENGINE_OP[expr.op]]
            return Comparison(right.name, op, left.value)
        if isinstance(left, ColumnName) and isinstance(right, ColumnName):
            raise self.error(
                "join conditions must be top-level AND conjuncts of the WHERE clause",
                expr.pos,
            )
        raise self.error("comparison between two literals is not supported", expr.pos)

    # ------------------------------------------------------------------
    # Multi-relation conjuncts → PostJoinPredicate (OR of ANDs)
    # ------------------------------------------------------------------
    def _to_post_join(self, conjunct: SqlExpr) -> PostJoinPredicate:
        if isinstance(conjunct, OrExpr):
            disjuncts = tuple(self._post_join_conjunct(d) for d in conjunct.operands)
        else:
            disjuncts = (self._post_join_conjunct(conjunct),)
        return PostJoinPredicate(disjuncts=disjuncts)

    def _post_join_conjunct(self, expr: SqlExpr) -> Tuple[QualifiedComparison, ...]:
        if isinstance(expr, AndExpr):
            return tuple(self._post_join_term(t) for t in expr.operands)
        return (self._post_join_term(expr),)

    def _post_join_term(self, expr: SqlExpr) -> QualifiedComparison:
        if not isinstance(expr, ComparisonExpr):
            raise self.error(
                "predicates spanning multiple relations must be OR/AND combinations "
                f"of simple comparisons, got {type(expr).__name__}",
                _pos(expr),
            )
        left, right = expr.left, expr.right
        if isinstance(left, ColumnName) and isinstance(right, LiteralValue):
            return QualifiedComparison(
                left.qualifier, left.name, SQL_TO_ENGINE_OP[expr.op], right.value
            )
        if isinstance(left, LiteralValue) and isinstance(right, ColumnName):
            op = _FLIPPED_OP[SQL_TO_ENGINE_OP[expr.op]]
            return QualifiedComparison(right.qualifier, right.name, op, left.value)
        raise self.error(
            "each term of a multi-relation predicate must compare a column with a literal",
            expr.pos,
        )


def _like_to_predicate(expr: LikeExpr, error) -> StringPredicate:
    """Map a LIKE pattern onto the engine's prefix/suffix/contains predicates."""
    pattern = expr.pattern
    starts = pattern.startswith("%")
    ends = pattern.endswith("%")
    body = pattern[1 if starts else 0 : len(pattern) - 1 if ends else len(pattern)]
    if not body or "%" in body or "_" in body:
        raise error(
            f"unsupported LIKE pattern {pattern!r}; only 'x%', '%x', and '%x%' "
            "shapes are supported",
            expr.pos,
        )
    if starts and ends:
        return StringPredicate(expr.column.name, "contains", body)
    if ends:
        return StringPredicate(expr.column.name, "prefix", body)
    if starts:
        return StringPredicate(expr.column.name, "suffix", body)
    raise error(
        f"unsupported LIKE pattern {pattern!r}: exact match should use '=' "
        "(wildcard-free LIKE is not supported)",
        expr.pos,
    )


def _pos(expr: SqlExpr) -> int:
    return getattr(expr, "pos", 0)
