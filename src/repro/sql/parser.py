"""Recursive-descent SQL parser producing the typed AST of :mod:`repro.sql.ast`.

Grammar (the declarative subset a :class:`~repro.query.QuerySpec` expresses)::

    statement   := (EXPLAIN ANALYZE?)? select ';'? EOF
    select      := SELECT select_item (',' select_item)*
                   FROM table_ref (',' table_ref)*
                   (WHERE expr)?
    select_item := func '(' ( '*' | column ) ')' (AS? ident)?
    func        := COUNT | SUM | MIN | MAX | AVG
    table_ref   := ident (AS? ident)?
    expr        := and_chain (OR and_chain)*
    and_chain   := unary (AND unary)*
    unary       := NOT unary | predicate
    predicate   := '(' expr ')'
                 | operand (=|<>|!=|<|<=|>|>=) operand
                 | column NOT? BETWEEN literal AND literal
                 | column NOT? IN '(' literal (',' literal)* ')'
                 | column NOT? LIKE string
                 | column IS NOT? NULL
    operand     := column | literal
    column      := ident ('.' ident)?
    literal     := number | string | '-' number

AND/OR chains collect the operands of *one* syntactic level; parenthesized
sub-expressions stay nested, so expression grouping survives a
format → parse round trip structurally.

Every parse error raises :class:`~repro.errors.SqlError` carrying the source
text and offending offset, rendering a caret diagnostic.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import SqlError
from repro.sql.ast import (
    AndExpr,
    BetweenExpr,
    ColumnName,
    ComparisonExpr,
    InExpr,
    IsNullExpr,
    LikeExpr,
    LiteralValue,
    NotExpr,
    Operand,
    OrExpr,
    SelectItem,
    SelectStatement,
    SqlExpr,
    TableRef,
)
from repro.sql.lexer import (
    AGGREGATE_KEYWORDS,
    EOF,
    IDENT,
    KEYWORD,
    NUMBER,
    STRING,
    Token,
    default_name,
    tokenize,
)

_COMPARISON_SYMBOLS = ("=", "<>", "!=", "<=", ">=", "<", ">")


def parse_statement(source: str) -> SelectStatement:
    """Parse one ``[EXPLAIN [ANALYZE]] SELECT`` statement from ``source``."""
    return _Parser(source).parse_statement()


class _Parser:
    """Token-stream cursor with :class:`SqlError`-raising expectation helpers."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.tokens = tokenize(source)
        self.index = 0

    # ------------------------------------------------------------------
    # Cursor helpers
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != EOF:
            self.index += 1
        return token

    def error(self, message: str, token: Optional[Token] = None) -> SqlError:
        token = token or self.current
        return SqlError(message, self.source, token.pos)

    def accept_keyword(self, *names: str) -> Optional[Token]:
        if self.current.is_keyword(*names):
            return self.advance()
        return None

    def expect_keyword(self, *names: str) -> Token:
        if not self.current.is_keyword(*names):
            raise self.error(f"expected {' or '.join(names)}")
        return self.advance()

    def accept_symbol(self, *symbols: str) -> Optional[Token]:
        if self.current.is_symbol(*symbols):
            return self.advance()
        return None

    def expect_symbol(self, *symbols: str) -> Token:
        if not self.current.is_symbol(*symbols):
            raise self.error(f"expected {' or '.join(repr(s) for s in symbols)}")
        return self.advance()

    def expect_ident(self, what: str) -> Token:
        if self.current.kind != IDENT:
            raise self.error(f"expected {what}")
        return self.advance()

    # ------------------------------------------------------------------
    # Statement / clauses
    # ------------------------------------------------------------------
    def parse_statement(self) -> SelectStatement:
        explain = self.accept_keyword("EXPLAIN") is not None
        analyze = explain and self.accept_keyword("ANALYZE") is not None
        self.expect_keyword("SELECT")
        items = self._parse_select_list()
        self.expect_keyword("FROM")
        tables = self._parse_table_list()
        where: Optional[SqlExpr] = None
        if self.accept_keyword("WHERE"):
            where = self._parse_expr()
        self.accept_symbol(";")
        if self.current.kind != EOF:
            raise self.error("unexpected input after end of statement")
        return SelectStatement(
            items=items,
            tables=tables,
            where=where,
            explain=explain,
            analyze=analyze,
            name=default_name(self.source),
        )

    def _parse_select_list(self) -> Tuple[SelectItem, ...]:
        items = [self._parse_select_item()]
        while self.accept_symbol(","):
            items.append(self._parse_select_item())
        return tuple(items)

    def _parse_select_item(self) -> SelectItem:
        token = self.current
        if not token.is_keyword(*AGGREGATE_KEYWORDS):
            raise self.error(
                "expected an aggregate (COUNT/SUM/MIN/MAX/AVG); "
                "plain column projections are not supported"
            )
        self.advance()
        function = token.text.lower()
        self.expect_symbol("(")
        star = False
        column: Optional[ColumnName] = None
        if self.current.is_symbol("*"):
            if function != "count":
                raise self.error(f"{token.text}(*) is not supported; only COUNT(*)")
            self.advance()
            star = True
        else:
            column = self._parse_column("aggregate input column")
        self.expect_symbol(")")
        output_name = self._parse_optional_alias()
        return SelectItem(
            function=function, star=star, column=column, output_name=output_name, pos=token.pos
        )

    def _parse_table_list(self) -> Tuple[TableRef, ...]:
        tables = [self._parse_table_ref()]
        while self.accept_symbol(","):
            tables.append(self._parse_table_ref())
        return tuple(tables)

    def _parse_table_ref(self) -> TableRef:
        table = self.expect_ident("table name")
        alias_token: Optional[Token] = None
        if self.accept_keyword("AS"):
            alias_token = self.expect_ident("table alias")
        elif self.current.kind == IDENT:
            alias_token = self.advance()
        alias = alias_token.text if alias_token is not None else table.text
        alias_pos = alias_token.pos if alias_token is not None else table.pos
        return TableRef(table=table.text, alias=alias, pos=table.pos, alias_pos=alias_pos)

    def _parse_optional_alias(self) -> Optional[str]:
        if self.accept_keyword("AS"):
            return self.expect_ident("output name").text
        if self.current.kind == IDENT:
            return self.advance().text
        return None

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _parse_expr(self) -> SqlExpr:
        first = self._parse_and_chain()
        operands = [first]
        while self.accept_keyword("OR"):
            operands.append(self._parse_and_chain())
        if len(operands) == 1:
            return first
        return OrExpr(operands=tuple(operands), pos=_pos(first))

    def _parse_and_chain(self) -> SqlExpr:
        first = self._parse_unary()
        operands = [first]
        while self.accept_keyword("AND"):
            operands.append(self._parse_unary())
        if len(operands) == 1:
            return first
        return AndExpr(operands=tuple(operands), pos=_pos(first))

    def _parse_unary(self) -> SqlExpr:
        token = self.accept_keyword("NOT")
        if token is not None:
            return NotExpr(operand=self._parse_unary(), pos=token.pos)
        return self._parse_predicate()

    def _parse_predicate(self) -> SqlExpr:
        if self.accept_symbol("("):
            inner = self._parse_expr()
            self.expect_symbol(")")
            return inner
        left = self._parse_operand()
        token = self.current
        # Column-only predicate forms.
        if isinstance(left, ColumnName):
            negated = False
            if token.is_keyword("NOT"):
                self.advance()
                negated = True
                token = self.current
                if not token.is_keyword("BETWEEN", "IN", "LIKE"):
                    raise self.error("expected BETWEEN, IN, or LIKE after NOT")
            if token.is_keyword("BETWEEN"):
                self.advance()
                low = self._parse_literal("BETWEEN lower bound")
                self.expect_keyword("AND")
                high = self._parse_literal("BETWEEN upper bound")
                return BetweenExpr(column=left, low=low, high=high, negated=negated, pos=left.pos)
            if token.is_keyword("IN"):
                self.advance()
                self.expect_symbol("(")
                values = [self._parse_literal("IN-list value")]
                while self.accept_symbol(","):
                    values.append(self._parse_literal("IN-list value"))
                self.expect_symbol(")")
                return InExpr(column=left, values=tuple(values), negated=negated, pos=left.pos)
            if token.is_keyword("LIKE"):
                self.advance()
                pattern = self._parse_literal("LIKE pattern")
                if not isinstance(pattern.value, str):
                    raise self.error("LIKE pattern must be a string literal", token)
                return LikeExpr(column=left, pattern=pattern.value, negated=negated, pos=left.pos)
            if negated:
                raise self.error("expected BETWEEN, IN, or LIKE after NOT")
            if token.is_keyword("IS"):
                self.advance()
                is_not = self.accept_keyword("NOT") is not None
                self.expect_keyword("NULL")
                return IsNullExpr(column=left, negated=is_not, pos=left.pos)
        if token.is_symbol(*_COMPARISON_SYMBOLS):
            self.advance()
            right = self._parse_operand()
            return ComparisonExpr(left=left, op=token.text, right=right, pos=token.pos)
        raise self.error("expected a comparison operator, BETWEEN, IN, LIKE, or IS")

    def _parse_operand(self) -> Operand:
        token = self.current
        if token.kind == IDENT:
            return self._parse_column("column name")
        if token.kind in (NUMBER, STRING):
            self.advance()
            return LiteralValue(value=token.value, pos=token.pos)
        raise self.error("expected a column name or literal")

    def _parse_column(self, what: str) -> ColumnName:
        first = self.expect_ident(what)
        if self.accept_symbol("."):
            token = self.current
            if token.kind == IDENT:
                name = self.advance().text
            elif token.kind == KEYWORD:
                # Dot-qualified keyword-named columns are unambiguous (JOB's
                # ``lt.link`` would otherwise collide with nothing, but a
                # column literally named ``min``/``kind`` etc. must parse).
                name = self.advance().value
            else:
                raise self.error("expected column name")
            return ColumnName(name=name, qualifier=first.text, pos=first.pos)
        return ColumnName(name=first.text, qualifier=None, pos=first.pos)

    def _parse_literal(self, what: str) -> LiteralValue:
        token = self.current
        if token.kind in (NUMBER, STRING):
            self.advance()
            return LiteralValue(value=token.value, pos=token.pos)
        raise self.error(f"expected {what} (a number or string literal)")


def _pos(expr: SqlExpr) -> int:
    return getattr(expr, "pos", 0)


def split_statements(source: str) -> List[str]:
    """Split a ``.sql`` file into individual statements on top-level ``;``.

    Statement boundaries come from one :func:`tokenize` pass, so semicolons
    inside string literals and comments never split.  Empty fragments
    (trailing semicolon, comment-only tail) are dropped, but a fragment's
    leading comments — including ``-- name:`` directives — stay attached to
    their statement.  A source that does not even lex is returned whole, so
    parsing the single fragment reports the real diagnostic with offsets
    into the full text.
    """
    try:
        tokens = tokenize(source)
    except SqlError:
        return [source] if source.strip() else []
    statements: List[str] = []
    start = 0
    fragment_has_tokens = False
    for token in tokens:
        if token.kind == EOF:
            break
        if token.is_symbol(";"):
            if fragment_has_tokens:
                statements.append(source[start : token.pos + 1].strip())
            start = token.pos + 1
            fragment_has_tokens = False
        else:
            fragment_has_tokens = True
    if fragment_has_tokens:
        statements.append(source[start:].strip())
    return statements
