"""Columnar storage substrate: datatypes, columns, tables, catalog, buffer manager."""

from repro.storage.artifacts import ArtifactCache, ArtifactKey, mask_fingerprint
from repro.storage.buffer import BufferManager, IoStatistics, MemoryGovernor
from repro.storage.catalog import Catalog, TableStatistics
from repro.storage.column import Column, concat_columns
from repro.storage.datatypes import DataType, infer_datatype
from repro.storage.table import ForeignKey, Table

__all__ = [
    "ArtifactCache",
    "ArtifactKey",
    "BufferManager",
    "Catalog",
    "Column",
    "DataType",
    "ForeignKey",
    "IoStatistics",
    "MemoryGovernor",
    "Table",
    "TableStatistics",
    "concat_columns",
    "infer_datatype",
    "mask_fingerprint",
]
