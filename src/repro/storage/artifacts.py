"""Cross-query artifact cache: Bloom filters and hash indexes that outlive a query.

Repeated analytical traffic — dashboards, report fleets, retried queries —
re-executes the same queries over tables that have not changed, and the
engine historically rebuilt every transfer-phase Bloom filter and every
build-side hash index from scratch each time.  The :class:`ArtifactCache`
memoizes those *execution artifacts* across ``Database.execute`` calls.

An artifact is addressed by an :class:`ArtifactKey`:

* ``table`` / ``table_version`` — the catalog table the artifact summarizes
  and the catalog's monotonically increasing version of it
  (:meth:`~repro.storage.catalog.Catalog.version`).  Re-registering or
  replacing a table bumps the version, so artifacts built over the old data
  become unreachable — a stale filter is never served.
* ``column`` — the join-key column the artifact was built over.
* ``fingerprint`` — a digest of the relation's base-filter selection
  (:func:`mask_fingerprint`): artifacts are only shared between executions
  whose pushed-down predicates selected the same rows.  Artifacts are
  **never** cached over relations already reduced by earlier transfer steps
  of the same query (the executor enforces this via relation versions).
* ``kind`` / ``param`` — ``"bloom"`` (param encodes the FPR and whether the
  filter was NDV-sized), ``"hash_index"``, ``"bloom_pass"`` (a full-column
  hashing pass), or ``"ndv_sketch"`` (a
  :class:`~repro.optimizer.cardinality.KMVSketch` distinct-count sketch the
  adaptive transfer layer uses to right-size Bloom filters).  Column-pure
  artifacts (``bloom_pass``, ``ndv_sketch``) use the fingerprint
  ``"column"`` — they depend only on the immutable column data, never on a
  query's pushed-down predicate.
* ``encoding`` — the encoding identity of the column the artifact was
  built over (``"raw"``, or an :class:`~repro.storage.encodings.EncodedColumn`
  token such as ``"pack:u16:b0"``).  Encoded execution decodes to the same
  physical values, but the token keeps an artifact built while encodings
  were enabled from aliasing one built over raw buffers at the same
  catalog version — re-encoding a table is a representation change the key
  must observe.

Residency is bounded by a byte budget with LRU eviction; the pipeline
executor additionally charges resident artifacts it touches against the
per-query :class:`~repro.storage.buffer.MemoryGovernor` so governed runs
account for them.  The cache is guarded by a lock so a ``Database`` shared
between threads stays consistent.

The cache lives here, beside the :class:`~repro.storage.catalog.Catalog`
whose table versions key it, so the execution layer can consume it without
depending on the engine façade that owns its lifecycle.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

#: Default byte budget of a database's artifact cache (64 MiB).
DEFAULT_ARTIFACT_BUDGET_BYTES = 64 << 20

#: Canonical artifact kinds (free-form strings; these are the ones the
#: pipeline executor produces).
KIND_BLOOM = "bloom"
KIND_HASH_INDEX = "hash_index"
KIND_BLOOM_PASS = "bloom_pass"
KIND_NDV_SKETCH = "ndv_sketch"

#: Fingerprint of column-pure artifacts (independent of any base filter).
FINGERPRINT_COLUMN = "column"


@dataclass(frozen=True)
class ArtifactKey:
    """Identity of one cached execution artifact (see module docstring)."""

    table: str
    table_version: int
    column: str
    fingerprint: str
    kind: str
    param: str = ""
    encoding: str = "raw"


@dataclass
class _Entry:
    artifact: Any
    size_bytes: int


class ArtifactCache:
    """An LRU, byte-budgeted map from :class:`ArtifactKey` to built artifacts."""

    def __init__(self, budget_bytes: int = DEFAULT_ARTIFACT_BUDGET_BYTES) -> None:
        if budget_bytes <= 0:
            raise ValueError("artifact cache budget must be positive")
        self.budget_bytes = budget_bytes
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self._entries: "OrderedDict[ArtifactKey, _Entry]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def current_bytes(self) -> int:
        """Bytes currently charged to resident artifacts."""
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: ArtifactKey) -> bool:
        with self._lock:
            return key in self._entries

    # ------------------------------------------------------------------
    # Lookup / insertion
    # ------------------------------------------------------------------
    def get(self, key: ArtifactKey) -> Optional[Any]:
        """The artifact cached under ``key`` (refreshing its LRU position), or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry.artifact

    def resize(self, budget_bytes: int) -> None:
        """Change the byte budget, evicting LRU entries that no longer fit."""
        if budget_bytes <= 0:
            raise ValueError("artifact cache budget must be positive")
        with self._lock:
            self.budget_bytes = budget_bytes
            self._evict_over_budget()

    def _evict_over_budget(self) -> None:
        """Evict LRU entries until the total fits the budget (lock held).

        May empty the cache entirely: ``put`` never admits an artifact
        larger than the budget, but ``resize`` can shrink the budget below
        a lone resident artifact, which must then go too.
        """
        while self._bytes > self.budget_bytes and self._entries:
            _, victim = self._entries.popitem(last=False)
            self._bytes -= victim.size_bytes
            self.evictions += 1

    def put(self, key: ArtifactKey, artifact: Any, size_bytes: int) -> None:
        """Cache ``artifact`` under ``key``, evicting LRU entries over budget.

        An artifact larger than the whole budget is not admitted (caching it
        would immediately evict everything else for no reuse).
        """
        if size_bytes < 0:
            raise ValueError(f"cannot cache artifact of {size_bytes} bytes")
        if size_bytes > self.budget_bytes:
            return
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.size_bytes
            self._entries[key] = _Entry(artifact=artifact, size_bytes=size_bytes)
            self._bytes += size_bytes
            self.insertions += 1
            self._evict_over_budget()

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate_table(self, table: str) -> int:
        """Drop every artifact built over ``table``; returns how many were dropped.

        Version-keyed lookups already make stale artifacts unreachable; this
        reclaims their bytes eagerly (the engine calls it when a table is
        re-registered).
        """
        with self._lock:
            stale = [key for key in self._entries if key.table == table]
            for key in stale:
                self._bytes -= self._entries.pop(key).size_bytes
            return len(stale)

    def invalidate_version(self, table: str, version: int) -> int:
        """Drop every artifact built over one version of ``table``.

        The release-driven path: the catalog fires this (through the
        database's release hooks) when the last snapshot pinning a replaced
        version lets go — so artifacts stay warm for in-flight readers of
        the old version and are reclaimed the moment nobody can reach them.
        """
        with self._lock:
            stale = [
                key
                for key in self._entries
                if key.table == table and key.table_version == version
            ]
            for key in stale:
                self._bytes -= self._entries.pop(key).size_bytes
            return len(stale)

    def clear(self) -> None:
        """Drop every cached artifact."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0


def mask_fingerprint(mask: Optional[np.ndarray]) -> str:
    """Digest of a base-filter selection over a table.

    ``None`` (no pushed-down predicate — the relation scans the full table)
    fingerprints as ``"full"``; a boolean mask hashes its packed bits plus
    its length, so two executions share artifacts iff their predicates
    selected exactly the same rows.
    """
    if mask is None:
        return "full"
    mask = np.asarray(mask, dtype=bool)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(np.int64(mask.shape[0]).tobytes())
    digest.update(np.packbits(mask).tobytes())
    return digest.hexdigest()
