"""Buffer manager simulation for the on-disk / spill experiments (Figure 15).

The paper evaluates RPT when (1) base tables reside on disk and (2) the
materialized intermediate chunks of the transfer phase do not fit in memory
("+spill").  We cannot measure a real SSD here, so this module provides a
*deterministic accounting model*: every chunk pinned into the buffer pool is
charged an I/O cost when it has to be (re)read from "disk", and evictions are
tracked so the backward pass of the transfer phase pays for re-reading
whatever was spilled.

The model intentionally exposes the two quantities the paper's discussion
hinges on:

* the volume of data materialized after the forward pass (small because the
  semi-join filters are selective), and
* the number of bytes that had to be re-read because they were spilled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class IoStatistics:
    """Counters describing simulated I/O activity."""

    bytes_read_from_disk: int = 0
    bytes_written_to_disk: int = 0
    bytes_served_from_memory: int = 0
    evictions: int = 0

    @property
    def total_io_bytes(self) -> int:
        """Total simulated disk traffic (reads + writes)."""
        return self.bytes_read_from_disk + self.bytes_written_to_disk

    def simulated_seconds(self, read_mb_per_s: float = 550.0, write_mb_per_s: float = 520.0) -> float:
        """Translate counters into a simulated elapsed I/O time.

        Default throughputs approximate the SATA SSD used in the paper's
        testbed (Samsung 870 QVO).
        """
        mb = 1024.0 * 1024.0
        read_s = self.bytes_read_from_disk / mb / read_mb_per_s
        write_s = self.bytes_written_to_disk / mb / write_mb_per_s
        return read_s + write_s


@dataclass
class _Frame:
    """One resident buffer-pool frame."""

    key: str
    size_bytes: int
    dirty: bool
    last_use: int = 0


class BufferManager:
    """A simulated buffer pool with LRU eviction and I/O accounting.

    Parameters
    ----------
    memory_budget_bytes:
        Maximum number of bytes that may be resident at once.  ``None``
        means unlimited (pure in-memory execution, no spilling).
    """

    def __init__(self, memory_budget_bytes: Optional[int] = None) -> None:
        self.memory_budget_bytes = memory_budget_bytes
        self.stats = IoStatistics()
        self._frames: Dict[str, _Frame] = {}
        self._clock = 0
        self._on_disk: Dict[str, int] = {}  # key -> size for spilled/disk-resident data

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def resident_bytes(self) -> int:
        """Bytes currently held in the (simulated) buffer pool."""
        return sum(f.size_bytes for f in self._frames.values())

    def register_on_disk(self, key: str, size_bytes: int) -> None:
        """Declare that ``key`` initially resides on disk (e.g. a base table)."""
        self._on_disk[key] = size_bytes

    def read(self, key: str, size_bytes: int) -> None:
        """Access ``key``; charge a disk read if it is not resident."""
        self._clock += 1
        frame = self._frames.get(key)
        if frame is not None:
            frame.last_use = self._clock
            self.stats.bytes_served_from_memory += size_bytes
            return
        # Not resident: it must come from disk (either registered or spilled).
        self.stats.bytes_read_from_disk += size_bytes
        self._admit(key, size_bytes, dirty=False)

    def write(self, key: str, size_bytes: int) -> None:
        """Materialize ``key`` (e.g. buffered chunks of a CreateBF sink)."""
        self._clock += 1
        self._admit(key, size_bytes, dirty=True)

    def release(self, key: str) -> None:
        """Drop ``key`` from the pool without charging a write (data is dead)."""
        self._frames.pop(key, None)
        self._on_disk.pop(key, None)

    def reset_statistics(self) -> None:
        """Zero the I/O counters while keeping pool contents."""
        self.stats = IoStatistics()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _admit(self, key: str, size_bytes: int, dirty: bool) -> None:
        self._frames[key] = _Frame(key=key, size_bytes=size_bytes, dirty=dirty, last_use=self._clock)
        self._maybe_evict()

    def _maybe_evict(self) -> None:
        if self.memory_budget_bytes is None:
            return
        while self.resident_bytes > self.memory_budget_bytes and len(self._frames) > 1:
            victim = min(self._frames.values(), key=lambda f: f.last_use)
            del self._frames[victim.key]
            self.stats.evictions += 1
            if victim.dirty:
                # Spill to disk so a later read can find it.
                self.stats.bytes_written_to_disk += victim.size_bytes
                self._on_disk[victim.key] = victim.size_bytes
