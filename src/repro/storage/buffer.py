"""Memory governance: the live :class:`MemoryGovernor` and the Figure 15 model.

Two layers live here:

* :class:`MemoryGovernor` — the *live* memory-budget authority of the
  pipeline executor.  Operators reserve budget **before** materializing
  build sides or partitions; when a reservation pushes the total over
  budget, the governor evicts least-recently-used evictable reservations
  through a spill handler (:class:`~repro.exec.spill.SpillManager`), and a
  later touch of a spilled reservation charges the reload.  Execution
  results are bit-identical with or without a budget — only the accounted
  I/O and the spill/reload counters change.

* :class:`BufferManager` — the original *deterministic accounting model*
  for the on-disk / spill experiments (Figure 15): every chunk pinned into
  the simulated buffer pool is charged an I/O cost when it has to be
  (re)read from "disk".  It remains the figure-reproduction path
  (:func:`~repro.exec.spill.simulate_spill`) operating on an
  already-measured execution trace.

Both expose the quantities the paper's discussion hinges on: the volume of
data materialized after the forward pass, and the bytes re-read because they
were spilled.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Tuple

from repro.errors import MemoryExhausted


@dataclass
class IoStatistics:
    """Counters describing simulated I/O activity."""

    bytes_read_from_disk: int = 0
    bytes_written_to_disk: int = 0
    bytes_served_from_memory: int = 0
    evictions: int = 0

    @property
    def total_io_bytes(self) -> int:
        """Total simulated disk traffic (reads + writes)."""
        return self.bytes_read_from_disk + self.bytes_written_to_disk

    def simulated_seconds(self, read_mb_per_s: float = 550.0, write_mb_per_s: float = 520.0) -> float:
        """Translate counters into a simulated elapsed I/O time.

        Default throughputs approximate the SATA SSD used in the paper's
        testbed (Samsung 870 QVO).
        """
        mb = 1024.0 * 1024.0
        read_s = self.bytes_read_from_disk / mb / read_mb_per_s
        write_s = self.bytes_written_to_disk / mb / write_mb_per_s
        return read_s + write_s


@dataclass
class _Frame:
    """One resident buffer-pool frame."""

    key: str
    size_bytes: int
    dirty: bool
    last_use: int = 0


class BufferManager:
    """A simulated buffer pool with LRU eviction and I/O accounting.

    Parameters
    ----------
    memory_budget_bytes:
        Maximum number of bytes that may be resident at once.  ``None``
        means unlimited (pure in-memory execution, no spilling).
    """

    def __init__(self, memory_budget_bytes: Optional[int] = None) -> None:
        self.memory_budget_bytes = memory_budget_bytes
        self.stats = IoStatistics()
        self._frames: Dict[str, _Frame] = {}
        self._clock = 0
        self._on_disk: Dict[str, int] = {}  # key -> size for spilled/disk-resident data

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def resident_bytes(self) -> int:
        """Bytes currently held in the (simulated) buffer pool."""
        return sum(f.size_bytes for f in self._frames.values())

    def register_on_disk(self, key: str, size_bytes: int) -> None:
        """Declare that ``key`` initially resides on disk (e.g. a base table)."""
        self._on_disk[key] = size_bytes

    def read(self, key: str, size_bytes: int) -> None:
        """Access ``key``; charge a disk read if it is not resident."""
        self._clock += 1
        frame = self._frames.get(key)
        if frame is not None:
            frame.last_use = self._clock
            self.stats.bytes_served_from_memory += size_bytes
            return
        # Not resident: it must come from disk (either registered or spilled).
        self.stats.bytes_read_from_disk += size_bytes
        self._admit(key, size_bytes, dirty=False)

    def write(self, key: str, size_bytes: int) -> None:
        """Materialize ``key`` (e.g. buffered chunks of a CreateBF sink)."""
        self._clock += 1
        self._admit(key, size_bytes, dirty=True)

    def release(self, key: str) -> None:
        """Drop ``key`` from the pool without charging a write (data is dead)."""
        self._frames.pop(key, None)
        self._on_disk.pop(key, None)

    def reset_statistics(self) -> None:
        """Zero the I/O counters while keeping pool contents."""
        self.stats = IoStatistics()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _admit(self, key: str, size_bytes: int, dirty: bool) -> None:
        self._frames[key] = _Frame(key=key, size_bytes=size_bytes, dirty=dirty, last_use=self._clock)
        self._maybe_evict()

    def _maybe_evict(self) -> None:
        if self.memory_budget_bytes is None:
            return
        while self.resident_bytes > self.memory_budget_bytes and len(self._frames) > 1:
            victim = min(self._frames.values(), key=lambda f: f.last_use)
            del self._frames[victim.key]
            self.stats.evictions += 1
            if victim.dirty:
                # Spill to disk so a later read can find it.
                self.stats.bytes_written_to_disk += victim.size_bytes
                self._on_disk[victim.key] = victim.size_bytes


# ---------------------------------------------------------------------------
# The live memory governor
# ---------------------------------------------------------------------------
#: Every governor ever constructed (weakly referenced): the test-suite leak
#: guard sweeps this to prove no reservation outlives its query, no matter
#: which exit path — success, fault, timeout — the query took.
_GOVERNORS: "weakref.WeakSet[MemoryGovernor]" = weakref.WeakSet()


def outstanding_reservations() -> Tuple[Tuple[str, int], ...]:
    """(key, size) of every live reservation across all live governors."""
    found: List[Tuple[str, int]] = []
    for governor in list(_GOVERNORS):
        for reservation in governor._reservations.values():
            found.append((reservation.key, reservation.size_bytes))
    return tuple(found)


def assert_no_outstanding_reservations() -> None:
    """Raise when any live governor still holds reservations."""
    outstanding = outstanding_reservations()
    if outstanding:
        keys = sorted(key for key, _ in outstanding)
        raise MemoryExhausted(f"leaked governor reservations: {keys}")


class SpillHandler(Protocol):
    """What the governor calls when it must evict or reload a reservation."""

    def spill(self, key: str, size_bytes: int) -> None:
        """Evict ``key`` from memory (charge the write)."""

    def reload(self, key: str, size_bytes: int) -> None:
        """Bring a spilled ``key`` back (charge the read)."""


@dataclass
class _Reservation:
    """One live memory reservation."""

    key: str
    size_bytes: int
    evictable: bool
    last_use: int
    spilled: bool = False


class MemoryGovernor:
    """Grants, tracks, and reclaims the executor's memory budget *during* a run.

    Unlike :class:`BufferManager` (which charges I/O against a finished
    trace), the governor sits in the execution hot path: an operator calls
    :meth:`reserve` before materializing a build side or a partition,
    :meth:`touch` before probing it, and :meth:`release` once the data is
    dead.  When a reservation exceeds the budget, the least-recently-used
    *evictable* reservations are spilled through the handler until the total
    fits (the reservation being admitted is pinned); touching a spilled
    reservation reloads it, which may in turn evict others.

    A ``budget_bytes`` of ``None`` disables eviction but still tracks the
    peak footprint, which is how the engine measures an unbudgeted run to
    derive a budget for a constrained one (the Figure 15 "+spill" setup:
    ≈50% of peak).
    """

    def __init__(
        self,
        budget_bytes: Optional[int] = None,
        spill_handler: Optional[SpillHandler] = None,
    ) -> None:
        if budget_bytes is not None and budget_bytes < 0:
            raise ValueError("memory budget must be non-negative")
        self.budget_bytes = budget_bytes
        self.spill_handler = spill_handler
        self.peak_reserved_bytes = 0
        self.spill_events = 0
        self.spilled_bytes = 0
        self.reload_events = 0
        self.reloaded_bytes = 0
        self.spill_failures = 0
        self._reservations: Dict[str, _Reservation] = {}
        self._clock = 0
        _GOVERNORS.add(self)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def reserved_bytes(self) -> int:
        """Bytes currently resident (spilled reservations excluded)."""
        return sum(r.size_bytes for r in self._reservations.values() if not r.spilled)

    @property
    def over_budget(self) -> bool:
        """True when the resident total currently exceeds the budget."""
        return self.budget_bytes is not None and self.reserved_bytes > self.budget_bytes

    def is_spilled(self, key: str) -> bool:
        """True when ``key`` is reserved but currently spilled."""
        reservation = self._reservations.get(key)
        return reservation is not None and reservation.spilled

    # ------------------------------------------------------------------
    # Reservation lifecycle
    # ------------------------------------------------------------------
    def reserve(
        self, key: str, size_bytes: int, evictable: bool = True, inject: bool = True
    ) -> None:
        """Reserve ``size_bytes`` for ``key`` before materializing it.

        Re-reserving an existing key resizes it.  If the new total exceeds
        the budget, LRU evictable reservations (other than ``key`` itself,
        which is pinned while being admitted) are spilled until the total
        fits or nothing evictable remains — a minimum working set is always
        admitted, as in any real memory broker.

        ``inject=False`` bypasses fault injection: the executor's
        spill-then-retry rung uses it so the retry after a synchronous spill
        models a real post-reclaim allocation, which succeeds.
        """
        if size_bytes < 0:
            raise ValueError(f"cannot reserve {size_bytes} bytes for {key!r}")
        # Injected allocation failure: the budget is "exhausted" for this
        # reservation.  The executor catches MemoryExhausted, synchronously
        # spills every evictable reservation, and retries once.
        if inject:
            from repro.exec import faults  # deferred: exec package imports this module

            if faults.should_fire("alloc.reserve"):
                raise MemoryExhausted(
                    f"injected allocation failure reserving {size_bytes} bytes for {key!r}"
                )
        self._clock += 1
        self._reservations[key] = _Reservation(
            key=key, size_bytes=size_bytes, evictable=evictable, last_use=self._clock
        )
        self._reclaim(pinned=key)
        self.peak_reserved_bytes = max(self.peak_reserved_bytes, self.reserved_bytes)

    def touch(self, key: str) -> bool:
        """Mark ``key`` as used; reload it when spilled.

        Returns ``True`` when the touch had to reload spilled data (the
        executor counts these as spill-induced re-reads).  Touching an
        unknown key is a no-op returning ``False`` (the caller may run
        without a governor for that operator).
        """
        reservation = self._reservations.get(key)
        if reservation is None:
            return False
        self._clock += 1
        reservation.last_use = self._clock
        if not reservation.spilled:
            return False
        reservation.spilled = False
        self.reload_events += 1
        self.reloaded_bytes += reservation.size_bytes
        if self.spill_handler is not None:
            self.spill_handler.reload(reservation.key, reservation.size_bytes)
        self._reclaim(pinned=key)
        self.peak_reserved_bytes = max(self.peak_reserved_bytes, self.reserved_bytes)
        return True

    def release(self, key: str) -> None:
        """Drop a reservation entirely (its data is dead; no I/O charged)."""
        self._reservations.pop(key, None)

    def release_all(self) -> None:
        """Drop every reservation (query teardown on any exit path)."""
        self._reservations.clear()

    @property
    def outstanding(self) -> int:
        """Number of live reservations (spilled ones included)."""
        return len(self._reservations)

    def spill_evictables(self) -> int:
        """Force-spill every evictable resident reservation; return bytes freed.

        The executor's spill-then-retry rung calls this after an injected or
        genuine :class:`~repro.errors.MemoryExhausted` to free as much budget
        as possible before retrying the failed reservation once.
        """
        freed = 0
        for reservation in sorted(self._reservations.values(), key=lambda r: r.last_use):
            if not reservation.evictable or reservation.spilled:
                continue
            if self._spill_victim(reservation):
                freed += reservation.size_bytes
        return freed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _spill_victim(self, victim: _Reservation) -> bool:
        """Spill one reservation through the handler; False if the write failed.

        A failed spill (e.g. an injected ``spill.write`` fault) leaves the
        victim resident and counted in ``spill_failures`` — the governor
        moves on to the next victim rather than failing the query.
        """
        victim.spilled = True
        if self.spill_handler is not None:
            try:
                self.spill_handler.spill(victim.key, victim.size_bytes)
            except Exception:
                victim.spilled = False
                self.spill_failures += 1
                return False
        self.spill_events += 1
        self.spilled_bytes += victim.size_bytes
        return True

    def _reclaim(self, pinned: str) -> None:
        if self.budget_bytes is None:
            return
        failed: set[str] = set()
        while self.reserved_bytes > self.budget_bytes:
            victims = [
                r
                for r in self._reservations.values()
                if r.evictable and not r.spilled and r.key != pinned and r.key not in failed
            ]
            if not victims:
                return
            victim = min(victims, key=lambda r: r.last_use)
            if not self._spill_victim(victim):
                failed.add(victim.key)
