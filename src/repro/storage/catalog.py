"""Catalog: the registry of tables known to a database instance.

The catalog is the only mutable piece of the storage layer.  It maps table
names to :class:`~repro.storage.table.Table` objects and exposes the
statistics (row counts, distinct counts) that the optimizer's cardinality
estimator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.errors import CatalogError
from repro.storage.encodings import EncodingStore
from repro.storage.table import Table


@dataclass
class TableStatistics:
    """Summary statistics for one table, used by cardinality estimation."""

    num_rows: int
    distinct_counts: Dict[str, int]

    def distinct(self, column: str) -> int:
        """Distinct count for a column (falls back to row count if unknown)."""
        return self.distinct_counts.get(column, max(self.num_rows, 1))


class Catalog:
    """A mutable registry of tables and their statistics."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}
        self._stats: Dict[str, TableStatistics] = {}
        # Monotonic per-name version counters.  A name's counter survives
        # unregistration so a re-registered table can never reuse an old
        # version — cached execution artifacts keyed by (name, version)
        # therefore never alias stale data.
        self._versions: Dict[str, int] = {}
        self._encodings = EncodingStore(self)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, table: Table, replace: bool = False) -> None:
        """Register a table.

        Parameters
        ----------
        table:
            The table to register under ``table.name``.
        replace:
            When False (default), registering a name that already exists
            raises :class:`CatalogError`.
        """
        if table.name in self._tables and not replace:
            raise CatalogError(f"table {table.name!r} is already registered")
        self._tables[table.name] = table
        self._stats[table.name] = _compute_statistics(table)
        self._versions[table.name] = self._versions.get(table.name, 0) + 1
        self._encodings.invalidate_table(table.name)

    def unregister(self, name: str) -> None:
        """Remove a table from the catalog."""
        if name not in self._tables:
            raise CatalogError(f"table {name!r} is not registered")
        del self._tables[name]
        del self._stats[name]
        self._encodings.invalidate_table(name)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def table(self, name: str) -> Table:
        """Return the table registered under ``name``."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"table {name!r} is not registered") from None

    def version(self, name: str) -> int:
        """Monotonic version of the table registered under ``name``.

        Bumped every time a table is (re-)registered under the name; never
        reused, even across unregister/register cycles.  Execution-artifact
        caches key on it so a table change invalidates every artifact built
        over the old contents.
        """
        if name not in self._tables:
            raise CatalogError(f"table {name!r} is not registered")
        return self._versions[name]

    def statistics(self, name: str) -> TableStatistics:
        """Return the statistics for the table registered under ``name``."""
        try:
            return self._stats[name]
        except KeyError:
            raise CatalogError(f"table {name!r} is not registered") from None

    @property
    def encodings(self) -> EncodingStore:
        """The per-column encoding / zone-map store (lazy, version-keyed)."""
        return self._encodings

    def has_table(self, name: str) -> bool:
        """True when a table with that name is registered."""
        return name in self._tables

    def table_names(self) -> list[str]:
        """Names of all registered tables, in registration order."""
        return list(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def total_rows(self) -> int:
        """Total number of rows across all registered tables."""
        return sum(t.num_rows for t in self._tables.values())

    def largest_table(self) -> Optional[str]:
        """Name of the registered table with the most rows, or None if empty."""
        if not self._tables:
            return None
        return max(self._tables, key=lambda n: self._tables[n].num_rows)


def _compute_statistics(table: Table) -> TableStatistics:
    """Compute per-column distinct counts for a freshly registered table."""
    distinct = {col.name: col.distinct_count() for col in table.columns}
    return TableStatistics(num_rows=table.num_rows, distinct_counts=distinct)
